//! Integration-test crate for the neural-ner workspace; see `tests/`.
