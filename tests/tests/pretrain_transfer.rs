//! Cross-crate integration: embedding pretraining (`ner-embed`) feeding the
//! tagger (`ner-core`), and the applied-technique crates composing on top.

use ner_applied::transfer::{transfer_train, TransferScheme};
use ner_core::config::{CharRepr, EncoderKind, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_embed::charlm::{CharLm, CharLmConfig};
use ner_embed::skipgram::{self, SkipGramConfig};
use ner_embed::ContextualEmbedder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tagger_f1(
    train: &Dataset,
    test: &Dataset,
    pretrained: Option<&ner_embed::WordEmbeddings>,
    ctx: Option<&dyn ContextualEmbedder>,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(99);
    let mut encoder = SentenceEncoder::from_dataset(train, TagScheme::Bio, 1);
    if let Some(emb) = pretrained {
        encoder = encoder.with_pretrained_vocab(emb);
    }
    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: if pretrained.is_some() {
            WordRepr::Pretrained { fine_tune: true }
        } else {
            WordRepr::Random { dim: 24 }
        },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Lstm { hidden: 20, bidirectional: true, layers: 1 },
        context_dim: ctx.map_or(0, |c| c.dim()),
        dropout: 0.1,
        ..NerConfig::default()
    };
    let mut model = NerModel::new(cfg, &encoder, pretrained, &mut rng);
    let train_enc = encoder.encode_dataset(train, ctx);
    ner_core::trainer::train(
        &mut model,
        &train_enc,
        None,
        &TrainConfig { epochs: 6, patience: None, ..Default::default() },
        &mut rng,
    );
    evaluate_model(&model, &encoder.encode_dataset(test, ctx)).micro.f1
}

#[test]
fn pretrained_embeddings_help_low_resource_ner() {
    let mut rng = StdRng::seed_from_u64(3);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let lm_corpus = gen.lm_sentences(&mut rng, 700);
    let train_ds = gen.dataset(&mut rng, 40); // deliberately tiny
    let test_ds = gen.dataset(&mut rng, 100); // in-distribution test

    let emb = skipgram::train(
        &lm_corpus,
        &SkipGramConfig { dim: 24, epochs: 4, min_count: 1, ..Default::default() },
        &mut rng,
    );
    // The paper's §3.2.1 claim: pretrained > random init, measured on the
    // training distribution. (On the *unseen-entity* split, fine-tuning a
    // tiny dataset can memorize seen-entity vectors and regress — the
    // classic small-data fine-tuning failure; the frozen variant is immune.
    // EXPERIMENTS.md records that nuance.)
    let random = tagger_f1(&train_ds, &test_ds, None, None);
    let pretrained = tagger_f1(&train_ds, &test_ds, Some(&emb), None);
    assert!(
        pretrained > random,
        "pretrained embeddings should beat random init at 40 sentences: {pretrained} vs {random}"
    );
}

#[test]
fn contextual_embeddings_help_low_resource_ner() {
    let mut rng = StdRng::seed_from_u64(4);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let lm_corpus = gen.lm_sentences(&mut rng, 400);
    let train_ds = gen.dataset(&mut rng, 40);
    let test_gen =
        NewsGenerator::new(GeneratorConfig { unseen_entity_rate: 0.4, ..Default::default() });
    let test_ds = test_gen.dataset(&mut rng, 100);

    let (charlm, _) = CharLm::train(
        &lm_corpus,
        &CharLmConfig { hidden: 32, epochs: 2, ..Default::default() },
        &mut rng,
    );
    let without = tagger_f1(&train_ds, &test_ds, None, None);
    let with_lm = tagger_f1(&train_ds, &test_ds, None, Some(&charlm));
    assert!(
        with_lm > without,
        "contextual LM features should help at 40 sentences: {with_lm} vs {without}"
    );
}

#[test]
fn transfer_pipeline_composes_across_crates() {
    let mut rng = StdRng::seed_from_u64(5);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let source_ds = gen.dataset(&mut rng, 120);
    let target_ds = gen.dataset(&mut rng, 15);
    let test_ds = gen.dataset(&mut rng, 60);

    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 20 },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Lstm { hidden: 20, bidirectional: true, layers: 1 },
        dropout: 0.1,
        ..NerConfig::default()
    };
    let encoder = SentenceEncoder::from_dataset(&source_ds, cfg.scheme, 1);
    let source_enc = encoder.encode_dataset(&source_ds, None);
    let target_enc = encoder.encode_dataset(&target_ds, None);
    let test_enc = encoder.encode_dataset(&test_ds, None);

    let tc = TrainConfig { epochs: 5, patience: None, ..Default::default() };
    let mut source = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
    ner_core::trainer::train(&mut source, &source_enc, None, &tc, &mut rng);

    let tc_small = TrainConfig { epochs: 3, patience: None, ..Default::default() };
    let (ft, _) = transfer_train(
        &cfg,
        &encoder,
        Some(&source),
        &target_enc,
        TransferScheme::FineTuneAll,
        None,
        &tc_small,
        &mut rng,
    );
    let (scratch, _) = transfer_train(
        &cfg,
        &encoder,
        None,
        &target_enc,
        TransferScheme::FromScratch,
        None,
        &tc_small,
        &mut rng,
    );
    let f1_ft = evaluate_model(&ft, &test_enc).micro.f1;
    let f1_scratch = evaluate_model(&scratch, &test_enc).micro.f1;
    assert!(f1_ft > f1_scratch, "warm start must help at 15 sentences: {f1_ft} vs {f1_scratch}");
}
