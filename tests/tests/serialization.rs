//! Persistence round trips: datasets, configurations and trained model
//! parameters all survive serde, and a parameter-restored model makes
//! identical predictions — the checkpointing story for the toolkit.

use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dataset_round_trips_through_json() {
    let mut rng = StdRng::seed_from_u64(1);
    let ds = NewsGenerator::new(GeneratorConfig { annotate_nested: true, ..Default::default() })
        .dataset(&mut rng, 40);
    let json = serde_json::to_string(&ds).unwrap();
    let back: Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(ds, back);
    assert_eq!(ds.stats(), back.stats());
}

#[test]
fn config_round_trips_through_json() {
    let cfg = NerConfig {
        scheme: TagScheme::Bioes,
        word: WordRepr::Pretrained { fine_tune: false },
        char_repr: CharRepr::Lstm { dim: 16, hidden: 12 },
        encoder: EncoderKind::IdCnn {
            filters: 24,
            width: 3,
            dilations: vec![1, 2, 4],
            iterations: 2,
        },
        decoder: DecoderKind::SemiCrf { max_len: 5 },
        ..NerConfig::default()
    };
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    let back: NerConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn trained_parameters_restore_identical_predictions() {
    let mut rng = StdRng::seed_from_u64(2);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let train_ds = gen.dataset(&mut rng, 60);
    let test_ds = gen.dataset(&mut rng, 20);

    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 16 },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
        dropout: 0.1,
        ..NerConfig::default()
    };
    let encoder = SentenceEncoder::from_dataset(&train_ds, cfg.scheme, 1);
    let mut model = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
    let train_enc = encoder.encode_dataset(&train_ds, None);
    ner_core::trainer::train(
        &mut model,
        &train_enc,
        None,
        &TrainConfig { epochs: 3, patience: None, ..Default::default() },
        &mut rng,
    );

    // Checkpoint the parameter store to JSON and restore into a fresh model.
    let checkpoint = serde_json::to_string(&model.store).unwrap();
    let mut rng2 = StdRng::seed_from_u64(777); // different init on purpose
    let mut restored = NerModel::new(cfg, &encoder, None, &mut rng2);
    let loaded: ParamStore = serde_json::from_str(&checkpoint).unwrap();
    let copied = restored.store.load_matching(&loaded);
    assert!(copied > 0, "checkpoint restore must match parameters by name");

    let test_enc = encoder.encode_dataset(&test_ds, None);
    for e in &test_enc {
        assert_eq!(
            model.predict_spans(e),
            restored.predict_spans(e),
            "restored model must predict identically"
        );
    }
}

#[test]
fn vocab_and_tagset_round_trip() {
    let mut rng = StdRng::seed_from_u64(3);
    let ds = NewsGenerator::new(GeneratorConfig::default()).dataset(&mut rng, 30);
    let vocab = ds.word_vocab(1);
    let json = serde_json::to_string(&vocab).unwrap();
    let back: ner_text::Vocab = serde_json::from_str(&json).unwrap();
    assert_eq!(vocab.len(), back.len());
    for i in 0..vocab.len() {
        assert_eq!(vocab.item(i), back.item(i));
    }

    let ts = ner_text::TagSet::new(TagScheme::Bioes, &ds.entity_types());
    let json = serde_json::to_string(&ts).unwrap();
    let back: ner_text::TagSet = serde_json::from_str(&json).unwrap();
    assert_eq!(ts.tags(), back.tags());
}

#[test]
fn embeddings_round_trip() {
    let mut rng = StdRng::seed_from_u64(4);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let corpus = gen.lm_sentences(&mut rng, 80);
    let emb = ner_embed::skipgram::train(
        &corpus,
        &ner_embed::skipgram::SkipGramConfig { dim: 8, epochs: 1, ..Default::default() },
        &mut rng,
    );
    let json = serde_json::to_string(&emb).unwrap();
    let back: ner_embed::WordEmbeddings = serde_json::from_str(&json).unwrap();
    assert_eq!(emb.matrix(), back.matrix());
    assert_eq!(emb.vector("the"), back.vector("the"));
}
