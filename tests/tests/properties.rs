//! Property-based tests over the workspace's core invariants.

use ner_core::decoder::{Crf, Segment, SemiCrf};
use ner_core::metrics::evaluate;
use ner_tensor::{ParamStore, Tape, Tensor};
use ner_text::{conll, EntitySpan, Sentence, TagScheme, TagSet, Vocab};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary non-overlapping spans over a sentence of length `n`.
fn arb_spans(n: usize) -> impl Strategy<Value = Vec<EntitySpan>> {
    // Random label per position cut into segments: derive spans from a
    // random per-token type assignment (0 = O), which is non-overlapping by
    // construction.
    prop::collection::vec(0usize..4, n).prop_map(|types| {
        let labels = ["PER", "LOC", "ORG"];
        let mut spans = Vec::new();
        let mut i = 0;
        while i < types.len() {
            if types[i] == 0 {
                i += 1;
                continue;
            }
            let ty = types[i];
            let start = i;
            while i < types.len() && types[i] == ty {
                i += 1;
            }
            spans.push(EntitySpan::new(start, i, labels[ty - 1]));
        }
        spans
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tag_scheme_round_trip(spans_and_n in (1usize..20).prop_flat_map(|n| (arb_spans(n), Just(n)))) {
        let (spans, n) = spans_and_n;
        for scheme in [TagScheme::Io, TagScheme::Bio, TagScheme::Bioes] {
            let tags = scheme.spans_to_tags(n, &spans);
            prop_assert_eq!(tags.len(), n);
            let back = scheme.tags_to_spans(&tags);
            // IO merges adjacent same-type spans; BIO/BIOES must round-trip.
            if scheme != TagScheme::Io {
                let mut a = back.clone();
                a.sort();
                let mut b = spans.clone();
                b.sort();
                prop_assert_eq!(a, b);
            }
            // All schemes re-render identically after one round trip (idempotence).
            let tags2 = scheme.spans_to_tags(n, &back);
            prop_assert_eq!(scheme.tags_to_spans(&tags2), back);
        }
    }

    #[test]
    fn scheme_conversion_preserves_spans(n in 1usize..15, types in prop::collection::vec(0usize..3, 1..15)) {
        let n = n.min(types.len());
        let types = &types[..n];
        let mut spans = Vec::new();
        let mut i = 0;
        while i < n {
            if types[i] == 0 { i += 1; continue; }
            let start = i;
            let ty = types[i];
            while i < n && types[i] == ty { i += 1; }
            spans.push(EntitySpan::new(start, i, if ty == 1 { "PER" } else { "LOC" }));
        }
        let bio = TagScheme::Bio.spans_to_tags(n, &spans);
        let bioes = TagScheme::Bio.convert(&bio, TagScheme::Bioes);
        prop_assert!(TagScheme::Bioes.is_valid(&bioes));
        let back = TagScheme::Bioes.convert(&bioes, TagScheme::Bio);
        prop_assert_eq!(back, bio);
    }

    #[test]
    fn crf_viterbi_matches_brute_force(seed in 0u64..200, t_len in 1usize..6) {
        let k = 3usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let crf = Crf::new(&mut store, &mut rng, "crf", k);
        let emissions = ner_tensor::init::uniform(&mut rng, t_len, k, 2.0);

        let (tags, score) = crf.viterbi(&store, &emissions, None);
        // Brute force over all k^T paths.
        let trans = store.value(crf.transitions);
        let start = store.value(crf.start);
        let end = store.value(crf.end);
        let mut best = f64::NEG_INFINITY;
        let total = k.pow(t_len as u32);
        for code in 0..total {
            let mut path = Vec::with_capacity(t_len);
            let mut c = code;
            for _ in 0..t_len {
                path.push(c % k);
                c /= k;
            }
            let mut s = start.at2(0, path[0]) as f64 + emissions.at2(0, path[0]) as f64;
            for t in 1..t_len {
                s += trans.at2(path[t - 1], path[t]) as f64 + emissions.at2(t, path[t]) as f64;
            }
            s += end.at2(0, path[t_len - 1]) as f64;
            best = best.max(s);
        }
        prop_assert!((score - best).abs() < 1e-4, "viterbi {score} vs brute force {best}");
        prop_assert_eq!(tags.len(), t_len);

        // log partition >= best path score, and marginals sum to one.
        let log_z = crf.log_partition(&store, &emissions);
        prop_assert!(log_z >= best - 1e-6);
        let marginals = crf.marginals(&store, &emissions);
        for t in 0..t_len {
            let s: f32 = marginals.row(t).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn semicrf_decode_tiles_any_input(seed in 0u64..100, n in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let crf = SemiCrf::new(&mut store, &mut rng, "s", 2, 3);
        let emissions = ner_tensor::init::uniform(&mut rng, n, 3, 2.0);
        let segs = crf.decode(&store, &emissions);
        let mut pos = 0;
        for s in &segs {
            prop_assert_eq!(s.start, pos);
            prop_assert!(s.end > s.start && s.end <= n);
            if s.label == 0 {
                prop_assert_eq!(s.end - s.start, 1);
            } else {
                prop_assert!(s.end - s.start <= 3);
            }
            pos = s.end;
        }
        prop_assert_eq!(pos, n);

        // The decoded segmentation has NLL >= 0 relative to itself being in
        // the hypothesis space: its nll is finite.
        let mut tape = Tape::new();
        let e = tape.constant(emissions.clone());
        let gold: Vec<Segment> = segs;
        let nll = crf.nll(&mut tape, &store, e, &gold);
        prop_assert!(tape.value(nll).item().is_finite());
        // The MAP segmentation has the lowest NLL of any we can easily test:
        // compare against the all-O segmentation.
        let all_o: Vec<Segment> =
            (0..n).map(|i| Segment { start: i, end: i + 1, label: 0 }).collect();
        if all_o != gold {
            let mut tape2 = Tape::new();
            let e2 = tape2.constant(emissions);
            let nll_o = crf.nll(&mut tape2, &store, e2, &all_o);
            prop_assert!(tape.value(nll).item() <= tape2.value(nll_o).item() + 1e-4);
        }
    }

    #[test]
    fn metrics_are_bounded_and_perfect_on_self(n in 1usize..10, types in prop::collection::vec(0usize..4, 1..10)) {
        let n = n.min(types.len());
        let mut spans = Vec::new();
        let mut i = 0;
        while i < n {
            if types[i] == 0 { i += 1; continue; }
            let start = i;
            let ty = types[i];
            while i < n && types[i] == ty { i += 1; }
            spans.push(EntitySpan::new(start, i, format!("T{ty}")));
        }
        let golds = vec![spans.clone()];
        let self_eval = evaluate(&golds, &golds);
        if !spans.is_empty() {
            prop_assert_eq!(self_eval.micro.f1, 1.0);
        }
        let empty_eval = evaluate(&golds, &[vec![]]);
        prop_assert!(empty_eval.micro.f1 >= 0.0 && empty_eval.micro.f1 <= 1.0);
        prop_assert_eq!(empty_eval.micro.precision, 0.0);
    }

    #[test]
    fn conll_round_trip(tokens in prop::collection::vec("[A-Za-z0-9,.@#']{1,12}", 1..12), types in prop::collection::vec(0usize..3, 1..12)) {
        let n = tokens.len().min(types.len());
        let tokens = &tokens[..n];
        let mut spans = Vec::new();
        let mut i = 0;
        while i < n {
            if types[i] == 0 { i += 1; continue; }
            let start = i;
            let ty = types[i];
            while i < n && types[i] == ty { i += 1; }
            spans.push(EntitySpan::new(start, i, if ty == 1 { "PER" } else { "LOC" }));
        }
        let sentence = Sentence::new(tokens, spans);
        let text = conll::write_conll(std::slice::from_ref(&sentence), TagScheme::Bioes);
        let back = conll::read_conll(&text, TagScheme::Bioes);
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(&back[0], &sentence);
    }

    #[test]
    fn vocab_encode_never_panics_and_is_stable(words in prop::collection::vec("[a-z]{1,8}", 1..30)) {
        let vocab = Vocab::build(words.iter(), 1);
        let enc1 = vocab.encode(&words);
        let enc2 = vocab.encode(&words);
        prop_assert_eq!(&enc1, &enc2);
        prop_assert!(enc1.iter().all(|&i| i < vocab.len()));
        // Unknown word maps to UNK.
        prop_assert_eq!(vocab.get_or_unk("ZZZ-not-in-vocab"), ner_text::UNK);
    }

    #[test]
    fn tagset_transitions_agree_with_validity(seed in 0u64..100) {
        let ts = TagSet::new(TagScheme::Bioes, &["PER", "LOC"]);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        // Random 2-tag sequences: transition_allowed+start/end must exactly
        // predict is_valid.
        let a = rng.gen_range(0..ts.len());
        let b = rng.gen_range(0..ts.len());
        let tags = vec![ts.tag(a).to_string(), ts.tag(b).to_string()];
        let structurally_ok =
            ts.start_allowed(a) && ts.transition_allowed(a, b) && ts.end_allowed(b);
        prop_assert_eq!(
            structurally_ok,
            TagScheme::Bioes.is_valid(&tags),
            "disagreement on {:?}",
            tags
        );
    }
}

#[test]
fn tensor_softmax_invariants() {
    let mut rng = StdRng::seed_from_u64(1);
    let x = ner_tensor::init::uniform(&mut rng, 6, 9, 5.0);
    let mut tape = Tape::new();
    let v = tape.constant(x);
    let s = tape.softmax_rows(v);
    let val: &Tensor = tape.value(s);
    for r in 0..6 {
        let sum: f32 = val.row(r).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(val.row(r).iter().all(|&p| p >= 0.0));
    }
}
