//! Cross-crate end-to-end quality gates: corpus generation → encoding →
//! training → evaluation → raw-text inference, exercising the same path the
//! experiment harnesses and examples use.

use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::noise::{corrupt_dataset, NoiseModel};
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg(decoder: DecoderKind) -> NerConfig {
    NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 20 },
        char_repr: CharRepr::Cnn { dim: 12, filters: 12 },
        encoder: EncoderKind::Lstm { hidden: 24, bidirectional: true, layers: 1 },
        decoder,
        dropout: 0.1,
        ..NerConfig::default()
    }
}

#[test]
fn bilstm_crf_reaches_high_f1_on_clean_news() {
    let mut rng = StdRng::seed_from_u64(1);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let train_ds = gen.dataset(&mut rng, 200);
    let test_ds = gen.dataset(&mut rng, 80);
    let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
    let mut model = NerModel::new(quick_cfg(DecoderKind::Crf), &encoder, None, &mut rng);
    let train_enc = encoder.encode_dataset(&train_ds, None);
    ner_core::trainer::train(
        &mut model,
        &train_enc,
        None,
        &TrainConfig { epochs: 8, patience: None, ..Default::default() },
        &mut rng,
    );
    let result = evaluate_model(&model, &encoder.encode_dataset(&test_ds, None));
    assert!(result.micro.f1 > 0.9, "clean-news F1 should exceed 90%, got {}", result.micro.f1);
    // Relaxed metrics bound the exact ones from above.
    assert!(result.relaxed_type.f1 >= result.micro.f1 - 1e-9);
    assert!(result.boundary.f1 >= result.micro.f1 - 1e-9);
}

#[test]
fn noise_channel_degrades_performance() {
    let mut rng = StdRng::seed_from_u64(2);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let train_ds = gen.dataset(&mut rng, 150);
    let clean_test = gen.dataset(&mut rng, 80);
    let noisy_test = corrupt_dataset(&clean_test, &NoiseModel::social_media(), &mut rng);

    let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
    let mut model = NerModel::new(quick_cfg(DecoderKind::Crf), &encoder, None, &mut rng);
    let train_enc = encoder.encode_dataset(&train_ds, None);
    ner_core::trainer::train(
        &mut model,
        &train_enc,
        None,
        &TrainConfig { epochs: 6, patience: None, ..Default::default() },
        &mut rng,
    );
    let clean = evaluate_model(&model, &encoder.encode_dataset(&clean_test, None)).micro.f1;
    let noisy = evaluate_model(&model, &encoder.encode_dataset(&noisy_test, None)).micro.f1;
    assert!(
        clean - noisy > 0.1,
        "the informal-text gap (§5.1) should be substantial: clean {clean} vs noisy {noisy}"
    );
}

#[test]
fn segment_decoders_train_end_to_end() {
    let mut rng = StdRng::seed_from_u64(3);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let train_ds = gen.dataset(&mut rng, 120);
    let test_ds = gen.dataset(&mut rng, 50);
    for decoder in
        [DecoderKind::SemiCrf { max_len: 4 }, DecoderKind::Pointer { att: 16, max_len: 4 }]
    {
        let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let mut model = NerModel::new(quick_cfg(decoder.clone()), &encoder, None, &mut rng);
        let train_enc = encoder.encode_dataset(&train_ds, None);
        ner_core::trainer::train(
            &mut model,
            &train_enc,
            None,
            &TrainConfig { epochs: 6, patience: None, ..Default::default() },
            &mut rng,
        );
        let f1 = evaluate_model(&model, &encoder.encode_dataset(&test_ds, None)).micro.f1;
        assert!(f1 > 0.6, "{decoder:?} should learn the task, got F1 {f1}");
    }
}

#[test]
fn pipeline_handles_arbitrary_raw_text() {
    let mut rng = StdRng::seed_from_u64(4);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let train_ds = gen.dataset(&mut rng, 80);
    let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
    let mut model = NerModel::new(quick_cfg(DecoderKind::Crf), &encoder, None, &mut rng);
    let train_enc = encoder.encode_dataset(&train_ds, None);
    ner_core::trainer::train(
        &mut model,
        &train_enc,
        None,
        &TrainConfig { epochs: 3, patience: None, ..Default::default() },
        &mut rng,
    );
    let pipeline = NerPipeline::new(encoder, model);
    // Robustness: OOV text, unicode, punctuation-only, single token.
    for text in [
        "Zxqwv Blorptag visited Qqqland!!!",
        "übermensch café naïve — №42",
        "...",
        "Hello",
        "@user #tag https://x.io/y ?!",
    ] {
        let out = pipeline.extract(text);
        for e in &out.entities {
            assert!(e.end <= out.len(), "span out of bounds on {text:?}");
        }
    }
}

#[test]
fn deterministic_training_given_seed() {
    let build = || {
        let mut rng = StdRng::seed_from_u64(5);
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let train_ds = gen.dataset(&mut rng, 60);
        let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let mut model = NerModel::new(quick_cfg(DecoderKind::Crf), &encoder, None, &mut rng);
        let train_enc = encoder.encode_dataset(&train_ds, None);
        let report = ner_core::trainer::train(
            &mut model,
            &train_enc,
            None,
            &TrainConfig { epochs: 3, patience: None, ..Default::default() },
            &mut rng,
        );
        report.epochs.iter().map(|e| e.train_loss).collect::<Vec<_>>()
    };
    assert_eq!(build(), build(), "training must be bit-reproducible given the seed");
}
