//! E-T1 — reproduces **Table 1** (the annotated-dataset inventory).
//!
//! Prints the paper's corpus inventory (name, year, source, #tags) and, for
//! every corpus this workspace emulates, generates its synthetic analog and
//! reports measured statistics (sentences, tokens, entities, measured #tags,
//! nesting fraction) so the substitution of DESIGN.md §1 is auditable.

use ner_bench::{init_harness, print_table, write_report, Scale};
use ner_corpus::noise::corrupt_dataset;
use ner_corpus::profiles::table1_profiles;
use ner_corpus::NewsGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: &'static str,
    year: &'static str,
    source: &'static str,
    paper_tags: usize,
    analog: String,
    sentences: usize,
    tokens: usize,
    entities: usize,
    measured_tags: usize,
    nested_pct: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("table1", 41, scale);
    let n = scale.size(400);
    let mut rows = Vec::new();
    for profile in table1_profiles() {
        let (analog, stats) = match profile.generator_config() {
            None => ("(not emulated)".to_string(), None),
            Some(cfg) => {
                let mut rng = StdRng::seed_from_u64(41);
                let mut ds = NewsGenerator::new(cfg).dataset(&mut rng, n);
                let label = if let Some(noise) = profile.noise_model() {
                    ds = corrupt_dataset(&ds, &noise, &mut rng);
                    "news+noise channel"
                } else if matches!(profile.analog, ner_corpus::profiles::Analog::Nested) {
                    "nested news"
                } else {
                    "news generator"
                };
                (label.to_string(), Some(ds.stats()))
            }
        };
        let (sentences, tokens, entities, measured_tags, nested_pct) = match &stats {
            Some(s) => {
                (s.sentences, s.tokens, s.entities, s.entity_types, 100.0 * s.nested_fraction)
            }
            None => (0, 0, 0, 0, 0.0),
        };
        rows.push(Row {
            name: profile.name,
            year: profile.year,
            source: profile.source,
            paper_tags: profile.tags,
            analog,
            sentences,
            tokens,
            entities,
            measured_tags,
            nested_pct,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.year.to_string(),
                r.source.to_string(),
                r.paper_tags.to_string(),
                r.analog.clone(),
                if r.sentences > 0 { r.sentences.to_string() } else { "-".into() },
                if r.sentences > 0 { r.entities.to_string() } else { "-".into() },
                if r.sentences > 0 { r.measured_tags.to_string() } else { "-".into() },
                if r.sentences > 0 { format!("{:.1}%", r.nested_pct) } else { "-".into() },
            ]
        })
        .collect();
    print_table(
        "Table 1 — annotated datasets for English NER (paper inventory + synthetic analogs)",
        &[
            "Corpus",
            "Year",
            "Text Source",
            "#Tags(paper)",
            "Analog",
            "Sents",
            "Entities",
            "#Tags(measured)",
            "Nested",
        ],
        &table,
    );
    let path = write_report("table1", &rows);
    println!("\nreport: {}", path.display());
}
