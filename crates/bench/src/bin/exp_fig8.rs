//! E-F8 — reproduces **Fig. 8** (bidirectional recursive network over
//! phrase structure, Li et al. 2017).
//!
//! Trains the tree-structured encoder (rule-chunked binarized constituents,
//! bottom-up + top-down passes) and compares it against a flat
//! word+softmax baseline with the same embedding budget — the survey's
//! point being that composing along linguistic structure is a *viable*
//! context encoder.

use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, write_report, Scale,
};
use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
use ner_core::encoder::recursive::{chunk_tree, RecursiveNer};
use ner_core::metrics::evaluate;
use ner_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    f1_recursive: f64,
    f1_flat_softmax: f64,
    mean_tree_depth: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("fig8", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);
    let mut rng = StdRng::seed_from_u64(31);

    // Tree statistics (sanity that the chunker yields real structure).
    let mut depth_sum = 0usize;
    for s in &data.test.sentences {
        let toks: Vec<&str> = s.texts();
        depth_sum += chunk_tree(&toks).depth();
    }
    let mean_depth = depth_sum as f64 / data.test.len() as f64;
    println!("mean chunk-tree depth on test: {mean_depth:.1}");

    // Recursive model (IO scheme — per-node classification as in the paper).
    println!("training bidirectional recursive network ...");
    let types = data.train.entity_types();
    let mut recursive = RecursiveNer::new(data.train.word_vocab(1), &types, 32, &mut rng);
    recursive.fit(&data.train.sentences, tc.epochs, 0.01, &mut rng);
    let golds: Vec<_> = data.test.sentences.iter().map(|s| s.outermost_entities()).collect();
    let preds: Vec<_> = data
        .test
        .sentences
        .iter()
        .map(|s| {
            let toks: Vec<String> = s.tokens.iter().map(|t| t.text.clone()).collect();
            recursive.predict(&toks)
        })
        .collect();
    let f1_rec = evaluate(&golds, &preds).micro.f1;

    // Flat baseline: word embedding → softmax (no sequence encoder), same
    // budget — isolates the contribution of tree composition.
    println!("training flat word+softmax baseline ...");
    let flat_cfg = NerConfig {
        scheme: TagScheme::Io,
        word: WordRepr::Random { dim: 32 },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Identity,
        decoder: DecoderKind::Softmax,
        dropout: 0.1,
        ..NerConfig::default()
    };
    let (enc, flat) = ner_bench::train_model(flat_cfg, &data.train, &tc, 31);
    let f1_flat = ner_bench::eval_on(&enc, &flat, &data.test).micro.f1;

    print_table(
        "Fig. 8 — recursive encoder over phrase structure vs flat baseline",
        &["Model", "F1 (test)"],
        &[
            vec!["word + softmax (no structure)".into(), pct(f1_flat)],
            vec!["bidirectional recursive net (Fig. 8)".into(), pct(f1_rec)],
        ],
    );
    println!("\nExpected shape (paper §3.3.3): structural composition beats the structure-free");
    println!("baseline, demonstrating constituency information is a usable context signal.");
    let path = write_report(
        "fig8",
        &Report { f1_recursive: f1_rec, f1_flat_softmax: f1_flat, mean_tree_depth: mean_depth },
    );
    println!("report: {}", path.display());
}
