//! E-F3 — reproduces **Fig. 3** (character-level representations).
//!
//! Ablates the character channel {none, CNN (Fig. 3a), BiLSTM (Fig. 3b)}
//! over the same word+BiLSTM+CRF skeleton and reports F1 on in-distribution
//! and unseen-entity test sets, plus unseen-entity *recall* specifically —
//! the paper's motivation for char reps is exactly OOV/morphology handling
//! (§3.2.2).

use ner_bench::{
    eval_on, harness_train_config, init_harness, pct, print_table, standard_data, train_model,
    write_report, Scale,
};
use ner_core::config::{CharRepr, NerConfig, WordRepr};
use ner_core::metrics::seen_unseen_recall;
use ner_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    char_repr: String,
    f1_test: f64,
    f1_unseen: f64,
    unseen_recall: f64,
    seen_recall: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("fig3", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);
    let train_surfaces = data.train.entity_surfaces();

    let variants = [
        ("none", CharRepr::None),
        ("CNN (Fig. 3a)", CharRepr::Cnn { dim: 16, filters: 16 }),
        ("BiLSTM (Fig. 3b)", CharRepr::Lstm { dim: 16, hidden: 12 }),
    ];

    let mut rows = Vec::new();
    for (name, char_repr) in variants {
        let cfg =
            NerConfig { char_repr, word: WordRepr::Random { dim: 32 }, ..NerConfig::default() };
        let (enc, model) = train_model(cfg, &data.train, &tc, 11);
        let f1_test = eval_on(&enc, &model, &data.test).micro.f1;
        let unseen_enc = enc.encode_dataset(&data.test_unseen, None);
        let f1_unseen = evaluate_model(&model, &unseen_enc).micro.f1;

        let golds: Vec<_> = unseen_enc.iter().map(|e| e.gold.clone()).collect();
        let preds = predict_all(&model, &unseen_enc);
        let surfaces: Vec<_> = unseen_enc.iter().map(|e| e.gold_surfaces()).collect();
        let split = seen_unseen_recall(&golds, &preds, &surfaces, &train_surfaces);

        println!("char={name}: unseen-entity recall {}", pct(split.unseen_recall));
        rows.push(Row {
            char_repr: name.to_string(),
            f1_test,
            f1_unseen,
            unseen_recall: split.unseen_recall,
            seen_recall: split.seen_recall,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.char_repr.clone(),
                pct(r.f1_test),
                pct(r.f1_unseen),
                pct(r.seen_recall),
                pct(r.unseen_recall),
            ]
        })
        .collect();
    print_table(
        "Fig. 3 — character-level representation ablation (word+BiLSTM+CRF skeleton)",
        &["Char repr", "F1 (test)", "F1 (unseen)", "Seen recall", "Unseen recall"],
        &table,
    );
    println!(
        "\nExpected shape (paper §3.2.2): both char channels lift unseen-entity recall over 'none'."
    );
    let path = write_report("fig3", &rows);
    println!("report: {}", path.display());
}
