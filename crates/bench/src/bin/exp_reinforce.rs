//! E-S44 — reproduces the **§4.4 reinforcement-learning result** (Yang et
//! al. 2018): with distantly supervised (label-noisy) training data, a
//! policy-gradient instance selector that filters noisy sentences recovers
//! tagger performance lost to the noise.
//!
//! Conditions: clean-data ceiling, noisy data (no selector), noisy data with
//! the REINFORCE-trained selector.

use ner_applied::reinforce::{select, train_selector};
use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, write_report, Scale,
};
use ner_core::config::{CharRepr, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::distant::{corrupt_dataset_labels, corruption_rate, LabelNoise};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    corruption_rate: f64,
    f1_clean_ceiling: f64,
    f1_noisy: f64,
    f1_selected: f64,
    keep_rate: f64,
    selector_precision: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("reinforce", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);
    let mut rng = StdRng::seed_from_u64(71);

    // Distant supervision: corrupt the training labels at a known rate.
    let noisy = corrupt_dataset_labels(&data.train, &LabelNoise::distant_supervision(), &mut rng);
    let rate = corruption_rate(&noisy);
    let noisy_ds = Dataset::new(noisy.iter().map(|n| n.sentence.clone()).collect());
    println!("label-noise channel corrupted {} of training sentences", pct(rate));

    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 24 },
        char_repr: CharRepr::Cnn { dim: 12, filters: 12 },
        ..NerConfig::default()
    };
    let encoder = SentenceEncoder::from_dataset(&data.train, cfg.scheme, 1);
    let clean_enc = encoder.encode_dataset(&data.train, None);
    let noisy_enc = encoder.encode_dataset(&noisy_ds, None);
    let dev_enc = encoder.encode_dataset(&data.dev, None);
    let test_enc = encoder.encode_dataset(&data.test_unseen, None);

    println!("training clean-data ceiling ...");
    let mut clean_model = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
    ner_core::trainer::train(&mut clean_model, &clean_enc, None, &tc, &mut rng);
    let f1_clean = evaluate_model(&clean_model, &test_enc).micro.f1;

    println!("training on noisy labels (no selector) ...");
    let mut noisy_model = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
    ner_core::trainer::train(&mut noisy_model, &noisy_enc, None, &tc, &mut rng);
    let f1_noisy = evaluate_model(&noisy_model, &test_enc).micro.f1;

    println!("training the REINFORCE instance selector ...");
    let mut selector_model = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
    // Warm up the tagger so the selector's features are informative.
    let warm = TrainConfig { epochs: scale.epochs(3), patience: None, ..TrainConfig::default() };
    ner_core::trainer::train(&mut selector_model, &noisy_enc, None, &warm, &mut rng);
    let episodes = scale.epochs(30);
    let (policy, rl_report) =
        train_selector(&mut selector_model, &noisy_enc, &dev_enc, episodes, 400.0, &mut rng);
    println!(
        "episode rewards (−dev NLL): {:?}",
        rl_report.episode_rewards.iter().map(|r| (r * 1000.0).round() / 1000.0).collect::<Vec<_>>()
    );
    println!(
        "learned policy weights [label-NLL, conf, entropy, bias]: {:?}",
        policy.w.iter().map(|w| (w * 100.0).round() / 100.0).collect::<Vec<_>>()
    );

    // Final model trained from scratch on the selected subset.
    let kept = select(&policy, &selector_model, &noisy_enc);
    println!("selector keeps {}/{} sentences", kept.len(), noisy_enc.len());
    // How often does the selector keep CLEAN sentences (selector precision)?
    let kept_clean = noisy_enc
        .iter()
        .zip(&noisy)
        .filter(|(e, n)| {
            !n.corrupted && kept.iter().any(|k| k.tokens == e.tokens && k.gold == e.gold)
        })
        .count();
    let selector_precision =
        if kept.is_empty() { 0.0 } else { kept_clean as f64 / kept.len() as f64 };

    let mut final_model = NerModel::new(cfg, &encoder, None, &mut rng);
    ner_core::trainer::train(&mut final_model, &kept, None, &tc, &mut rng);
    let f1_selected = evaluate_model(&final_model, &test_enc).micro.f1;

    print_table(
        "§4.4 — RL instance selection over distantly supervised labels",
        &["Condition", "F1 (unseen test)"],
        &[
            vec!["clean labels (ceiling)".into(), pct(f1_clean)],
            vec![format!("noisy labels ({} corrupted)", pct(rate)), pct(f1_noisy)],
            vec![
                format!("noisy + RL selector (keeps {})", pct(rl_report.final_keep_rate)),
                pct(f1_selected),
            ],
        ],
    );
    println!("\nselector precision (kept sentences that are clean): {}", pct(selector_precision));
    println!("Expected shape (paper §4.4): noisy < selected ≤ clean — the selector recovers");
    println!("part of the gap the label noise opened.");
    let path = write_report(
        "reinforce",
        &Report {
            corruption_rate: rate,
            f1_clean_ceiling: f1_clean,
            f1_noisy,
            f1_selected,
            keep_rate: rl_report.final_keep_rate,
            selector_precision,
        },
    );
    println!("report: {}", path.display());
}
