//! E-T3 — reproduces **Table 3** (summary of neural NER architectures and
//! their F-scores).
//!
//! Trains the survey's architecture families — every combination axis the
//! paper tabulates: character representation {none, CNN, LSTM}, word
//! representation {random, pretrained}, hybrid features {handcrafted,
//! gazetteer}, context encoder {window-MLP, CNN, ID-CNN, LSTM, BiLSTM,
//! BiGRU, Transformer}, tag decoder {Softmax, CRF, Semi-CRF, RNN, Pointer},
//! plus contextual-LM-embedding rows — on the same synthetic-CoNLL split and
//! reports exact-match micro-F1 on the unseen-entity test set.
//!
//! Expected shape (paper): BiLSTM-CRF family dominates static-embedding
//! rows; char channels and pretrained words help; contextual LM embeddings
//! are best; un-pretrained Transformers fail on limited data.

use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, write_report, Scale,
};
use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_embed::charlm::{CharLm, CharLmConfig};
use ner_embed::skipgram::{self, SkipGramConfig};
use ner_embed::{ContextualEmbedder, WordEmbeddings};
use ner_text::Gazetteer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    signature: String,
    reference: String,
    f1_test: f64,
    f1_unseen: f64,
    params: usize,
}

struct Ctx {
    data: ner_bench::ExperimentData,
    pretrained: WordEmbeddings,
    charlm: CharLm,
    gazetteer: Gazetteer,
    tc: TrainConfig,
}

fn train_gazetteer(train: &Dataset) -> Gazetteer {
    let mut g = Gazetteer::new();
    for s in &train.sentences {
        for e in &s.entities {
            let toks: Vec<&str> =
                s.tokens[e.start..e.end].iter().map(|t| t.text.as_str()).collect();
            g.add(e.coarse_label(), &toks);
        }
    }
    g
}

#[allow(clippy::too_many_arguments)]
fn run(
    ctx: &Ctx,
    rows: &mut Vec<Row>,
    cfg: NerConfig,
    reference: &str,
    features: bool,
    gazetteer: bool,
    contextual: bool,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut encoder = SentenceEncoder::from_dataset(&ctx.data.train, cfg.scheme, 1);
    if matches!(cfg.word, WordRepr::Pretrained { .. }) {
        encoder = encoder.with_pretrained_vocab(&ctx.pretrained);
    }
    encoder = encoder.with_features(features);
    if gazetteer {
        encoder = encoder.with_gazetteer(ctx.gazetteer.clone());
    }
    let mut cfg = cfg;
    let ctx_embed: Option<&dyn ContextualEmbedder> =
        if contextual { Some(&ctx.charlm) } else { None };
    if contextual {
        cfg.context_dim = ctx.charlm.dim();
    }

    let pretrained = matches!(cfg.word, WordRepr::Pretrained { .. }).then_some(&ctx.pretrained);
    let mut model = NerModel::new(cfg.clone(), &encoder, pretrained, &mut rng);
    let train_enc = encoder.encode_dataset(&ctx.data.train, ctx_embed);
    ner_core::trainer::train(&mut model, &train_enc, None, &ctx.tc, &mut rng);

    let test_enc = encoder.encode_dataset(&ctx.data.test, ctx_embed);
    let unseen_enc = encoder.encode_dataset(&ctx.data.test_unseen, ctx_embed);
    let f1_test = evaluate_model(&model, &test_enc).micro.f1;
    let f1_unseen = evaluate_model(&model, &unseen_enc).micro.f1;
    println!("  {:<42} test {:>6}  unseen {:>6}", cfg.signature(), pct(f1_test), pct(f1_unseen));
    rows.push(Row {
        signature: cfg.signature(),
        reference: reference.to_string(),
        f1_test,
        f1_unseen,
        params: model.num_params(),
    });
}

fn main() {
    let scale = Scale::from_args();
    init_harness("table3", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);

    // Pretrain the static and contextual embeddings on the LM corpus.
    let mut rng = StdRng::seed_from_u64(7);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let lm_corpus = gen.lm_sentences(&mut rng, scale.size(1600));
    println!("pretraining skip-gram embeddings on {} sentences ...", lm_corpus.len());
    let pretrained = skipgram::train(
        &lm_corpus,
        &SkipGramConfig { dim: 32, epochs: scale.epochs(6), min_count: 1, ..Default::default() },
        &mut rng,
    );
    println!("pretraining char-LM contextual embeddings ...");
    let (charlm, _) = CharLm::train(
        &lm_corpus[..scale.size(900)],
        &CharLmConfig { hidden: 48, dim: 24, epochs: scale.epochs(3), ..Default::default() },
        &mut rng,
    );

    let ctx = Ctx { gazetteer: train_gazetteer(&data.train), data, pretrained, charlm, tc };
    let base = NerConfig { dropout: 0.3, ..NerConfig::default() };
    let pre = WordRepr::Pretrained { fine_tune: true };
    let bilstm = EncoderKind::Lstm { hidden: 48, bidirectional: true, layers: 1 };
    let mut rows = Vec::new();

    println!("training the architecture matrix ...");
    // --- Word representation & simple encoders ---
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: WordRepr::Random { dim: 32 },
            encoder: EncoderKind::WindowMlp { window: 2, hidden: 48 },
            decoder: DecoderKind::Softmax,
            ..base.clone()
        },
        "Collobert window approach [17]",
        false,
        false,
        false,
        1,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: WordRepr::Random { dim: 32 },
            encoder: EncoderKind::Cnn { filters: 48, layers: 2, width: 3, global: true },
            decoder: DecoderKind::Crf,
            ..base.clone()
        },
        "Collobert sentence approach + CRF [17]",
        false,
        false,
        false,
        2,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: pre.clone(),
            encoder: EncoderKind::Cnn { filters: 48, layers: 2, width: 3, global: true },
            decoder: DecoderKind::Crf,
            ..base.clone()
        },
        "CNN-CRF + pretrained words [93]",
        false,
        false,
        false,
        3,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: pre.clone(),
            encoder: EncoderKind::IdCnn {
                filters: 48,
                width: 3,
                dilations: vec![1, 2, 4],
                iterations: 2,
            },
            decoder: DecoderKind::Crf,
            ..base.clone()
        },
        "ID-CNN-CRF [90]",
        false,
        false,
        false,
        4,
    );

    // --- RNN encoders ---
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: pre.clone(),
            encoder: EncoderKind::Lstm { hidden: 48, bidirectional: false, layers: 1 },
            decoder: DecoderKind::Crf,
            ..base.clone()
        },
        "uni-LSTM-CRF (ablation)",
        false,
        false,
        false,
        5,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::Crf,
            ..base.clone()
        },
        "BiLSTM-CRF [18]",
        false,
        false,
        false,
        6,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::Cnn { dim: 16, filters: 16 },
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::Crf,
            ..base.clone()
        },
        "charCNN-BiLSTM-CRF [96]",
        false,
        false,
        false,
        7,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::Lstm { dim: 16, hidden: 12 },
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::Crf,
            ..base.clone()
        },
        "charLSTM-BiLSTM-CRF [19]",
        false,
        false,
        false,
        8,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::Lstm { dim: 16, hidden: 12 },
            word: pre.clone(),
            encoder: EncoderKind::Gru { hidden: 48, bidirectional: true },
            decoder: DecoderKind::Crf,
            ..base.clone()
        },
        "charGRU-BiGRU-CRF [105]",
        false,
        false,
        false,
        9,
    );

    // --- Decoders (BiLSTM encoder held fixed) ---
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::Softmax,
            ..base.clone()
        },
        "BiLSTM-Softmax (ablation)",
        false,
        false,
        false,
        10,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::Rnn { tag_dim: 8, hidden: 32 },
            ..base.clone()
        },
        "BiLSTM + RNN decoder [87]",
        false,
        false,
        false,
        11,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::Pointer { att: 24, max_len: 4 },
            ..base.clone()
        },
        "LSTM + pointer network [94]",
        false,
        false,
        false,
        12,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::SemiCrf { max_len: 4 },
            ..base.clone()
        },
        "BiLSTM + semi-CRF [142]",
        false,
        false,
        false,
        13,
    );

    // --- Hybrid features ---
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::Cnn { dim: 16, filters: 16 },
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::Crf,
            use_features: true,
            ..base.clone()
        },
        "+ spelling/POS features [18][111]",
        true,
        false,
        false,
        14,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::Cnn { dim: 16, filters: 16 },
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::Crf,
            use_features: true,
            use_gazetteer: true,
            ..base.clone()
        },
        "+ gazetteers [18][107]",
        true,
        true,
        false,
        15,
    );

    // --- Transformer without pretraining (expected to fail, §3.5) ---
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: pre.clone(),
            encoder: EncoderKind::Transformer { d_model: 48, heads: 4, layers: 2, d_ff: 96 },
            decoder: DecoderKind::Softmax,
            ..base.clone()
        },
        "Transformer from scratch [146][147]",
        false,
        false,
        false,
        16,
    );

    // --- Contextual LM embeddings (paper's SOTA rows) ---
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::Crf,
            ..base.clone()
        },
        "contextual string emb + BiLSTM-CRF [106]",
        false,
        false,
        true,
        17,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::Cnn { dim: 16, filters: 16 },
            word: pre.clone(),
            encoder: bilstm.clone(),
            decoder: DecoderKind::Crf,
            ..base.clone()
        },
        "char+word+LM stack (LM-LSTM-CRF) [124]",
        false,
        false,
        true,
        18,
    );
    run(
        &ctx,
        &mut rows,
        NerConfig {
            char_repr: CharRepr::None,
            word: WordRepr::Random { dim: 16 },
            encoder: EncoderKind::Identity,
            decoder: DecoderKind::Softmax,
            ..base.clone()
        },
        "LM embeddings + softmax head [136]",
        false,
        false,
        true,
        19,
    );

    rows.sort_by(|a, b| b.f1_unseen.partial_cmp(&a.f1_unseen).expect("finite"));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.signature.clone(),
                r.reference.clone(),
                pct(r.f1_test),
                pct(r.f1_unseen),
                format!("{}k", r.params / 1000),
            ]
        })
        .collect();
    print_table(
        "Table 3 — architecture matrix (sorted by unseen-entity F1)",
        &["Architecture", "Survey reference", "F1 (test)", "F1 (unseen)", "Params"],
        &table,
    );
    let path = write_report("table3", &rows);
    println!("\nreport: {}", path.display());
}
