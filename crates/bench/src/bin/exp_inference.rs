//! Serving-path latency: autograd tape vs compiled `ForwardPlan` vs
//! plan + token-feature cache.
//!
//! Measures single-sentence `annotate` latency (p50/p90 at 1 thread) and
//! batch throughput at thread counts 1/2/4 on the global `ner-par` pool,
//! for three variants of the same model:
//!
//! * **tape** — the original autograd-tape forward ([`NerPipeline::annotate_tape`]);
//! * **plan** — the tape-free fused plan with the token cache disabled;
//! * **plan+cache** — the plan with the LRU token-feature cache, measured
//!   both cold (first pass after compilation) and warm (steady state).
//!
//! Batch throughput compares scoring sentences one at a time (fanned over
//! the pool) against the **batched** backend — `annotate_batch` packs each
//! length-sorted bucket into one padded `[B,T]` forward — and reports the
//! per-row `batch_compute_efficiency` (per-sentence wall time over batched
//! wall time at the same thread count).
//!
//! The plan and the batched backend are *verified*, not trusted: before
//! any timing, every sentence is decoded through tape, per-sentence plan,
//! and the batched path, and the predicted tag sequences must be identical
//! — any divergence makes the harness exit non-zero (CI runs this via
//! `--smoke` at `NER_THREADS=1` and `4`).
//!
//! Results land in `results/exp_inference.json` (with a run manifest)
//! and, for the repo-level benchmark snapshot, `BENCH_inference.json`.

use ner_bench::{init_harness, print_table, write_report, Scale};
use ner_core::config::NerConfig;
use ner_core::model::NerModel;
use ner_core::prelude::NerPipeline;
use ner_core::repr::SentenceEncoder;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_text::Sentence;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 29;

/// Token-cache capacity for the cached variants (the pipeline default).
const CACHE_CAPACITY: usize = 4096;

/// Single-sentence latency percentiles for one variant, at 1 thread.
#[derive(Serialize)]
struct LatencyRow {
    variant: String,
    sentences: usize,
    p50_us: f64,
    p90_us: f64,
    mean_us: f64,
}

/// Batch throughput for one variant at one thread count.
#[derive(Serialize)]
struct ThroughputRow {
    variant: String,
    threads: usize,
    sentences: usize,
    tokens: usize,
    best_ms: f64,
    tokens_per_sec: f64,
    speedup_vs_tape_1thr: f64,
    /// Per-row efficiency of this variant against scoring each sentence
    /// individually at the same thread count: per-sentence wall time over
    /// this variant's wall time. 1.0 for the per-sentence baseline itself;
    /// >1 means batching made each row cheaper.
    batch_compute_efficiency: f64,
}

/// Batched-vs-per-sentence wall time across LSTM hidden sizes, 1 thread.
///
/// The batched backend's win is bounded by how much of a sentence's cost
/// is GEMM: gate activations and decode are per-row at any batch width.
/// Sweeping `hidden` moves the GEMM share, so this row set shows where
/// cross-sentence batching pays on the measured host.
#[derive(Serialize)]
struct HiddenSweepRow {
    hidden: usize,
    per_sentence_ms: f64,
    batched_ms: f64,
    /// per_sentence_ms / batched_ms; >1 means the `[B,T]` forward beat
    /// scoring the same sentences one at a time.
    batched_speedup: f64,
}

/// Warm-cache token-feature statistics over the timed passes.
#[derive(Serialize)]
struct CacheReport {
    hits: u64,
    misses: u64,
    hit_rate: f64,
}

#[derive(Serialize)]
struct Report {
    experiment: String,
    description: String,
    seed: u64,
    smoke: bool,
    /// Worker threads requested via `NER_THREADS` at launch.
    requested_threads: usize,
    /// True `available_parallelism` of the host the run executed on.
    host_parallelism: usize,
    /// Warm plan+cache p50 over tape p50 at 1 thread (>1 means the plan
    /// wins) — the headline number of this experiment.
    p50_speedup_plan_cache_vs_tape: f64,
    /// Whole-batch wall time scoring one sentence at a time over the
    /// batched `[B,T]` backend, at 1 thread — the offline batched-
    /// throughput headline (compute buckets cap at 32 rows).
    batched_speedup_vs_per_sentence_1thr: f64,
    latency: Vec<LatencyRow>,
    throughput: Vec<ThroughputRow>,
    /// Batched-vs-per-sentence ratio as the LSTM grows: the GEMM share
    /// of a sentence rises with `hidden`, and with it the batched win.
    batched_hidden_sweep: Vec<HiddenSweepRow>,
    token_cache: CacheReport,
    divergence_failures: usize,
}

/// Per-sentence best-of-`rounds` latencies, in microseconds.
///
/// `reset` runs before each round (used to re-chill the token cache for
/// the cold variant); keeping the per-sentence minimum across rounds
/// filters scheduler noise without mixing cold and warm states, because
/// every round starts from the same state.
fn time_per_sentence(
    sentences: &[Sentence],
    rounds: usize,
    mut reset: impl FnMut(),
    mut f: impl FnMut(&Sentence),
) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; sentences.len()];
    for _ in 0..rounds {
        reset();
        for (i, s) in sentences.iter().enumerate() {
            let t = Instant::now();
            f(s);
            best[i] = best[i].min(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    best
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn latency_row(variant: &str, mut us: Vec<f64>) -> LatencyRow {
    us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LatencyRow {
        variant: variant.to_string(),
        sentences: us.len(),
        p50_us: quantile(&us, 0.5),
        p90_us: quantile(&us, 0.9),
        mean_us: us.iter().sum::<f64>() / us.len() as f64,
    }
}

/// Best-of-`rounds` wall time for annotating the whole batch.
fn time_batch(rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Quick } else { Scale::from_args() };
    init_harness("exp_inference", SEED, scale);
    let requested_threads = ner_par::default_threads();

    // An untrained default-config model is the right latency subject: the
    // forward pass does identical work at any weight values, and skipping
    // training keeps the harness fast enough for CI.
    let mut rng = StdRng::seed_from_u64(SEED);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let corpus = gen.dataset(&mut rng, scale.size(400));
    let cfg = NerConfig::default();
    let encoder = SentenceEncoder::from_dataset(&corpus, cfg.scheme, 1);
    let model = NerModel::new(cfg, &encoder, None, &mut rng);
    let sentences: Vec<Sentence> = corpus.sentences.clone();
    let tokens: usize = sentences.iter().map(|s| s.len()).sum();
    let rounds = match scale {
        Scale::Full => 5,
        Scale::Quick => 2,
    };

    let mut pipeline = NerPipeline::new(encoder, model).with_token_cache_capacity(CACHE_CAPACITY);

    // -- correctness gate: plan must reproduce the tape, and the batched
    // [B,T] backend must reproduce the per-sentence plan, exactly --------
    ner_par::set_global_threads(1);
    let mut failures = 0usize;
    let mut planned_all = Vec::with_capacity(sentences.len());
    for (i, s) in sentences.iter().enumerate() {
        let planned = pipeline.annotate(s);
        let tape = pipeline.annotate_tape(s);
        if planned.entities != tape.entities {
            failures += 1;
            if failures <= 5 {
                eprintln!("plan/tape divergence on sentence {i}: {:?}", s.tokens);
            }
        }
        planned_all.push(planned);
    }
    // Batched pass twice: once against the cache the gate loop warmed,
    // once cold after a plan refresh.
    for pass in ["warm", "cold"] {
        if pass == "cold" {
            pipeline.refresh_plan();
        }
        for (i, (b, p)) in pipeline.annotate_batch(&sentences).iter().zip(&planned_all).enumerate()
        {
            if b.entities != p.entities {
                failures += 1;
                if failures <= 5 {
                    eprintln!("batched ({pass}) divergence on sentence {i}: {:?}", p.tokens);
                }
            }
        }
    }
    println!("verified {} sentences x 3 paths: {} divergence(s)", sentences.len(), failures);

    // -- single-sentence latency at 1 thread -----------------------------
    let tape_us = time_per_sentence(&sentences, rounds, || {}, |s| drop(pipeline.annotate_tape(s)));

    pipeline = pipeline.with_token_cache_capacity(0);
    let plan_us = time_per_sentence(&sentences, rounds, || {}, |s| drop(pipeline.annotate(s)));

    // Cold: `refresh_plan` before every round empties the token cache, so
    // each pass starts from compilation state; warm: one untimed priming
    // pass, then steady state.
    pipeline = pipeline.with_token_cache_capacity(CACHE_CAPACITY);
    let mut cold_us = vec![f64::INFINITY; sentences.len()];
    for _ in 0..rounds {
        pipeline.refresh_plan();
        for (i, s) in sentences.iter().enumerate() {
            let t = Instant::now();
            drop(pipeline.annotate(s));
            cold_us[i] = cold_us[i].min(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    for s in &sentences {
        drop(pipeline.annotate(s)); // prime
    }
    let hits0 = ner_obs::counter_value("infer.cache.hits").unwrap_or(0.0);
    let misses0 = ner_obs::counter_value("infer.cache.misses").unwrap_or(0.0);
    let warm_us = time_per_sentence(&sentences, rounds, || {}, |s| drop(pipeline.annotate(s)));
    let hits = (ner_obs::counter_value("infer.cache.hits").unwrap_or(0.0) - hits0) as u64;
    let misses = (ner_obs::counter_value("infer.cache.misses").unwrap_or(0.0) - misses0) as u64;
    let token_cache =
        CacheReport { hits, misses, hit_rate: hits as f64 / ((hits + misses).max(1)) as f64 };

    let latency = vec![
        latency_row("tape", tape_us),
        latency_row("plan", plan_us),
        latency_row("plan+cache(cold)", cold_us),
        latency_row("plan+cache(warm)", warm_us),
    ];
    let p50_speedup = latency[0].p50_us / latency[3].p50_us;

    // -- batch throughput at 1/2/4 threads -------------------------------
    // Three ways to score the same corpus: the tape, the per-sentence
    // fused plan fanned over the pool, and the batched [B,T] backend
    // (length-sorted buckets of up to 32 rows, one padded forward each).
    let mut throughput = Vec::new();
    let mut tape_1thr_ms = f64::NAN;
    let mut batched_speedup_1thr = f64::NAN;
    for &t in &[1usize, 2, 4] {
        ner_par::set_global_threads(t);
        let pool = ner_par::global();
        let tape_ms = time_batch(rounds, || {
            drop(pool.map(sentences.len(), |i| pipeline.annotate_tape(&sentences[i])));
        });
        if t == 1 {
            tape_1thr_ms = tape_ms;
        }
        let per_sentence_ms = time_batch(rounds, || {
            drop(pool.map(sentences.len(), |i| pipeline.annotate(&sentences[i])));
        });
        let batched_ms = time_batch(rounds, || {
            drop(pipeline.annotate_batch(&sentences));
        });
        if t == 1 {
            batched_speedup_1thr = per_sentence_ms / batched_ms;
        }
        for (variant, ms) in
            [("tape", tape_ms), ("per-sentence", per_sentence_ms), ("batched", batched_ms)]
        {
            throughput.push(ThroughputRow {
                variant: variant.to_string(),
                threads: t,
                sentences: sentences.len(),
                tokens,
                best_ms: ms,
                tokens_per_sec: tokens as f64 / (ms / 1e3),
                speedup_vs_tape_1thr: tape_1thr_ms / ms,
                batch_compute_efficiency: per_sentence_ms / ms,
            });
        }
    }
    ner_par::set_global_threads(1);

    // -- batched win vs hidden size, 1 thread ----------------------------
    // A pure BiLSTM+CRF stack (no char channel) isolates the recurrent
    // GEMMs the batched backend amortizes; parity is asserted per size.
    let mut batched_hidden_sweep = Vec::new();
    for &hidden in &[48usize, 128, 256] {
        let cfg = NerConfig {
            word: ner_core::config::WordRepr::Random { dim: 64 },
            char_repr: ner_core::config::CharRepr::None,
            encoder: ner_core::config::EncoderKind::Lstm { hidden, bidirectional: true, layers: 1 },
            ..NerConfig::default()
        };
        let enc = SentenceEncoder::from_dataset(&corpus, cfg.scheme, 1);
        let model = NerModel::new(cfg, &enc, None, &mut rng);
        let swept = NerPipeline::new(enc, model);
        let batched = swept.annotate_batch(&sentences); // warm + parity input
        for (i, (b, s)) in batched.iter().zip(&sentences).enumerate() {
            if b.entities != swept.annotate(s).entities {
                failures += 1;
                if failures <= 5 {
                    eprintln!("hidden={hidden} batched divergence on sentence {i}");
                }
            }
        }
        let per_sentence_ms = time_batch(rounds, || {
            for s in &sentences {
                drop(swept.annotate(s));
            }
        });
        let batched_ms = time_batch(rounds, || drop(swept.annotate_batch(&sentences)));
        batched_hidden_sweep.push(HiddenSweepRow {
            hidden,
            per_sentence_ms,
            batched_ms,
            batched_speedup: per_sentence_ms / batched_ms,
        });
    }

    print_table(
        "single-sentence latency, 1 thread",
        &["variant", "sent", "p50 µs", "p90 µs", "mean µs"],
        &latency
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    r.sentences.to_string(),
                    format!("{:.1}", r.p50_us),
                    format!("{:.1}", r.p90_us),
                    format!("{:.1}", r.mean_us),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "batch throughput",
        &["variant", "thr", "sent", "tokens", "ms", "tok/s", "×tape@1", "eff/row"],
        &throughput
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    r.threads.to_string(),
                    r.sentences.to_string(),
                    r.tokens.to_string(),
                    format!("{:.1}", r.best_ms),
                    format!("{:.0}", r.tokens_per_sec),
                    format!("{:.2}", r.speedup_vs_tape_1thr),
                    format!("{:.2}", r.batch_compute_efficiency),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "batched [B,T] vs per-sentence across LSTM hidden sizes, 1 thread",
        &["hidden", "per-sentence ms", "batched ms", "batched ×"],
        &batched_hidden_sweep
            .iter()
            .map(|r| {
                vec![
                    r.hidden.to_string(),
                    format!("{:.1}", r.per_sentence_ms),
                    format!("{:.1}", r.batched_ms),
                    format!("{:.2}", r.batched_speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\ntoken cache (warm): {} hits / {} misses ({:.1}% hit rate)",
        token_cache.hits,
        token_cache.misses,
        100.0 * token_cache.hit_rate
    );
    println!("p50 speedup, plan+cache(warm) vs tape @1 thread: {p50_speedup:.2}×");
    println!("batched [B,T] vs per-sentence plan @1 thread: {batched_speedup_1thr:.2}×");

    let report = Report {
        experiment: "exp_inference".into(),
        description: "Single-sentence latency and batch throughput: autograd tape vs compiled ForwardPlan vs plan + token-feature cache vs the batched [B,T] backend; every path must reproduce the tape's tags exactly".into(),
        seed: SEED,
        smoke,
        requested_threads,
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        p50_speedup_plan_cache_vs_tape: p50_speedup,
        batched_speedup_vs_per_sentence_1thr: batched_speedup_1thr,
        latency,
        throughput,
        batched_hidden_sweep,
        token_cache,
        divergence_failures: failures,
    };
    let path = write_report("exp_inference", &report);
    let bench_json = serde_json::to_string_pretty(&report).expect("serialize BENCH report");
    std::fs::write("BENCH_inference.json", bench_json).expect("write BENCH_inference.json");
    println!("report: {} (+ BENCH_inference.json)", path.display());

    if failures > 0 {
        eprintln!(
            "{failures} divergence failure(s); plan and batched paths must reproduce the tape exactly"
        );
        std::process::exit(1);
    }
}
