//! E-F9 — reproduces **Fig. 9** (multi-task sequence labeling with an
//! auxiliary language-modeling objective, Rei 2017) and the segmentation
//! subtask of Aguilar et al. (§4.1).
//!
//! Trains the same BiLSTM-CRF skeleton with λ-weighted auxiliary losses and
//! reports test F1 per configuration. The paper's finding: the added LM
//! objective yields consistent improvements, most visible in lower-resource
//! regimes — so the harness sweeps two training sizes.

use ner_applied::multitask::{MultitaskNer, MultitaskWeights};
use ner_bench::{init_harness, pct, print_table, standard_data, write_report, Scale};
use ner_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    train_size: usize,
    lm_weight: f32,
    seg_weight: f32,
    f1_unseen: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("fig9", 42, scale);
    let data = standard_data(42, scale);
    let epochs = scale.epochs(10);

    let settings = [
        ("single-task", MultitaskWeights { lm: 0.0, segmentation: 0.0 }),
        ("+ LM objective (Fig. 9)", MultitaskWeights { lm: 0.005, segmentation: 0.0 }),
        ("+ segmentation task", MultitaskWeights { lm: 0.0, segmentation: 0.5 }),
        ("+ both", MultitaskWeights { lm: 0.005, segmentation: 0.5 }),
    ];
    let sizes = [scale.size(80), scale.size(240)];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &size in &sizes {
        let train = data.train.take(size);
        let encoder = SentenceEncoder::from_dataset(&train, TagScheme::Bio, 1);
        let train_enc = encoder.encode_dataset(&train, None);
        let test_enc = encoder.encode_dataset(&data.test_unseen, None);
        for (name, weights) in &settings {
            // Mean over three seeds: single-run variance at these corpus
            // sizes is larger than the multitask effect being measured.
            let seeds = [13u64, 14, 15];
            let f1 = seeds
                .iter()
                .map(|&seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut model = MultitaskNer::new(&encoder, 32, 48, *weights, &mut rng);
                    model.fit(&train_enc, epochs, 0.01, &mut rng);
                    model.evaluate(&test_enc).micro.f1
                })
                .sum::<f64>()
                / seeds.len() as f64;
            println!("  n={size:<4} {name:<26} F1(unseen, mean of 3 seeds) {}", pct(f1));
            rows.push(Row {
                train_size: size,
                lm_weight: weights.lm,
                seg_weight: weights.segmentation,
                f1_unseen: f1,
            });
            table.push(vec![size.to_string(), name.to_string(), pct(f1)]);
        }
    }

    print_table(
        "Fig. 9 — auxiliary objectives (BiLSTM-CRF skeleton, unseen-entity F1)",
        &["Train sentences", "Objective", "F1 (unseen)"],
        &table,
    );
    println!("\nExpected shape (paper §4.1): auxiliary LM co-training improves over single-task");
    println!("in the low-resource regime (the smaller training size), where the unsupervised");
    println!("signal adds information supervision cannot; at saturation the auxiliary gradient");
    println!("competes with the NER objective and the gain disappears.");
    let path = write_report("fig9", &rows);
    println!("report: {}", path.display());
}
