//! E-S43 — reproduces the **§4.3 active-learning result** (Shen et al.):
//! uncertainty-based selection reaches ≈99% of the full-data F1 with only
//! ≈25% of the training data, and dominates random selection at low
//! budgets.
//!
//! Sweeps annotation budgets × acquisition strategies with incremental
//! training and prints the learning curves plus the budget at which each
//! strategy first reaches 99% of the full-data ceiling.

use ner_applied::active::{run, Strategy};
use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, write_report, Scale,
};
use ner_core::config::{CharRepr, NerConfig, WordRepr};
use ner_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct StrategyCurve {
    strategy: String,
    budgets: Vec<usize>,
    f1s: Vec<f64>,
    pct_of_full_at_quarter: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("active", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);

    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 24 },
        char_repr: CharRepr::Cnn { dim: 12, filters: 12 },
        ..NerConfig::default()
    };
    let encoder = SentenceEncoder::from_dataset(&data.train, cfg.scheme, 1);
    let pool = encoder.encode_dataset(&data.train, None);
    let test = encoder.encode_dataset(&data.test_unseen, None);

    // Full-data ceiling.
    println!("training the full-data ceiling ...");
    let mut rng = StdRng::seed_from_u64(55);
    let mut ceiling_model = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
    ner_core::trainer::train(&mut ceiling_model, &pool, None, &tc, &mut rng);
    let ceiling = evaluate_model(&ceiling_model, &test).micro.f1;
    println!("full-data F1 = {}", pct(ceiling));

    let n = pool.len();
    let budgets: Vec<usize> = [0.05, 0.10, 0.15, 0.25, 0.40, 0.60, 1.00]
        .iter()
        .map(|f| ((n as f64 * f) as usize).max(2))
        .collect();
    let epochs_per_round = scale.epochs(4);

    let mut curves = Vec::new();
    let mut table = Vec::new();
    for strategy in
        [Strategy::Random, Strategy::Longest, Strategy::TokenEntropy, Strategy::LeastConfidence]
    {
        let mut rng = StdRng::seed_from_u64(56);
        let model = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
        let (run_result, _) =
            run(model, &pool, &test, strategy, &budgets, epochs_per_round, &mut rng);
        let quarter = run_result
            .curve
            .iter()
            .find(|p| p.fraction >= 0.249)
            .map(|p| p.test_f1 / ceiling)
            .unwrap_or(0.0);
        println!(
            "{strategy:?}: {}",
            run_result
                .curve
                .iter()
                .map(|p| format!("{}→{}", pct(p.fraction), pct(p.test_f1)))
                .collect::<Vec<_>>()
                .join("  ")
        );
        let mut row = vec![format!("{strategy:?}")];
        row.extend(run_result.curve.iter().map(|p| pct(p.test_f1)));
        row.push(format!("{:.1}% of ceiling @25%", 100.0 * quarter));
        table.push(row);
        curves.push(StrategyCurve {
            strategy: format!("{strategy:?}"),
            budgets: run_result.curve.iter().map(|p| p.annotated).collect(),
            f1s: run_result.curve.iter().map(|p| p.test_f1).collect(),
            pct_of_full_at_quarter: quarter,
        });
    }

    let mut headers: Vec<String> = vec!["Strategy".into()];
    headers.extend(budgets.iter().map(|b| format!("{}s ({})", b, pct(*b as f64 / n as f64))));
    headers.push("Shen et al. criterion".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "§4.3 — active-learning curves (unseen-entity F1 per budget)",
        &header_refs,
        &table,
    );
    println!("\nFull-data ceiling: {}", pct(ceiling));
    println!("Expected shape (paper): uncertainty strategies (MNLP/entropy) reach ~99% of the");
    println!("ceiling near the 25% budget and beat random at every low budget.");
    let path = write_report("active", &curves);
    println!("report: {}", path.display());
}
