//! E-F11 — reproduces **Fig. 11** (pre-training model architectures:
//! BERT vs GPT vs ELMo).
//!
//! Pretrains the three regimes the figure contrasts — a bidirectional
//! masked-LM Transformer (BERT-lite), a left-to-right Transformer LM
//! (GPT-lite) and independently trained left/right LSTMs (ELMo-lite) — on
//! the same unlabeled corpus, then feeds each one's frozen token vectors to
//! an identical downstream tagger. Controls: no pretraining at all, and the
//! char-level contextual-string variant (Flair-style).
//!
//! Expected shape (paper §3.3.5): bidirectional conditioning (BERT-lite /
//! ELMo-lite / char-LM) beats the strictly causal GPT-lite; every
//! pretrained regime beats no pretraining.

use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, write_report, Scale,
};
use ner_core::config::{CharRepr, EncoderKind, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_embed::bert_lite::{BertConfig, BertLite};
use ner_embed::charlm::{CharLm, CharLmConfig};
use ner_embed::elmo::{ElmoConfig, ElmoLm};
use ner_embed::gpt_lite::{GptConfig, GptLite};
use ner_embed::ContextualEmbedder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    regime: String,
    lm_nll: Option<f64>,
    f1_unseen: f64,
}

fn downstream(
    data: &ner_bench::ExperimentData,
    tc: &TrainConfig,
    ctx: Option<&dyn ContextualEmbedder>,
    seed: u64,
) -> f64 {
    let encoder = SentenceEncoder::from_dataset(&data.train, TagScheme::Bio, 1);
    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 24 },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Lstm { hidden: 32, bidirectional: true, layers: 1 },
        context_dim: ctx.map_or(0, |c| c.dim()),
        ..NerConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = NerModel::new(cfg, &encoder, None, &mut rng);
    let train_enc = encoder.encode_dataset(&data.train, ctx);
    ner_core::trainer::train(&mut model, &train_enc, None, tc, &mut rng);
    evaluate_model(&model, &encoder.encode_dataset(&data.test_unseen, ctx)).micro.f1
}

fn main() {
    let scale = Scale::from_args();
    init_harness("fig11", 42, scale);
    let data = standard_data(42, scale);
    // Downstream is data-starved on purpose: pretraining matters most there.
    let starved = ner_bench::ExperimentData {
        train: data.train.take(scale.size(100)),
        dev: data.dev.clone(),
        test: data.test.clone(),
        test_unseen: data.test_unseen.clone(),
        test_noisy: data.test_noisy.clone(),
    };
    let tc = harness_train_config(scale);
    let mut rng = StdRng::seed_from_u64(3);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let lm_corpus = gen.lm_sentences(&mut rng, scale.size(900));
    let held_out = gen.lm_sentences(&mut rng, scale.size(100));

    println!("pretraining BERT-lite (masked bidirectional Transformer) ...");
    let (bert, _) = BertLite::train(
        &lm_corpus,
        &BertConfig { epochs: scale.epochs(6), mask_prob: 0.25, ..Default::default() },
        &mut rng,
    );
    println!("pretraining GPT-lite (causal Transformer) ...");
    let (gpt, _) = GptLite::train(
        &lm_corpus,
        &GptConfig { epochs: scale.epochs(3), ..Default::default() },
        &mut rng,
    );
    println!("pretraining ELMo-lite (bidirectional LSTM LM) ...");
    let (elmo, _) = ElmoLm::train(
        &lm_corpus,
        &ElmoConfig { epochs: scale.epochs(3), ..Default::default() },
        &mut rng,
    );
    println!("pretraining char-LM (contextual string embeddings) ...");
    let (charlm, _) = CharLm::train(
        &lm_corpus[..scale.size(600)],
        &CharLmConfig { hidden: 32, epochs: scale.epochs(2), ..Default::default() },
        &mut rng,
    );

    println!("running the shared downstream tagger per regime ...");
    let mut rows = vec![
        Row {
            regime: "no pretraining".into(),
            lm_nll: None,
            f1_unseen: downstream(&starved, &tc, None, 77),
        },
        Row {
            regime: "GPT-lite (causal Transformer)".into(),
            lm_nll: Some(gpt.nll(&held_out)),
            f1_unseen: downstream(&starved, &tc, Some(&gpt), 77),
        },
        Row {
            regime: "ELMo-lite (biLSTM LM)".into(),
            lm_nll: Some(elmo.nll(&held_out)),
            f1_unseen: downstream(&starved, &tc, Some(&elmo), 77),
        },
        Row {
            regime: "char-LM (contextual string)".into(),
            lm_nll: Some(charlm.nll_per_char(&held_out)),
            f1_unseen: downstream(&starved, &tc, Some(&charlm), 77),
        },
        Row {
            regime: "BERT-lite (masked bidirectional)".into(),
            lm_nll: None,
            f1_unseen: downstream(&starved, &tc, Some(&bert), 77),
        },
    ];
    rows.sort_by(|a, b| b.f1_unseen.partial_cmp(&a.f1_unseen).expect("finite"));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.regime.clone(),
                r.lm_nll.map_or("-".into(), |v| format!("{v:.2}")),
                pct(r.f1_unseen),
            ]
        })
        .collect();
    print_table(
        "Fig. 11 — pretraining regimes feeding an identical downstream tagger",
        &["Pretraining regime", "Held-out LM NLL", "F1 (unseen)"],
        &table,
    );
    println!("\nExpected shape (paper): bidirectional regimes > causal GPT > no pretraining.");
    let path = write_report("fig11", &rows);
    println!("report: {}", path.display());
}
