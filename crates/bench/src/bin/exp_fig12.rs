//! E-F12 — reproduces **Fig. 12** (the four tag decoders) and §3.5's
//! decoder discussion.
//!
//! Grid: decoder {Softmax, CRF, Semi-CRF, RNN, Pointer} × input regime
//! {static word embeddings, + contextual-LM vectors}. The paper's claims:
//! CRF is the strongest choice with *non-contextualized* embeddings (it
//! supplies the label-transition structure); with contextualized embeddings
//! the CRF-over-softmax margin shrinks; greedy decoders (RNN/pointer) pay
//! for serialization.

use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, write_report, Scale,
};
use ner_core::config::{CharRepr, DecoderKind, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_embed::charlm::{CharLm, CharLmConfig};
use ner_embed::ContextualEmbedder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    decoder: String,
    regime: String,
    f1_unseen: f64,
    invalid_sequences: usize,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("fig12", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);
    let mut rng = StdRng::seed_from_u64(3);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let lm_corpus = gen.lm_sentences(&mut rng, scale.size(800));
    println!("pretraining char-LM for the contextual regime ...");
    let (charlm, _) = CharLm::train(
        &lm_corpus,
        &CharLmConfig { hidden: 48, dim: 24, epochs: scale.epochs(3), ..Default::default() },
        &mut rng,
    );

    let decoders: [(&str, DecoderKind); 5] = [
        ("Softmax", DecoderKind::Softmax),
        ("CRF", DecoderKind::Crf),
        ("Semi-CRF", DecoderKind::SemiCrf { max_len: 4 }),
        ("RNN (greedy)", DecoderKind::Rnn { tag_dim: 8, hidden: 32 }),
        ("Pointer", DecoderKind::Pointer { att: 24, max_len: 4 }),
    ];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (regime, use_lm) in [("static embeddings", false), ("+ contextual LM", true)] {
        let encoder = SentenceEncoder::from_dataset(&data.train, TagScheme::Bio, 1);
        let ctx: Option<&dyn ContextualEmbedder> = use_lm.then_some(&charlm as _);
        let train_enc = encoder.encode_dataset(&data.train, ctx);
        let test_enc = encoder.encode_dataset(&data.test_unseen, ctx);
        for (name, decoder) in &decoders {
            let cfg = NerConfig {
                scheme: TagScheme::Bio,
                word: WordRepr::Random { dim: 32 },
                char_repr: CharRepr::None,
                decoder: decoder.clone(),
                context_dim: if use_lm { charlm.dim() } else { 0 },
                // disable the hard structural mask so the decoders' OWN
                // structure modeling is measured
                constrained_decoding: false,
                ..NerConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(19);
            let mut model = NerModel::new(cfg, &encoder, None, &mut rng);
            ner_core::trainer::train(&mut model, &train_enc, None, &tc, &mut rng);
            let f1 = evaluate_model(&model, &test_enc).micro.f1;
            let invalid = test_enc
                .iter()
                .filter(|e| {
                    model.predict_raw_tags(e).is_some_and(|tags| !TagScheme::Bio.is_valid(&tags))
                })
                .count();
            println!("  [{regime}] {name:<13} F1(unseen) {:>6}  ill-formed {}", pct(f1), invalid);
            rows.push(Row {
                decoder: name.to_string(),
                regime: regime.to_string(),
                f1_unseen: f1,
                invalid_sequences: invalid,
            });
            table.push(vec![regime.to_string(), name.to_string(), pct(f1), invalid.to_string()]);
        }
    }

    print_table(
        "Fig. 12 — tag decoders × input regime (BiLSTM encoder fixed)",
        &["Input regime", "Decoder", "F1 (unseen)", "Ill-formed outputs"],
        &table,
    );
    println!("\nExpected shape (paper §3.5): CRF > Softmax with static embeddings; the margin");
    println!("narrows once contextual LM features are added; segment decoders emit no");
    println!("ill-formed sequences by construction.");
    let path = write_report("fig12", &rows);
    println!("report: {}", path.display());
}
