//! Kernel and batch-scoring throughput: naive vs blocked vs SIMD vs
//! parallel.
//!
//! Benchmarks the three matmul variants (`matmul`, `matmul_tn`,
//! `matmul_nt`) at several shapes against a local copy of the original
//! naive kernels — with the scalar blocked kernels forced via
//! `simd::with_level(Off, …)` and one forced row per supported SIMD
//! level (`sse2`, `avx2`) — then measures encoder-class batch scoring
//! (`predict_all`) at thread counts 1/2/4 on the global `ner-par` pool.
//!
//! The blocked, SIMD and parallel kernels all preserve the naive
//! kernels' per-element accumulation order, so every row must agree
//! with the naive oracle **bit for bit** — any nonzero
//! `max_abs_diff_vs_naive` makes the harness exit non-zero (CI runs
//! this via `--smoke` at both `NER_SIMD=off` and the default level).
//!
//! Results land in `results/exp_kernels.json` (with a run manifest that
//! records the kernel backend) and, for the repo-level benchmark
//! snapshot, `BENCH_kernels.json` at the current directory root; both
//! record the host's CPU features next to every row's SIMD level.

use ner_bench::{init_harness, print_table, write_report, Scale};
use ner_core::config::NerConfig;
use ner_core::model::NerModel;
use ner_core::repr::SentenceEncoder;
use ner_core::trainer::predict_all;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_tensor::simd::{self, SimdLevel};
use ner_tensor::Tensor;
use ner_text::TagScheme;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 17;

/// One timed kernel measurement.
#[derive(Serialize)]
struct KernelRow {
    op: String,
    m: usize,
    k: usize,
    n: usize,
    variant: String,
    /// SIMD level the row ran at (`off` / `sse2` / `avx2`), forced via
    /// `simd::with_level` so the row means the same thing on every host.
    simd: String,
    threads: usize,
    best_ms: f64,
    gflops: f64,
    speedup_vs_naive: f64,
    /// Must be exactly `0.0` — the determinism contract is bit-identity,
    /// and any nonzero value fails the harness.
    max_abs_diff_vs_naive: f64,
}

/// One batch-scoring measurement.
#[derive(Serialize)]
struct ScoringRow {
    threads: usize,
    sentences: usize,
    tokens: usize,
    best_ms: f64,
    tokens_per_sec: f64,
    speedup_vs_1: f64,
    identical_to_serial: bool,
}

#[derive(Serialize)]
struct Report {
    experiment: String,
    description: String,
    seed: u64,
    smoke: bool,
    /// Worker threads requested via `NER_THREADS` — the pool size the
    /// thread sweep is driven from, as opposed to what the host offers.
    requested_threads: usize,
    /// True `available_parallelism` of the host the run executed on.
    host_parallelism: usize,
    /// Active kernel backend descriptor, e.g. `"avx2 (cpu: sse2+avx2+fma)"`.
    kernel_backend: String,
    /// SIMD level the unforced (default) rows ran at.
    simd_default: String,
    /// Host CPU: 128-bit f32 lanes available.
    cpu_sse2: bool,
    /// Host CPU: 256-bit f32 lanes available.
    cpu_avx2: bool,
    /// Host CPU: fused multiply-add available (detected but never used —
    /// FMA rounds once where the scalar oracle rounds twice).
    cpu_fma: bool,
    kernels: Vec<KernelRow>,
    batch_scoring: Vec<ScoringRow>,
    divergence_failures: usize,
}

/// The pre-blocking matmul from `ner-tensor` (i → p-with-zero-skip → j),
/// kept here verbatim as the numerical oracle and speed baseline.
fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// The pre-blocking `matmul_tn` oracle: `out = aᵀ·b` with `a` of shape
/// `(k, m)`.
fn naive_matmul_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for p in 0..k {
        let brow = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let av = a[p * m + i];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// The pre-blocking `matmul_nt` oracle: `out = a·bᵀ` with `b` of shape
/// `(n, k)`.
fn naive_matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] += acc;
        }
    }
    out
}

fn random_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect()
}

/// Best-of-`reps` wall time of `f` in milliseconds.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs() as f64).fold(0.0, f64::max)
}

#[allow(clippy::too_many_arguments)]
fn push_variant(
    rows: &mut Vec<KernelRow>,
    failures: &mut usize,
    op: &str,
    (m, k, n): (usize, usize, usize),
    variant: &str,
    lvl: SimdLevel,
    threads: usize,
    naive_best: f64,
    reps: usize,
    oracle: &[f32],
    run: impl Fn() -> Tensor,
) {
    // Force the SIMD level for both the timed loop and the correctness
    // pass; the kernels capture the level once at entry on this thread,
    // so the override reaches the `ner-par` workers too.
    let (ms, diff) = simd::with_level(lvl, || {
        let ms = best_ms(reps, || {
            std::hint::black_box(run());
        });
        (ms, max_abs_diff(run().data(), oracle))
    });
    if diff != 0.0 {
        *failures += 1;
        eprintln!(
            "DIVERGENCE: {op} {m}x{k}x{n} {variant}/{}@{threads}: max|Δ| = {diff:e}",
            lvl.name()
        );
    }
    rows.push(KernelRow {
        op: op.to_string(),
        m,
        k,
        n,
        variant: variant.to_string(),
        simd: lvl.name().to_string(),
        threads,
        best_ms: ms,
        gflops: (2.0 * m as f64 * k as f64 * n as f64) / (ms * 1e6),
        speedup_vs_naive: naive_best / ms,
        max_abs_diff_vs_naive: diff,
    });
}

/// The SIMD levels a forced row can run at on this host: always `Off`,
/// plus every vector level the CPU supports.
fn forced_levels() -> Vec<SimdLevel> {
    [SimdLevel::Off, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| simd::is_supported(l))
        .collect()
}

fn bench_kernels(
    shapes: &[(usize, usize, usize)],
    thread_counts: &[usize],
    reps: usize,
    failures: &mut usize,
) -> Vec<KernelRow> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut rows = Vec::new();
    for &(m, k, n) in shapes {
        let a = random_vec(&mut rng, m * k); // also reads as (k, m) for tn
        let b = random_vec(&mut rng, k * n);
        let bt = Tensor::from_vec(k, n, b.clone()).transposed(); // (n, k) for nt
        let ta = Tensor::from_vec(m, k, a.clone());
        let ta_tn = Tensor::from_vec(k, m, a[..k * m].to_vec());
        let tb = Tensor::from_vec(k, n, b.clone());

        // matmul: naive oracle, then at one thread a forced scalar
        // "blocked" row plus one forced "simd" row per supported lane
        // width, then "parallel" at the remaining thread counts (at the
        // configured level, so `NER_SIMD=off` runs reproduce the
        // pre-SIMD numbers bit-for-bit).
        let oracle = naive_matmul(&a, &b, m, k, n);
        let naive_best = best_ms(reps, || {
            std::hint::black_box(naive_matmul(&a, &b, m, k, n));
        });
        rows.push(KernelRow {
            op: "matmul".into(),
            m,
            k,
            n,
            variant: "naive".into(),
            simd: SimdLevel::Off.name().into(),
            threads: 1,
            best_ms: naive_best,
            gflops: (2.0 * m as f64 * k as f64 * n as f64) / (naive_best * 1e6),
            speedup_vs_naive: 1.0,
            max_abs_diff_vs_naive: 0.0,
        });
        for &t in thread_counts {
            ner_par::set_global_threads(t);
            if t == 1 {
                for lvl in forced_levels() {
                    let variant = if lvl == SimdLevel::Off { "blocked" } else { "simd" };
                    push_variant(
                        &mut rows,
                        failures,
                        "matmul",
                        (m, k, n),
                        variant,
                        lvl,
                        t,
                        naive_best,
                        reps,
                        &oracle,
                        || ta.matmul(&tb),
                    );
                }
            } else {
                push_variant(
                    &mut rows,
                    failures,
                    "matmul",
                    (m, k, n),
                    "parallel",
                    simd::configured(),
                    t,
                    naive_best,
                    reps,
                    &oracle,
                    || ta.matmul(&tb),
                );
            }
        }

        // matmul_tn and matmul_nt: the same forced sweep at one thread
        // (so the nt-within-1.5x-of-nn comparison reads off rows at the
        // same SIMD level), correctness at every thread count, parallel
        // timing at the highest (the row-split story is the same).
        let top = *thread_counts.iter().max().unwrap_or(&1);
        let oracle_tn = naive_matmul_tn(&a[..k * m], &b, k, m, n);
        let oracle_nt = naive_matmul_nt(&a, bt.data(), m, k, n);
        ner_par::set_global_threads(1);
        let naive_tn = best_ms(reps, || {
            std::hint::black_box(naive_matmul_tn(&a[..k * m], &b, k, m, n));
        });
        let naive_nt = best_ms(reps, || {
            std::hint::black_box(naive_matmul_nt(&a, bt.data(), m, k, n));
        });
        for lvl in forced_levels() {
            let variant = if lvl == SimdLevel::Off { "blocked" } else { "simd" };
            push_variant(
                &mut rows,
                failures,
                "matmul_tn",
                (m, k, n),
                variant,
                lvl,
                1,
                naive_tn,
                reps,
                &oracle_tn,
                || ta_tn.matmul_tn(&tb),
            );
            push_variant(
                &mut rows,
                failures,
                "matmul_nt",
                (m, k, n),
                variant,
                lvl,
                1,
                naive_nt,
                reps,
                &oracle_nt,
                || ta.matmul_nt(&bt),
            );
        }
        for &t in thread_counts.iter().filter(|&&t| t > 1) {
            ner_par::set_global_threads(t);
            if t == top {
                push_variant(
                    &mut rows,
                    failures,
                    "matmul_tn",
                    (m, k, n),
                    "parallel",
                    simd::configured(),
                    t,
                    naive_tn,
                    reps,
                    &oracle_tn,
                    || ta_tn.matmul_tn(&tb),
                );
                push_variant(
                    &mut rows,
                    failures,
                    "matmul_nt",
                    (m, k, n),
                    "parallel",
                    simd::configured(),
                    t,
                    naive_nt,
                    reps,
                    &oracle_nt,
                    || ta.matmul_nt(&bt),
                );
            } else {
                let d_tn = max_abs_diff(ta_tn.matmul_tn(&tb).data(), &oracle_tn);
                let d_nt = max_abs_diff(ta.matmul_nt(&bt).data(), &oracle_nt);
                for (op, d) in [("matmul_tn", d_tn), ("matmul_nt", d_nt)] {
                    if d != 0.0 {
                        *failures += 1;
                        eprintln!("DIVERGENCE: {op} {m}x{k}x{n} @{t} threads: max|Δ| = {d:e}");
                    }
                }
            }
        }
        ner_par::set_global_threads(1);
    }
    rows
}

fn bench_scoring(scale: Scale, thread_counts: &[usize]) -> Vec<ScoringRow> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let ds = gen.dataset(&mut rng, scale.size(200));
    let encoder = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
    let model = NerModel::new(NerConfig::default(), &encoder, None, &mut rng);
    let encoded = encoder.encode_dataset(&ds, None);
    let tokens: usize = encoded.iter().map(|e| e.len()).sum();
    let reps = match scale {
        Scale::Full => 3,
        Scale::Quick => 2,
    };

    ner_par::set_global_threads(1);
    let serial_preds = predict_all(&model, &encoded);

    let mut rows: Vec<ScoringRow> = Vec::new();
    for &t in thread_counts {
        ner_par::set_global_threads(t);
        let ms = best_ms(reps, || {
            std::hint::black_box(predict_all(&model, &encoded));
        });
        let identical = predict_all(&model, &encoded) == serial_preds;
        let base = rows.first().map_or(ms, |r| r.best_ms);
        rows.push(ScoringRow {
            threads: t,
            sentences: encoded.len(),
            tokens,
            best_ms: ms,
            tokens_per_sec: tokens as f64 / (ms / 1e3),
            speedup_vs_1: base / ms,
            identical_to_serial: identical,
        });
    }
    ner_par::set_global_threads(1);
    rows
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Quick } else { Scale::from_args() };
    init_harness("exp_kernels", SEED, scale);

    let shapes: Vec<(usize, usize, usize)> = match scale {
        // 64³ sits exactly on PAR_MIN_FLOPS; 40×128×512 is an LSTM-gate
        // shaped workload (sentence × hidden × 4·hidden); 128×40×512 is
        // the TN gradient accumulation dW = Xᵀ·dY of the same gate (tall
        // skinny aᵀ: k = sentence rows, m = input dim, n = 4·hidden).
        Scale::Full => {
            vec![
                (32, 32, 32),
                (64, 64, 64),
                (128, 128, 128),
                (256, 256, 256),
                (40, 128, 512),
                (128, 40, 512),
            ]
        }
        Scale::Quick => vec![(32, 32, 32), (64, 64, 64), (96, 96, 96)],
    };
    let thread_counts = [1usize, 2, 4];
    let reps = match scale {
        Scale::Full => 5,
        Scale::Quick => 3,
    };

    let mut failures = 0usize;
    let kernels = bench_kernels(&shapes, &thread_counts, reps, &mut failures);
    let batch_scoring = bench_scoring(scale, &thread_counts);
    for r in &batch_scoring {
        if !r.identical_to_serial {
            failures += 1;
            eprintln!("DIVERGENCE: batch scoring at {} threads differs from serial", r.threads);
        }
    }

    println!("kernel backend: {}", simd::descriptor());
    print_table(
        "kernel throughput (best of reps)",
        &["op", "shape", "variant", "simd", "thr", "ms", "GFLOP/s", "×naive", "max|Δ|"],
        &kernels
            .iter()
            .map(|r| {
                vec![
                    r.op.clone(),
                    format!("{}x{}x{}", r.m, r.k, r.n),
                    r.variant.clone(),
                    r.simd.clone(),
                    r.threads.to_string(),
                    format!("{:.3}", r.best_ms),
                    format!("{:.2}", r.gflops),
                    format!("{:.2}", r.speedup_vs_naive),
                    format!("{:.1e}", r.max_abs_diff_vs_naive),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "batch scoring (predict_all)",
        &["thr", "sent", "tokens", "ms", "tok/s", "×1thr", "identical"],
        &batch_scoring
            .iter()
            .map(|r| {
                vec![
                    r.threads.to_string(),
                    r.sentences.to_string(),
                    r.tokens.to_string(),
                    format!("{:.1}", r.best_ms),
                    format!("{:.0}", r.tokens_per_sec),
                    format!("{:.2}", r.speedup_vs_1),
                    r.identical_to_serial.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let cpu = simd::cpu_features();
    let report = Report {
        experiment: "exp_kernels".into(),
        description: "Serial vs blocked vs SIMD vs parallel kernel and batch-scoring throughput; every variant must match the naive oracle bit-for-bit".into(),
        seed: SEED,
        smoke,
        requested_threads: ner_par::default_threads(),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        kernel_backend: simd::descriptor(),
        simd_default: simd::configured().name().into(),
        cpu_sse2: cpu.sse2,
        cpu_avx2: cpu.avx2,
        cpu_fma: cpu.fma,
        kernels,
        batch_scoring,
        divergence_failures: failures,
    };
    let path = write_report("exp_kernels", &report);
    let bench_json = serde_json::to_string_pretty(&report).expect("serialize BENCH report");
    std::fs::write("BENCH_kernels.json", bench_json).expect("write BENCH_kernels.json");
    println!("\nreport: {} (+ BENCH_kernels.json)", path.display());

    if failures > 0 {
        eprintln!(
            "{failures} divergence failure(s); blocked/SIMD/parallel kernels must match the naive scalar oracle bit-for-bit"
        );
        std::process::exit(1);
    }
}
