//! E-F10 — reproduces **Fig. 10** (the LM-LSTM-CRF representation stack,
//! Liu et al.): character-level representation ⧺ pretrained word embedding
//! ⧺ contextual LM representation, fed to a BiLSTM-CRF.
//!
//! The harness is an additive feature ladder: starting from random word
//! embeddings it adds, one at a time, pretraining, the char channel,
//! hand-crafted features, gazetteers, and contextual-LM vectors — the
//! columns of the paper's Table 3 "input representation" axis.

use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, write_report, Scale,
};
use ner_core::config::{CharRepr, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_embed::charlm::{CharLm, CharLmConfig};
use ner_embed::skipgram::{self, SkipGramConfig};
use ner_embed::ContextualEmbedder;
use ner_text::Gazetteer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    rung: String,
    signature: String,
    f1_test: f64,
    f1_unseen: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("fig10", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);
    let mut rng = StdRng::seed_from_u64(5);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let lm_corpus = gen.lm_sentences(&mut rng, scale.size(1200));
    println!("pretraining embeddings ...");
    let pretrained = skipgram::train(
        &lm_corpus,
        &SkipGramConfig { dim: 32, epochs: scale.epochs(6), min_count: 1, ..Default::default() },
        &mut rng,
    );
    let (charlm, _) = CharLm::train(
        &lm_corpus[..scale.size(800)],
        &CharLmConfig { hidden: 48, dim: 24, epochs: scale.epochs(3), ..Default::default() },
        &mut rng,
    );
    let mut gazetteer = Gazetteer::new();
    for s in &data.train.sentences {
        for e in &s.entities {
            let toks: Vec<&str> =
                s.tokens[e.start..e.end].iter().map(|t| t.text.as_str()).collect();
            gazetteer.add(e.coarse_label(), &toks);
        }
    }

    struct Rung {
        name: &'static str,
        pretrained: bool,
        char: bool,
        feats: bool,
        gaz: bool,
        lm: bool,
    }
    let ladder = [
        Rung {
            name: "word (random)",
            pretrained: false,
            char: false,
            feats: false,
            gaz: false,
            lm: false,
        },
        Rung {
            name: "+ pretrained words",
            pretrained: true,
            char: false,
            feats: false,
            gaz: false,
            lm: false,
        },
        Rung {
            name: "+ char-CNN",
            pretrained: true,
            char: true,
            feats: false,
            gaz: false,
            lm: false,
        },
        Rung {
            name: "+ handcrafted features",
            pretrained: true,
            char: true,
            feats: true,
            gaz: false,
            lm: false,
        },
        Rung {
            name: "+ gazetteers",
            pretrained: true,
            char: true,
            feats: true,
            gaz: true,
            lm: false,
        },
        Rung {
            name: "+ contextual LM (Fig. 10 stack)",
            pretrained: true,
            char: true,
            feats: true,
            gaz: true,
            lm: true,
        },
    ];

    let mut rows = Vec::new();
    for rung in &ladder {
        let mut encoder = SentenceEncoder::from_dataset(&data.train, TagScheme::Bioes, 1)
            .with_features(rung.feats);
        if rung.pretrained {
            encoder = encoder.with_pretrained_vocab(&pretrained);
        }
        if rung.gaz {
            encoder = encoder.with_gazetteer(gazetteer.clone());
        }
        let cfg = NerConfig {
            word: if rung.pretrained {
                WordRepr::Pretrained { fine_tune: false }
            } else {
                WordRepr::Random { dim: 32 }
            },
            char_repr: if rung.char {
                CharRepr::Cnn { dim: 16, filters: 16 }
            } else {
                CharRepr::None
            },
            use_features: rung.feats,
            use_gazetteer: rung.gaz,
            context_dim: if rung.lm { charlm.dim() } else { 0 },
            ..NerConfig::default()
        };
        let ctx: Option<&dyn ContextualEmbedder> = rung.lm.then_some(&charlm as _);
        let mut rng = StdRng::seed_from_u64(23);
        let mut model =
            NerModel::new(cfg.clone(), &encoder, rung.pretrained.then_some(&pretrained), &mut rng);
        let train_enc = encoder.encode_dataset(&data.train, ctx);
        ner_core::trainer::train(&mut model, &train_enc, None, &tc, &mut rng);
        let f1_test = evaluate_model(&model, &encoder.encode_dataset(&data.test, ctx)).micro.f1;
        let f1_unseen =
            evaluate_model(&model, &encoder.encode_dataset(&data.test_unseen, ctx)).micro.f1;
        println!("  {:<34} test {:>6}  unseen {:>6}", rung.name, pct(f1_test), pct(f1_unseen));
        rows.push(Row {
            rung: rung.name.to_string(),
            signature: cfg.signature(),
            f1_test,
            f1_unseen,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.rung.clone(), r.signature.clone(), pct(r.f1_test), pct(r.f1_unseen)])
        .collect();
    print_table(
        "Fig. 10 — input-representation ladder (BiLSTM-CRF encoder/decoder fixed)",
        &["Rung", "Architecture", "F1 (test)", "F1 (unseen)"],
        &table,
    );
    println!("\nExpected shape (paper): each representation source adds signal; the full");
    println!("char+word+LM stack of Fig. 10 sits at the top on unseen entities.");
    let path = write_report("fig10", &rows);
    println!("report: {}", path.display());
}
