//! E-F6 — reproduces **Fig. 6** (Iterated Dilated CNNs, Strubell et al.).
//!
//! Two claims from the paper:
//! 1. ID-CNN retains accuracy comparable to BiLSTM-CRF;
//! 2. because convolutions parallelize across positions (no sequential
//!    recurrence), ID-CNN is substantially faster at test time — the paper
//!    reports 14–20× on GPU batches; on a scalar CPU the expected shape is
//!    a consistent >1× advantage that *grows with sentence length*.
//!
//! (Wall-clock microbenchmarks of the same encoders live in
//! `benches/encoder_speed.rs`; this harness reports the accuracy side and a
//! direct timing sweep in one table.)

use ner_bench::{
    eval_on, harness_train_config, init_harness, pct, print_table, standard_data, train_model,
    write_report, Scale,
};
use ner_core::config::{CharRepr, EncoderKind, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    f1_bilstm: f64,
    f1_idcnn: f64,
    speedups_by_length: Vec<(usize, f64)>,
}

fn inference_time(model: &NerModel, enc: &SentenceEncoder, ds: &Dataset, reps: usize) -> f64 {
    let encoded = enc.encode_dataset(ds, None);
    let t = Instant::now();
    for _ in 0..reps {
        for e in &encoded {
            let ts = Instant::now();
            let _ = model.predict_spans(e);
            ner_obs::observe("infer.sentence_us", ts.elapsed().as_secs_f64() * 1e6);
            ner_obs::counter("infer.tokens", e.len() as f64);
        }
    }
    t.elapsed().as_secs_f64() / reps as f64
}

/// Builds a dataset of concatenated sentences reaching ~`target_len` tokens,
/// emulating the paper's document-length processing.
fn long_sentences(target_len: usize, n: usize, seed: u64) -> Dataset {
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut tokens: Vec<String> = Vec::new();
        let mut entities = Vec::new();
        while tokens.len() < target_len {
            let s = gen.sentence(&mut rng);
            let off = tokens.len();
            tokens.extend(s.tokens.iter().map(|t| t.text.clone()));
            entities.extend(
                s.entities.iter().map(|e| {
                    ner_text::EntitySpan::new(e.start + off, e.end + off, e.label.clone())
                }),
            );
        }
        out.push(Sentence::new(&tokens, entities));
    }
    Dataset::new(out)
}

fn main() {
    let scale = Scale::from_args();
    init_harness("fig6", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);

    let bilstm_cfg = NerConfig {
        char_repr: CharRepr::None,
        word: WordRepr::Random { dim: 32 },
        encoder: EncoderKind::Lstm { hidden: 48, bidirectional: true, layers: 1 },
        ..NerConfig::default()
    };
    let idcnn_cfg = NerConfig {
        encoder: EncoderKind::IdCnn {
            filters: 48,
            width: 3,
            dilations: vec![1, 2, 4],
            iterations: 2,
        },
        ..bilstm_cfg.clone()
    };

    println!("training BiLSTM-CRF and ID-CNN-CRF ...");
    let (enc_l, bilstm) = train_model(bilstm_cfg, &data.train, &tc, 21);
    let (enc_c, idcnn) = train_model(idcnn_cfg, &data.train, &tc, 21);
    let f1_l = eval_on(&enc_l, &bilstm, &data.test_unseen).micro.f1;
    let f1_c = eval_on(&enc_c, &idcnn, &data.test_unseen).micro.f1;

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &len in &[10usize, 20, 40, 80] {
        let ds = long_sentences(len, scale.size(40), 99);
        let reps = if scale == Scale::Quick { 1 } else { 3 };
        let t_l = inference_time(&bilstm, &enc_l, &ds, reps);
        let t_c = inference_time(&idcnn, &enc_c, &ds, reps);
        let speedup = t_l / t_c;
        speedups.push((len, speedup));
        rows.push(vec![
            len.to_string(),
            format!("{:.1} ms", 1e3 * t_l),
            format!("{:.1} ms", 1e3 * t_c),
            format!("{speedup:.2}x"),
        ]);
    }

    print_table(
        "Fig. 6 — ID-CNN vs BiLSTM-CRF: accuracy",
        &["Model", "F1 (unseen)"],
        &[vec!["BiLSTM-CRF".into(), pct(f1_l)], vec!["ID-CNN-CRF".into(), pct(f1_c)]],
    );
    print_table(
        "Fig. 6 — test-time cost by sentence length (lower is better)",
        &["Tokens/sentence", "BiLSTM-CRF", "ID-CNN-CRF", "ID-CNN speedup"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): comparable F1; ID-CNN speedup > 1x and growing with length"
    );
    println!("(paper reports 14-20x with GPU batch parallelism; scalar CPU shows the trend).");

    let path = write_report(
        "fig6",
        &Report { f1_bilstm: f1_l, f1_idcnn: f1_c, speedups_by_length: speedups },
    );
    println!("report: {}", path.display());
}
