//! E-S42 — reproduces the **§4.2 transfer-learning result** (Yang et al.,
//! Lee et al.): warm-starting from a high-resource source domain improves a
//! low-resource target, with fine-tuning ≥ frozen-encoder ≥ from-scratch,
//! and the margin largest at the smallest target sizes.
//!
//! Source: clean news. Target: the W-NUT-style noisy domain. Also
//! demonstrates the tag-hierarchy mapping (fine-grained → coarse) of
//! Beryozkin et al.

use ner_applied::transfer::{coarsen_labels, low_resource_sweep};
use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, write_report, Scale,
};
use ner_core::config::{CharRepr, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::noise::{corrupt_dataset, NoiseModel};
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    target_size: usize,
    f1: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("transfer", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);
    let mut rng = StdRng::seed_from_u64(61);

    // Target domain: noisy user-generated text with fine-grained labels,
    // projected to the source's coarse tag set via the tag hierarchy.
    let noisy_gen =
        NewsGenerator::new(GeneratorConfig { fine_grained: true, ..Default::default() });
    let target_train_ds = coarsen_labels(&corrupt_dataset(
        &noisy_gen.dataset(&mut rng, scale.size(120)),
        &NoiseModel::social_media(),
        &mut rng,
    ));
    let target_test_ds = coarsen_labels(&corrupt_dataset(
        &noisy_gen.dataset(&mut rng, scale.size(120)),
        &NoiseModel::social_media(),
        &mut rng,
    ));

    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 32 },
        char_repr: CharRepr::Cnn { dim: 12, filters: 12 },
        ..NerConfig::default()
    };
    let encoder = SentenceEncoder::from_dataset(&data.train, cfg.scheme, 1);
    let source_enc = encoder.encode_dataset(&data.train, None);
    let target_train = encoder.encode_dataset(&target_train_ds, None);
    let target_test = encoder.encode_dataset(&target_test_ds, None);

    println!("training the source-domain model (clean news, {} sentences) ...", source_enc.len());
    let mut source = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
    ner_core::trainer::train(&mut source, &source_enc, None, &tc, &mut rng);
    let zero_shot = evaluate_model(&source, &target_test).micro.f1;
    println!("zero-shot source→target F1: {}", pct(zero_shot));

    let sizes = [scale.size(10), scale.size(30), scale.size(120)];
    let tc_target =
        TrainConfig { epochs: scale.epochs(6), patience: None, ..TrainConfig::default() };
    println!("sweeping target sizes {sizes:?} × schemes ...");
    let sweep = low_resource_sweep(
        &cfg,
        &encoder,
        &source,
        &target_train,
        &target_test,
        &sizes,
        &tc_target,
        &mut rng,
    );

    let rows: Vec<Row> = sweep
        .iter()
        .map(|(scheme, size, f1)| Row {
            scheme: format!("{scheme:?}"),
            target_size: *size,
            f1: *f1,
        })
        .collect();
    let table: Vec<Vec<String>> =
        rows.iter().map(|r| vec![r.target_size.to_string(), r.scheme.clone(), pct(r.f1)]).collect();
    print_table(
        "§4.2 — transfer to the low-resource noisy target (coarse-mapped labels)",
        &["Target sentences", "Scheme", "F1 (target test)"],
        &table,
    );
    println!("\nZero-shot (no target training): {}", pct(zero_shot));
    println!("Expected shape (paper): FineTuneAll ≥ FreezeEncoder ≥ FromScratch, with the");
    println!("transfer margin shrinking as target data grows.");
    let path = write_report("transfer", &rows);
    println!("report: {}", path.display());
}
