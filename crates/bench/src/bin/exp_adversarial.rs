//! E-S45 — reproduces the **§4.5 adversarial-training result** (DATNet's
//! perturbation mechanism): training on FGM ε-bounded input perturbations
//! improves generalization/robustness, measured here on clean,
//! unseen-entity and noise-channel test sets across an ε sweep.

use ner_applied::adversarial::{evaluate_under_attack, train_fgm};
use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, write_report, Scale,
};
use ner_core::config::{CharRepr, NerConfig, WordRepr};
use ner_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    epsilon: f32,
    f1_clean: f64,
    f1_attacked: f64,
    f1_unseen: f64,
    f1_noisy: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("adversarial", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);

    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 24 },
        char_repr: CharRepr::Cnn { dim: 12, filters: 12 },
        ..NerConfig::default()
    };
    let encoder = SentenceEncoder::from_dataset(&data.train, cfg.scheme, 1);
    let train_enc = encoder.encode_dataset(&data.train, None);
    let clean = encoder.encode_dataset(&data.test, None);
    let unseen = encoder.encode_dataset(&data.test_unseen, None);
    let noisy = encoder.encode_dataset(&data.test_noisy, None);

    let mut rows = Vec::new();
    for &epsilon in &[0.0f32, 0.25, 0.5, 1.0] {
        // Same init seed and data order for every ε: the only difference is
        // the adversarial augmentation.
        let mut rng = StdRng::seed_from_u64(81);
        let mut model = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
        train_fgm(&mut model, &train_enc, epsilon, &tc, &mut rng);
        let row = Row {
            epsilon,
            f1_clean: evaluate_model(&model, &clean).micro.f1,
            f1_attacked: evaluate_under_attack(&model, &clean, 1.0, &mut rng),
            f1_unseen: evaluate_model(&model, &unseen).micro.f1,
            f1_noisy: evaluate_model(&model, &noisy).micro.f1,
        };
        println!(
            "  eps={epsilon:<5} clean {:>6}  attacked {:>6}  unseen {:>6}  noisy {:>6}",
            pct(row.f1_clean),
            pct(row.f1_attacked),
            pct(row.f1_unseen),
            pct(row.f1_noisy)
        );
        rows.push(row);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.epsilon),
                pct(r.f1_clean),
                pct(r.f1_attacked),
                pct(r.f1_unseen),
                pct(r.f1_noisy),
            ]
        })
        .collect();
    print_table(
        "§4.5 — FGM adversarial training (ε sweep; ε=0 is the standard-training control)",
        &["epsilon", "F1 clean", "F1 under FGM attack", "F1 unseen", "F1 noisy"],
        &table,
    );
    println!("\nExpected shape (paper §4.5): adversarial training makes the model 'more robust");
    println!("to attack' — the FGM-attacked column improves with training ε — while clean F1 is");
    println!("maintained. Char-level channel noise (last column) is a different threat model");
    println!("that embedding-space FGM does not target.");
    let path = write_report("adversarial", &rows);
    println!("report: {}", path.display());
}
