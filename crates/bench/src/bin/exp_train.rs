//! Training throughput: the batched packed-autograd trainer vs the
//! per-sentence oracle under the *same* bucketed schedule.
//!
//! Both backends run identical chunk/bucket/seed schedules (see
//! DESIGN.md, "Batched training"), so their per-epoch loss curves must be
//! **bit-identical** — any divergence makes the harness exit non-zero (CI
//! runs this via `--smoke` at `NER_THREADS=1` and `4`). What differs is
//! wall clock: the batched trainer records one autodiff tape over the
//! packed `[N,d]` row matrix per bucket, amortizing the recurrent GEMMs
//! across sentences, while the oracle builds one tape per sentence.
//!
//! The sweep trains a BiLSTM-CRF at hidden sizes 48/128/256 and 1/4
//! worker threads, reporting per-epoch wall clock, tokens/s and the
//! batched-vs-per-sentence epoch-throughput speedup. As in `exp_inference`,
//! the batched win is bounded by the GEMM share of a sentence's cost, so
//! the ratio grows with `hidden`.
//!
//! Results land in `results/exp_train.json` (with a run manifest) and,
//! for the repo-level benchmark snapshot, `BENCH_train.json`.

use ner_bench::{init_harness, print_table, write_report, Scale};
use ner_core::config::{CharRepr, EncoderKind, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_core::trainer::TrainReport;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

const SEED: u64 = 31;

/// Sentences per packed bucket (per worker). Mirrors the serving
/// backend's compute-bucket width, which caps at 32 rows.
const BATCH: usize = 16;

/// One epoch of the headline configuration.
#[derive(Serialize)]
struct EpochRow {
    epoch: usize,
    trainer: String,
    wall_ms: u64,
    tokens_per_s: f64,
    train_loss: f64,
}

/// Batched vs per-sentence epoch throughput at one (hidden, threads) cell.
#[derive(Serialize)]
struct SweepRow {
    hidden: usize,
    threads: usize,
    epochs: usize,
    tokens_per_epoch: usize,
    /// Mean epoch wall clock, per-sentence oracle.
    per_sentence_ms: f64,
    /// Mean epoch wall clock, batched trainer.
    batched_ms: f64,
    per_sentence_tokens_per_s: f64,
    batched_tokens_per_s: f64,
    /// per_sentence_ms / batched_ms; >1 means packing won.
    batched_speedup: f64,
    /// Epochs whose training loss differed in any f64 bit between the two
    /// backends. Must be zero: both run the same schedule.
    loss_curve_divergences: usize,
}

#[derive(Serialize)]
struct Report {
    experiment: String,
    description: String,
    seed: u64,
    smoke: bool,
    /// Worker threads requested via `NER_THREADS` at launch.
    requested_threads: usize,
    /// True `available_parallelism` of the host the run executed on.
    host_parallelism: usize,
    kernel_backend: String,
    batch: usize,
    /// Batched over per-sentence epoch throughput at hidden=128, 1 thread
    /// — the headline number of this experiment (acceptance: >= 1.5x on a
    /// SIMD-enabled host at hidden >= 128).
    batched_speedup_hidden128_1thr: f64,
    meets_1_5x_target_at_hidden128: bool,
    /// Honest read of the headline on the measured host.
    analysis: String,
    sweep: Vec<SweepRow>,
    /// Per-epoch detail for hidden=128 at 1 thread, both backends.
    epochs_hidden128_1thr: Vec<EpochRow>,
    loss_curve_divergences: usize,
}

/// Trains the given config from a fixed init with a fixed schedule rng;
/// the returned report carries per-epoch wall clock and tokens/s.
fn run(
    cfg: &NerConfig,
    kind: TrainerKind,
    train_enc: &[EncodedSentence],
    encoder: &SentenceEncoder,
    epochs: usize,
) -> TrainReport {
    let mut model = NerModel::new(cfg.clone(), encoder, None, &mut StdRng::seed_from_u64(SEED));
    let tc = TrainConfig {
        epochs,
        patience: None,
        trainer: kind,
        batch: BATCH,
        ..TrainConfig::default()
    };
    train(&mut model, train_enc, None, &tc, &mut StdRng::seed_from_u64(SEED ^ 0x5A5A))
}

fn mean_wall_ms(r: &TrainReport) -> f64 {
    r.epochs.iter().map(|e| e.wall_ms as f64).sum::<f64>() / r.epochs.len().max(1) as f64
}

fn mean_tokens_per_s(r: &TrainReport) -> f64 {
    r.epochs.iter().map(|e| e.tokens_per_s).sum::<f64>() / r.epochs.len().max(1) as f64
}

/// Bitwise loss-curve comparison: the two backends run the same schedule,
/// so every epoch's mean loss must agree in every f64 bit.
fn curve_divergences(batched: &TrainReport, oracle: &TrainReport, ctx: &str) -> usize {
    let mut n = 0;
    for (b, o) in batched.epochs.iter().zip(&oracle.epochs) {
        if b.train_loss.to_bits() != o.train_loss.to_bits() {
            n += 1;
            if n <= 5 {
                eprintln!(
                    "loss-curve divergence [{ctx}] epoch {}: batched {} vs per-sentence {}",
                    b.epoch, b.train_loss, o.train_loss
                );
            }
        }
    }
    n += batched.epochs.len().abs_diff(oracle.epochs.len());
    n
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Quick } else { Scale::from_args() };
    init_harness("exp_train", SEED, scale);
    let requested_threads = ner_par::default_threads();

    let mut rng = StdRng::seed_from_u64(SEED);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let corpus = gen.dataset(&mut rng, scale.size(160));
    let encoder = SentenceEncoder::from_dataset(&corpus, TagScheme::Bio, 1);
    let train_enc = encoder.encode_dataset(&corpus, None);
    let tokens_per_epoch: usize = train_enc.iter().map(|s| s.len()).sum();
    let epochs = scale.epochs(4);

    // A pure BiLSTM+CRF stack (no char channel) isolates the recurrent
    // GEMMs that packing amortizes, mirroring exp_inference's sweep.
    let cfg_at = |hidden: usize| NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 64 },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Lstm { hidden, bidirectional: true, layers: 1 },
        decoder: ner_core::config::DecoderKind::Crf,
        ..NerConfig::default()
    };

    let mut sweep = Vec::new();
    let mut epochs_detail = Vec::new();
    let mut divergences = 0usize;
    let mut speedup_128_1thr = f64::NAN;
    for &hidden in &[48usize, 128, 256] {
        let cfg = cfg_at(hidden);
        for &threads in &[1usize, 4] {
            ner_par::set_global_threads(threads);
            let batched = run(&cfg, TrainerKind::Batched, &train_enc, &encoder, epochs);
            let oracle = run(&cfg, TrainerKind::PerSentence, &train_enc, &encoder, epochs);
            let ctx = format!("hidden={hidden} threads={threads}");
            let diverged = curve_divergences(&batched, &oracle, &ctx);
            divergences += diverged;
            let row = SweepRow {
                hidden,
                threads,
                epochs,
                tokens_per_epoch,
                per_sentence_ms: mean_wall_ms(&oracle),
                batched_ms: mean_wall_ms(&batched),
                per_sentence_tokens_per_s: mean_tokens_per_s(&oracle),
                batched_tokens_per_s: mean_tokens_per_s(&batched),
                batched_speedup: mean_wall_ms(&oracle) / mean_wall_ms(&batched),
                loss_curve_divergences: diverged,
            };
            if hidden == 128 && threads == 1 {
                speedup_128_1thr = row.batched_speedup;
                for (name, r) in [("batched", &batched), ("per-sentence", &oracle)] {
                    for e in &r.epochs {
                        epochs_detail.push(EpochRow {
                            epoch: e.epoch,
                            trainer: name.to_string(),
                            wall_ms: e.wall_ms,
                            tokens_per_s: e.tokens_per_s,
                            train_loss: e.train_loss,
                        });
                    }
                }
            }
            sweep.push(row);
        }
    }
    ner_par::set_global_threads(1);

    print_table(
        "batched vs per-sentence training, mean epoch wall clock",
        &["hidden", "thr", "per-sentence ms", "batched ms", "batched tok/s", "speedup", "diverged"],
        &sweep
            .iter()
            .map(|r| {
                vec![
                    r.hidden.to_string(),
                    r.threads.to_string(),
                    format!("{:.1}", r.per_sentence_ms),
                    format!("{:.1}", r.batched_ms),
                    format!("{:.0}", r.batched_tokens_per_s),
                    format!("{:.2}", r.batched_speedup),
                    r.loss_curve_divergences.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "per-epoch detail, hidden=128, 1 thread",
        &["epoch", "trainer", "wall ms", "tok/s", "loss"],
        &epochs_detail
            .iter()
            .map(|e| {
                vec![
                    e.epoch.to_string(),
                    e.trainer.clone(),
                    e.wall_ms.to_string(),
                    format!("{:.0}", e.tokens_per_s),
                    format!("{:.6}", e.train_loss),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let meets = speedup_128_1thr >= 1.5;
    let analysis = if meets {
        format!(
            "batched epoch throughput beat the per-sentence oracle {speedup_128_1thr:.2}x at \
             hidden=128, 1 thread, with bit-identical loss curves"
        )
    } else {
        format!(
            "batched epoch throughput reached {speedup_128_1thr:.2}x (< 1.5x target) at \
             hidden=128, 1 thread on this host ({}); the packed win is bounded by the GEMM \
             share of the step — backward's scatter and the per-row CRF/decoder losses run \
             at per-sentence cost regardless of packing, and smoke-scale corpora keep \
             buckets short. Loss curves stayed bit-identical, so the speedup is free of \
             accuracy cost wherever the host realizes it.",
            ner_tensor::simd::descriptor()
        )
    };
    println!("\nbatched vs per-sentence @ hidden=128, 1 thread: {speedup_128_1thr:.2}x");
    println!("{analysis}");

    let report = Report {
        experiment: "exp_train".into(),
        description: "Training throughput of the batched packed-autograd trainer vs the \
                      per-sentence oracle under the same bucketed schedule; loss curves must \
                      be bit-identical, wall clock is the variable"
            .into(),
        seed: SEED,
        smoke,
        requested_threads,
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        kernel_backend: ner_tensor::simd::descriptor(),
        batch: BATCH,
        batched_speedup_hidden128_1thr: speedup_128_1thr,
        meets_1_5x_target_at_hidden128: meets,
        analysis,
        sweep,
        epochs_hidden128_1thr: epochs_detail,
        loss_curve_divergences: divergences,
    };
    let path = write_report("exp_train", &report);
    let bench_json = serde_json::to_string_pretty(&report).expect("serialize BENCH report");
    std::fs::write("BENCH_train.json", bench_json).expect("write BENCH_train.json");
    println!("report: {} (+ BENCH_train.json)", path.display());

    if divergences > 0 {
        eprintln!(
            "{divergences} loss-curve divergence(s); the batched trainer must reproduce the \
             per-sentence oracle bit for bit under the shared schedule"
        );
        std::process::exit(1);
    }
}
