//! Closed-loop load test of the `ner-serve` batching server.
//!
//! Boots a real [`Server`] on an ephemeral port for each configuration in
//! the grid `max_batch ∈ {1, 8, 32} × client_threads ∈ {1, 4}` and drives
//! it with closed-loop clients (each thread sends the next request as soon
//! as its previous response arrives) over keep-alive connections. Every
//! response is checked against offline [`NerPipeline::extract`] on the
//! same text — the batching layer must be **byte-identical** to sequential
//! annotation, and any divergence makes the harness exit non-zero (CI runs
//! this via `--smoke` at `NER_THREADS=1` and `4`).
//!
//! The headline number is the req/s ratio of `max_batch=32` over
//! `max_batch=1` at 4 client threads: with concurrent clients the
//! dispatcher coalesces queued requests into one `extract_batch` call,
//! which packs the whole batch into padded `[B,T]` buckets and evaluates
//! them with one GEMM per timestep — so batching must buy throughput.
//! Each cell also reports `tokens/s` and `batch_compute_efficiency`: the
//! per-request model compute (Δ embed+encode+decode stage time over the
//! cell, per request) of the `max_batch=1` cell at the same client count
//! divided by this cell's — how much model time the wider batches save
//! per row, independent of queueing and HTTP overhead.
//!
//! Results land in `results/exp_serving.json` (with a run manifest) and,
//! for the repo-level benchmark snapshot, `BENCH_serving.json`.

use ner_bench::{init_harness, print_table, write_report, Scale};
use ner_core::config::NerConfig;
use ner_core::model::NerModel;
use ner_core::prelude::NerPipeline;
use ner_core::repr::SentenceEncoder;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_serve::{client, ServeConfig, ServeState, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Serialize, Value};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const SEED: u64 = 31;

/// One cell of the grid.
#[derive(Serialize)]
struct ServingRow {
    max_batch: usize,
    client_threads: usize,
    requests: usize,
    req_per_s: f64,
    /// Served tokens per second — req/s weighted by sentence length, the
    /// throughput unit comparable across workloads.
    tokens_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    /// Mean scored batch size observed by the dispatcher for this cell.
    mean_batch: f64,
    /// Model compute spent per request in this cell: Δ(embed + encode +
    /// decode) histogram sums over the cell divided by its request count.
    compute_us_per_row: f64,
    /// Per-row compute of the `max_batch=1` cell at the same client count
    /// over this cell's [`ServingRow::compute_us_per_row`] — > 1 means the padded
    /// `[B,T]` batches genuinely cheapen each row, independent of
    /// queueing and HTTP overhead. `1.0` by construction on baseline
    /// cells.
    batch_compute_efficiency: f64,
    /// Per-cell mean stage attribution (µs), from the same server-side
    /// histograms request traces are fed from: where did a request's time
    /// go in this cell?
    queue_wait_mean_us: f64,
    embed_mean_us: f64,
    encode_mean_us: f64,
    decode_mean_us: f64,
    divergences: usize,
}

/// Whole-run percentiles of one per-stage latency histogram.
#[derive(Serialize)]
struct StageQuantiles {
    stage: String,
    count: u64,
    p50_us: f64,
    p99_us: f64,
}

#[derive(Serialize)]
struct Report {
    experiment: String,
    description: String,
    seed: u64,
    smoke: bool,
    /// Worker threads of the scoring pool (`NER_THREADS` at launch).
    requested_threads: usize,
    host_parallelism: usize,
    /// req/s of max_batch=32 over max_batch=1 at 4 client threads — the
    /// headline number: batching must buy throughput under concurrency.
    batch32_speedup_at_4_clients: f64,
    /// Whole-run p50/p99 of every serving stage (queue wait, featurize,
    /// embed, encode, decode) plus end-to-end `serve.request_us` — the
    /// attribution columns traces are reconciled against.
    stage_percentiles: Vec<StageQuantiles>,
    rows: Vec<ServingRow>,
    divergences: usize,
}

/// The workload: raw sentences plus the offline payload each one must
/// serve back (the exact JSON the server is expected to emit).
struct Workload {
    texts: Vec<String>,
    expected: Vec<Value>,
    /// Token count per text, for tokens/s accounting.
    tokens: Vec<usize>,
}

fn offline_payload(pipeline: &NerPipeline, text: &str) -> Value {
    let s = pipeline.extract(text);
    let entities = s
        .entities
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("start".into(), Value::Num(e.start as f64)),
                ("end".into(), Value::Num(e.end as f64)),
                ("label".into(), Value::Str(e.label.clone())),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "tokens".into(),
            Value::Array(s.tokens.iter().map(|t| Value::Str(t.text.clone())).collect()),
        ),
        ("entities".into(), Value::Array(entities)),
        ("render".into(), Value::Str(s.render_brackets())),
    ])
}

/// Histograms whose per-cell delta-means land in the report rows, in
/// column order: batch size, then the stage attribution set.
const CELL_HISTOGRAMS: [&str; 5] = [
    "serve.batch_size",
    "serve.queue_wait_us",
    "infer.embed_us",
    "infer.encode_us",
    "infer.decode_us",
];

/// `(count, sum)` snapshot of each [`CELL_HISTOGRAMS`] entry. The global
/// registry is cumulative across cells, so a cell's mean is the delta of
/// two snapshots: `(sum1 - sum0) / (count1 - count0)`.
fn cell_snapshot() -> [(f64, f64); 5] {
    let summaries = ner_obs::histogram_summaries();
    CELL_HISTOGRAMS.map(|name| {
        summaries
            .iter()
            .find(|h| h.name == name)
            .map_or((0.0, 0.0), |h| (h.count as f64, h.count as f64 * h.mean))
    })
}

/// Delta-mean between two snapshots of one histogram.
fn delta_mean((count0, sum0): (f64, f64), (count1, sum1): (f64, f64)) -> f64 {
    if count1 > count0 {
        (sum1 - sum0) / (count1 - count0)
    } else {
        0.0
    }
}

/// Runs one grid cell: boots a fresh server, primes the token-feature
/// cache with one unmeasured pass over the workload, then drives the
/// closed-loop clients for `rounds` measured rounds, keeping the best
/// round's throughput (the same best-of-R discipline `exp_inference`
/// uses — a shared-machine scheduling hiccup must not masquerade as a
/// batching effect). Divergence counts accumulate across every round.
fn run_cell(
    pipeline: NerPipeline,
    workload: &Workload,
    max_batch: usize,
    client_threads: usize,
    reqs_per_thread: usize,
    rounds: usize,
) -> ServingRow {
    let config = ServeConfig {
        max_batch,
        request_timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let state = ServeState::new(pipeline, None, config);
    let server = Server::bind("127.0.0.1:0", state).expect("bind ephemeral port");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Priming pass: every text once, sequentially — the measured rounds
    // then see a warm token-feature cache in every cell, instead of a
    // cold-start fraction that shrinks as the cell sends more requests.
    let _ = drive_client(addr, workload, 0, workload.texts.len());

    let mut best: Option<ServingRow> = None;
    let mut divergences = 0;
    for _ in 0..rounds {
        let snap0 = cell_snapshot();
        let started = Instant::now();
        let per_thread: Vec<(Vec<f64>, usize, usize)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..client_threads)
                .map(|worker| {
                    scope.spawn(move || drive_client(addr, workload, worker, reqs_per_thread))
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("client thread")).collect()
        });
        let wall = started.elapsed().as_secs_f64();
        let snap1 = cell_snapshot();

        let mut latencies: Vec<f64> = Vec::new();
        let mut tokens_served = 0usize;
        for (lat, tok, div) in per_thread {
            latencies.extend(lat);
            tokens_served += tok;
            divergences += div;
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let quantile = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize];
        // Model compute for the round is the growth of the per-batch
        // stage histograms' sums; per request it is comparable across
        // cells because every cell serves the same striped workload.
        let compute_us =
            (snap1[2].1 - snap0[2].1) + (snap1[3].1 - snap0[3].1) + (snap1[4].1 - snap0[4].1);
        let row = ServingRow {
            max_batch,
            client_threads,
            requests: latencies.len(),
            req_per_s: latencies.len() as f64 / wall,
            tokens_per_s: tokens_served as f64 / wall,
            p50_us: quantile(0.5),
            p99_us: quantile(0.99),
            mean_batch: delta_mean(snap0[0], snap1[0]),
            compute_us_per_row: compute_us / latencies.len().max(1) as f64,
            batch_compute_efficiency: 1.0,
            queue_wait_mean_us: delta_mean(snap0[1], snap1[1]),
            embed_mean_us: delta_mean(snap0[2], snap1[2]),
            encode_mean_us: delta_mean(snap0[3], snap1[3]),
            decode_mean_us: delta_mean(snap0[4], snap1[4]),
            divergences: 0,
        };
        if best.as_ref().is_none_or(|b| row.req_per_s > b.req_per_s) {
            best = Some(row);
        }
    }

    let resp = client::post(addr, "/admin/shutdown", "").expect("shutdown");
    assert_eq!(resp.status, 200);
    server_thread.join().expect("server thread");

    let mut row = best.expect("at least one round");
    row.divergences = divergences;
    row
}

/// One closed-loop client: sends `reqs` requests back-to-back over a
/// keep-alive connection, timing each and checking it against the offline
/// payload. Returns (latencies in µs, tokens served, divergence count).
fn drive_client(
    addr: SocketAddr,
    workload: &Workload,
    worker: usize,
    reqs: usize,
) -> (Vec<f64>, usize, usize) {
    let mut conn = client::Conn::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(reqs);
    let mut tokens = 0usize;
    let mut divergences = 0;
    for i in 0..reqs {
        // Stride by worker so concurrent clients hit different texts.
        let idx = (worker * 31 + i) % workload.texts.len();
        let body = format!("{{\"text\": \"{}\"}}", workload.texts[idx].replace('"', "\\\""));
        let t = Instant::now();
        let resp = conn.post("/v1/extract", &body).expect("extract request");
        latencies.push(t.elapsed().as_secs_f64() * 1e6);
        tokens += workload.tokens[idx];
        assert_eq!(resp.status, 200, "unexpected status: {}", resp.body);
        let served: Value = serde_json::from_str(&resp.body).expect("response json");
        if served != workload.expected[idx] {
            divergences += 1;
            if divergences <= 3 {
                eprintln!("divergence on {:?}:\n  served {served:?}", workload.texts[idx]);
            }
        }
    }
    (latencies, tokens, divergences)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Quick } else { Scale::from_args() };
    init_harness("exp_serving", SEED, scale);
    let requested_threads = ner_par::default_threads();

    // An untrained default-config model serves identically-shaped work at
    // any weight values; skipping training keeps the harness CI-fast. Two
    // pipelines from the same seed: one deployed, one as the offline
    // reference (so the check cannot share cache state with the server).
    let build = || {
        let mut rng = StdRng::seed_from_u64(SEED);
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let corpus = gen.dataset(&mut rng, 60);
        let cfg = NerConfig::default();
        let encoder = SentenceEncoder::from_dataset(&corpus, cfg.scheme, 1);
        let model = NerModel::new(cfg, &encoder, None, &mut rng);
        (corpus, NerPipeline::new(encoder, model))
    };
    let (corpus, offline) = build();
    let texts: Vec<String> = corpus
        .sentences
        .iter()
        .map(|s| s.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" "))
        .collect();
    let expected: Vec<Value> = texts.iter().map(|t| offline_payload(&offline, t)).collect();
    let tokens: Vec<usize> = corpus.sentences.iter().map(|s| s.tokens.len()).collect();
    let workload = Workload { texts, expected, tokens };

    let reqs_per_thread = match scale {
        Scale::Full => 300,
        Scale::Quick => 30,
    };
    let rounds = match scale {
        Scale::Full => 3,
        Scale::Quick => 1,
    };

    let mut rows = Vec::new();
    for &max_batch in &[1usize, 8, 32] {
        for &client_threads in &[1usize, 4] {
            let (_, pipeline) = build();
            let row =
                run_cell(pipeline, &workload, max_batch, client_threads, reqs_per_thread, rounds);
            ner_obs::info(format!(
                "max_batch={} clients={}: {:.0} req/s, {:.0} tok/s (p50 {:.0}µs, p99 {:.0}µs, \
                 mean batch {:.1}, qwait {:.0}µs, compute/row {:.0}µs, {} divergences)",
                row.max_batch,
                row.client_threads,
                row.req_per_s,
                row.tokens_per_s,
                row.p50_us,
                row.p99_us,
                row.mean_batch,
                row.queue_wait_mean_us,
                row.compute_us_per_row,
                row.divergences
            ));
            rows.push(row);
        }
    }

    // Per-row compute efficiency: each cell against the `max_batch=1`
    // cell at the same client count. Computed as a post-pass so the
    // baseline row exists regardless of grid order.
    let baseline_compute: Vec<(usize, f64)> = rows
        .iter()
        .filter(|r| r.max_batch == 1)
        .map(|r| (r.client_threads, r.compute_us_per_row))
        .collect();
    for row in &mut rows {
        if let Some(&(_, base)) = baseline_compute.iter().find(|(ct, _)| *ct == row.client_threads)
        {
            if row.compute_us_per_row > 0.0 {
                row.batch_compute_efficiency = base / row.compute_us_per_row;
            }
        }
    }

    let req_per_s_at = |mb: usize, ct: usize| {
        rows.iter()
            .find(|r| r.max_batch == mb && r.client_threads == ct)
            .map_or(f64::NAN, |r| r.req_per_s)
    };
    let speedup = req_per_s_at(32, 4) / req_per_s_at(1, 4);
    let divergences: usize = rows.iter().map(|r| r.divergences).sum();

    print_table(
        "closed-loop serving throughput",
        &[
            "max_batch",
            "clients",
            "reqs",
            "req/s",
            "tok/s",
            "p50 µs",
            "p99 µs",
            "mean batch",
            "qwait µs",
            "compute µs/row",
            "eff/row",
            "diverged",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.max_batch.to_string(),
                    r.client_threads.to_string(),
                    r.requests.to_string(),
                    format!("{:.0}", r.req_per_s),
                    format!("{:.0}", r.tokens_per_s),
                    format!("{:.0}", r.p50_us),
                    format!("{:.0}", r.p99_us),
                    format!("{:.1}", r.mean_batch),
                    format!("{:.0}", r.queue_wait_mean_us),
                    format!("{:.0}", r.compute_us_per_row),
                    format!("{:.2}", r.batch_compute_efficiency),
                    r.divergences.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nreq/s speedup, max_batch=32 vs 1 at 4 clients: {speedup:.2}×");

    // Whole-run per-stage percentiles: the global histograms accumulated
    // over every cell, the same data request traces attribute from.
    let stage_percentiles: Vec<StageQuantiles> = [
        "serve.queue_wait_us",
        "infer.featurize_us",
        "infer.embed_us",
        "infer.encode_us",
        "infer.decode_us",
        "serve.request_us",
    ]
    .iter()
    .filter_map(|name| {
        ner_obs::histogram_summary(name).map(|h| StageQuantiles {
            stage: name.to_string(),
            count: h.count,
            p50_us: h.p50,
            p99_us: h.p99,
        })
    })
    .collect();
    println!("\nper-stage attribution over the whole run (p50 / p99 µs):");
    for s in &stage_percentiles {
        println!("  {:<22} {:>8.0} / {:>8.0}  (n={})", s.stage, s.p50_us, s.p99_us, s.count);
    }

    let report = Report {
        experiment: "exp_serving".into(),
        description: "Closed-loop load test of the ner-serve micro-batching server: req/s and latency percentiles over max_batch x client-thread grid; every response checked against offline extract".into(),
        seed: SEED,
        smoke,
        requested_threads,
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        batch32_speedup_at_4_clients: speedup,
        stage_percentiles,
        rows,
        divergences,
    };
    let path = write_report("exp_serving", &report);
    let bench_json = serde_json::to_string_pretty(&report).expect("serialize BENCH report");
    std::fs::write("BENCH_serving.json", bench_json).expect("write BENCH_serving.json");
    println!("report: {} (+ BENCH_serving.json)", path.display());

    if divergences > 0 {
        eprintln!("{divergences} divergence(s); batched serving must match offline annotate");
        std::process::exit(1);
    }
}
