//! Closed-loop load test of the `ner-serve` batching server.
//!
//! Boots a real [`Server`] on an ephemeral port for each configuration in
//! the grid `max_batch ∈ {1, 8, 32} × client_threads ∈ {1, 4}` and drives
//! it with closed-loop clients (each thread sends the next request as soon
//! as its previous response arrives) over keep-alive connections. Every
//! response is checked against offline [`NerPipeline::extract`] on the
//! same text — the batching layer must be **byte-identical** to sequential
//! annotation, and any divergence makes the harness exit non-zero (CI runs
//! this via `--smoke` at `NER_THREADS=1` and `4`).
//!
//! The headline number is the req/s ratio of `max_batch=32` over
//! `max_batch=1` at 4 client threads: with concurrent clients the
//! dispatcher coalesces queued requests into one `extract_batch` call,
//! which packs the whole batch into padded `[B,T]` buckets and evaluates
//! them with one GEMM per timestep — so batching must buy throughput.
//! Each cell also reports `tokens/s` and `batch_compute_efficiency`: the
//! per-request model compute (Δ embed+encode+decode stage time over the
//! cell, per request) of the `max_batch=1` cell at the same client count
//! divided by this cell's — how much model time the wider batches save
//! per row, independent of queueing and HTTP overhead.
//!
//! After the grid, a **soak harness** runs one long-lived server (two
//! replicas, artificial per-row scoring cost, a tight `slo_p99` budget)
//! through a latency-under-load ladder and a sustain → overload →
//! recovery arc, with a hot reload fired mid-sustain and a graceful
//! shutdown fired into live traffic at the end. The overload phase must
//! shed with 429s (SLO-aware admission), recovery must stop shedding,
//! every 200 must match offline `extract` byte-for-byte, and no response
//! may arrive malformed (`lost` stays zero) — violations exit non-zero.
//!
//! Results land in `results/exp_serving.json` (with a run manifest) and,
//! for the repo-level benchmark snapshot, `BENCH_serving.json`.

use ner_bench::{init_harness, print_table, write_report, Scale};
use ner_core::config::NerConfig;
use ner_core::model::NerModel;
use ner_core::prelude::NerPipeline;
use ner_core::repr::SentenceEncoder;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_serve::{client, ServeConfig, ServeState, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Serialize, Value};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const SEED: u64 = 31;

/// One cell of the grid.
#[derive(Serialize)]
struct ServingRow {
    max_batch: usize,
    client_threads: usize,
    requests: usize,
    req_per_s: f64,
    /// Served tokens per second — req/s weighted by sentence length, the
    /// throughput unit comparable across workloads.
    tokens_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    /// Mean scored batch size observed by the dispatcher for this cell.
    mean_batch: f64,
    /// Model compute spent per request in this cell: Δ(embed + encode +
    /// decode) histogram sums over the cell divided by its request count.
    compute_us_per_row: f64,
    /// Per-row compute of the `max_batch=1` cell at the same client count
    /// over this cell's [`ServingRow::compute_us_per_row`] — > 1 means the padded
    /// `[B,T]` batches genuinely cheapen each row, independent of
    /// queueing and HTTP overhead. `1.0` by construction on baseline
    /// cells.
    batch_compute_efficiency: f64,
    /// Per-cell mean stage attribution (µs), from the same server-side
    /// histograms request traces are fed from: where did a request's time
    /// go in this cell?
    queue_wait_mean_us: f64,
    embed_mean_us: f64,
    encode_mean_us: f64,
    decode_mean_us: f64,
    divergences: usize,
}

/// Whole-run percentiles of one per-stage latency histogram.
#[derive(Serialize)]
struct StageQuantiles {
    stage: String,
    count: u64,
    p50_us: f64,
    p99_us: f64,
}

/// One phase of the soak arc (sustain → overload → recovery → drain).
#[derive(Serialize)]
struct SoakPhase {
    phase: String,
    clients: usize,
    seconds: f64,
    /// Requests that received any HTTP response.
    requests: usize,
    /// 200s whose payload matched the offline reference.
    ok: usize,
    /// 429s — SLO-aware admission (or the queue-cap backstop) shed these.
    shed: usize,
    /// 408s — the request's deadline expired while queued.
    expired: usize,
    /// 503s — the server was draining.
    draining: usize,
    /// Goodput: matched 200s per second of phase wall clock.
    req_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    divergences: usize,
    /// Responses that arrived malformed or truncated — an accepted
    /// request the server failed to answer whole. Must stay zero.
    lost: usize,
}

/// One rung of the latency-under-load ladder.
#[derive(Serialize)]
struct LoadPoint {
    clients: usize,
    req_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    /// Fraction of responses that were 429s at this load.
    shed_rate: f64,
}

/// The soak harness verdict.
#[derive(Serialize)]
struct SoakReport {
    replicas: usize,
    poll_shards: usize,
    slo_p99_ms: u64,
    score_delay_ms: u64,
    /// Throughput/latency/shedding as offered load rises.
    latency_curve: Vec<LoadPoint>,
    /// The sustain → overload → recovery → drain arc.
    phases: Vec<SoakPhase>,
    /// Completed hot reloads during the soak (fired mid-sustain).
    reloads: u64,
    /// Overload shed load and recovery stopped shedding.
    recovered: bool,
    lost_total: usize,
    divergences: usize,
}

#[derive(Serialize)]
struct Report {
    experiment: String,
    description: String,
    seed: u64,
    smoke: bool,
    /// Worker threads of the scoring pool (`NER_THREADS` at launch).
    requested_threads: usize,
    host_parallelism: usize,
    /// req/s of max_batch=32 over max_batch=1 at 4 client threads — the
    /// headline number: batching must buy throughput under concurrency.
    batch32_speedup_at_4_clients: f64,
    /// Whole-run p50/p99 of every serving stage (queue wait, featurize,
    /// embed, encode, decode) plus end-to-end `serve.request_us` — the
    /// attribution columns traces are reconciled against.
    stage_percentiles: Vec<StageQuantiles>,
    rows: Vec<ServingRow>,
    /// Latency-under-load ladder plus the overload-and-recovery arc.
    soak: SoakReport,
    divergences: usize,
}

/// The workload: raw sentences plus the offline payload each one must
/// serve back (the exact JSON the server is expected to emit).
struct Workload {
    texts: Vec<String>,
    expected: Vec<Value>,
    /// Token count per text, for tokens/s accounting.
    tokens: Vec<usize>,
}

fn offline_payload(pipeline: &NerPipeline, text: &str) -> Value {
    let s = pipeline.extract(text);
    let entities = s
        .entities
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("start".into(), Value::Num(e.start as f64)),
                ("end".into(), Value::Num(e.end as f64)),
                ("label".into(), Value::Str(e.label.clone())),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "tokens".into(),
            Value::Array(s.tokens.iter().map(|t| Value::Str(t.text.clone())).collect()),
        ),
        ("entities".into(), Value::Array(entities)),
        ("render".into(), Value::Str(s.render_brackets())),
    ])
}

/// Histograms whose per-cell delta-means land in the report rows, in
/// column order: batch size, then the stage attribution set.
const CELL_HISTOGRAMS: [&str; 5] = [
    "serve.batch_size",
    "serve.queue_wait_us",
    "infer.embed_us",
    "infer.encode_us",
    "infer.decode_us",
];

/// `(count, sum)` snapshot of each [`CELL_HISTOGRAMS`] entry. The global
/// registry is cumulative across cells, so a cell's mean is the delta of
/// two snapshots: `(sum1 - sum0) / (count1 - count0)`.
fn cell_snapshot() -> [(f64, f64); 5] {
    let summaries = ner_obs::histogram_summaries();
    CELL_HISTOGRAMS.map(|name| {
        summaries
            .iter()
            .find(|h| h.name == name)
            .map_or((0.0, 0.0), |h| (h.count as f64, h.count as f64 * h.mean))
    })
}

/// Delta-mean between two snapshots of one histogram.
fn delta_mean((count0, sum0): (f64, f64), (count1, sum1): (f64, f64)) -> f64 {
    if count1 > count0 {
        (sum1 - sum0) / (count1 - count0)
    } else {
        0.0
    }
}

/// Runs one grid cell: boots a fresh server, primes the token-feature
/// cache with one unmeasured pass over the workload, then drives the
/// closed-loop clients for `rounds` measured rounds, keeping the best
/// round's throughput (the same best-of-R discipline `exp_inference`
/// uses — a shared-machine scheduling hiccup must not masquerade as a
/// batching effect). Divergence counts accumulate across every round.
fn run_cell(
    pipeline: NerPipeline,
    workload: &Workload,
    max_batch: usize,
    client_threads: usize,
    reqs_per_thread: usize,
    rounds: usize,
) -> ServingRow {
    let config = ServeConfig {
        max_batch,
        request_timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let state = ServeState::new(pipeline, None, config);
    let server = Server::bind("127.0.0.1:0", state).expect("bind ephemeral port");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Priming pass: every text once, sequentially — the measured rounds
    // then see a warm token-feature cache in every cell, instead of a
    // cold-start fraction that shrinks as the cell sends more requests.
    let _ = drive_client(addr, workload, 0, workload.texts.len());

    let mut best: Option<ServingRow> = None;
    let mut divergences = 0;
    for _ in 0..rounds {
        let snap0 = cell_snapshot();
        let started = Instant::now();
        let per_thread: Vec<(Vec<f64>, usize, usize)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..client_threads)
                .map(|worker| {
                    scope.spawn(move || drive_client(addr, workload, worker, reqs_per_thread))
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("client thread")).collect()
        });
        let wall = started.elapsed().as_secs_f64();
        let snap1 = cell_snapshot();

        let mut latencies: Vec<f64> = Vec::new();
        let mut tokens_served = 0usize;
        for (lat, tok, div) in per_thread {
            latencies.extend(lat);
            tokens_served += tok;
            divergences += div;
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let quantile = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize];
        // Model compute for the round is the growth of the per-batch
        // stage histograms' sums; per request it is comparable across
        // cells because every cell serves the same striped workload.
        let compute_us =
            (snap1[2].1 - snap0[2].1) + (snap1[3].1 - snap0[3].1) + (snap1[4].1 - snap0[4].1);
        let row = ServingRow {
            max_batch,
            client_threads,
            requests: latencies.len(),
            req_per_s: latencies.len() as f64 / wall,
            tokens_per_s: tokens_served as f64 / wall,
            p50_us: quantile(0.5),
            p99_us: quantile(0.99),
            mean_batch: delta_mean(snap0[0], snap1[0]),
            compute_us_per_row: compute_us / latencies.len().max(1) as f64,
            batch_compute_efficiency: 1.0,
            queue_wait_mean_us: delta_mean(snap0[1], snap1[1]),
            embed_mean_us: delta_mean(snap0[2], snap1[2]),
            encode_mean_us: delta_mean(snap0[3], snap1[3]),
            decode_mean_us: delta_mean(snap0[4], snap1[4]),
            divergences: 0,
        };
        if best.as_ref().is_none_or(|b| row.req_per_s > b.req_per_s) {
            best = Some(row);
        }
    }

    let resp = client::post(addr, "/admin/shutdown", "").expect("shutdown");
    assert_eq!(resp.status, 200);
    server_thread.join().expect("server thread");

    let mut row = best.expect("at least one round");
    row.divergences = divergences;
    row
}

/// One closed-loop client: sends `reqs` requests back-to-back over a
/// keep-alive connection, timing each and checking it against the offline
/// payload. Returns (latencies in µs, tokens served, divergence count).
fn drive_client(
    addr: SocketAddr,
    workload: &Workload,
    worker: usize,
    reqs: usize,
) -> (Vec<f64>, usize, usize) {
    let mut conn = client::Conn::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(reqs);
    let mut tokens = 0usize;
    let mut divergences = 0;
    for i in 0..reqs {
        // Stride by worker so concurrent clients hit different texts.
        let idx = (worker * 31 + i) % workload.texts.len();
        let body = format!("{{\"text\": \"{}\"}}", workload.texts[idx].replace('"', "\\\""));
        let t = Instant::now();
        let resp = conn.post("/v1/extract", &body).expect("extract request");
        latencies.push(t.elapsed().as_secs_f64() * 1e6);
        tokens += workload.tokens[idx];
        assert_eq!(resp.status, 200, "unexpected status: {}", resp.body);
        let served: Value = serde_json::from_str(&resp.body).expect("response json");
        if served != workload.expected[idx] {
            divergences += 1;
            if divergences <= 3 {
                eprintln!("divergence on {:?}:\n  served {served:?}", workload.texts[idx]);
            }
        }
    }
    (latencies, tokens, divergences)
}

/// Per-worker tally of one soak phase.
#[derive(Default)]
struct PhaseStats {
    requests: usize,
    ok: usize,
    shed: usize,
    expired: usize,
    draining: usize,
    divergences: usize,
    lost: usize,
    latencies: Vec<f64>,
}

impl PhaseStats {
    fn absorb(&mut self, other: PhaseStats) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.shed += other.shed;
        self.expired += other.expired;
        self.draining += other.draining;
        self.divergences += other.divergences;
        self.lost += other.lost;
        self.latencies.extend(other.latencies);
    }

    fn quantile(&mut self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        self.latencies[((self.latencies.len() - 1) as f64 * q).round() as usize]
    }
}

/// One closed-loop soak client. With `until`, runs until the instant
/// passes; without, runs until the server drains (first 503 or a
/// connection the listener no longer answers).
fn soak_worker(
    addr: SocketAddr,
    workload: &Workload,
    worker: usize,
    until: Option<Instant>,
) -> PhaseStats {
    let mut stats = PhaseStats::default();
    let Ok(mut conn) = client::Conn::connect(addr) else {
        return stats;
    };
    let mut i = 0usize;
    loop {
        if let Some(t) = until {
            if Instant::now() >= t {
                break;
            }
        }
        let idx = (worker * 31 + i) % workload.texts.len();
        i += 1;
        let body = format!("{{\"text\": \"{}\"}}", workload.texts[idx].replace('"', "\\\""));
        let t0 = Instant::now();
        match conn.post("/v1/extract", &body) {
            Ok(resp) => {
                stats.requests += 1;
                match resp.status {
                    200 => {
                        stats.latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                        // A 200 must be whole and byte-identical to the
                        // offline reference — under overload, during a
                        // reload, and mid-drain alike.
                        match serde_json::from_str::<Value>(&resp.body) {
                            Ok(served) if served == workload.expected[idx] => stats.ok += 1,
                            Ok(_) => {
                                stats.ok += 1;
                                stats.divergences += 1;
                            }
                            Err(_) => stats.lost += 1,
                        }
                    }
                    429 => {
                        stats.shed += 1;
                        // Brief backoff: a shed closed-loop client
                        // yielding keeps the phase from being pure 429s.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    408 => stats.expired += 1,
                    503 => {
                        stats.draining += 1;
                        if until.is_none() {
                            break;
                        }
                    }
                    _ => stats.lost += 1,
                }
            }
            Err(_) => {
                // The keep-alive socket closed under us (idle reap or
                // drain); a fresh connection tells churn from shutdown.
                match client::Conn::connect(addr) {
                    Ok(c) => conn = c,
                    Err(_) => break,
                }
            }
        }
    }
    stats
}

/// Runs `clients` closed-loop workers for `duration` (or, with `None`,
/// until the server drains) and merges their tallies.
fn soak_clients(
    addr: SocketAddr,
    workload: &Workload,
    clients: usize,
    duration: Option<Duration>,
) -> (PhaseStats, f64) {
    let until = duration.map(|d| Instant::now() + d);
    let started = Instant::now();
    let mut merged = PhaseStats::default();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|worker| scope.spawn(move || soak_worker(addr, workload, worker, until)))
            .collect();
        for w in workers {
            merged.absorb(w.join().expect("soak client"));
        }
    });
    let wall = started.elapsed().as_secs_f64();
    (merged, wall)
}

fn phase_row(name: &str, clients: usize, mut stats: PhaseStats, wall: f64) -> SoakPhase {
    SoakPhase {
        phase: name.to_string(),
        clients,
        seconds: wall,
        requests: stats.requests,
        ok: stats.ok,
        shed: stats.shed,
        expired: stats.expired,
        draining: stats.draining,
        req_per_s: stats.ok as f64 / wall.max(1e-9),
        p50_us: stats.quantile(0.5),
        p99_us: stats.quantile(0.99),
        divergences: stats.divergences,
        lost: stats.lost,
    }
}

/// The soak harness: one long-lived replicated server under a deliberate
/// per-row scoring cost and a tight SLO budget, pushed through a load
/// ladder and a sustain → overload → recovery → drain arc.
fn run_soak(pipeline: NerPipeline, workload: &Workload, smoke: bool) -> SoakReport {
    // 20 ms per single-row batch across 2 replicas ≈ 100 rows/s capacity.
    // A 4-client sustain sits well inside the 150 ms SLO budget; a
    // 32-client flood predicts ~300 ms queue waits and must be shed.
    let config = ServeConfig {
        max_batch: 1,
        replicas: 2,
        poll_shards: 2,
        score_delay: Duration::from_millis(20),
        slo_p99: Duration::from_millis(150),
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (replicas, poll_shards) = (config.replicas, config.poll_shards);
    let slo_ms = config.slo_p99.as_millis() as u64;
    let delay_ms = config.score_delay.as_millis() as u64;
    // The checkpoint for the mid-soak reload is the same model, saved to a
    // temp path — the swap must be invisible in the responses.
    let ckpt_path =
        std::env::temp_dir().join(format!("exp-serving-soak-{}.json", std::process::id()));
    ner_core::persist::Checkpoint::capture(&pipeline).save(&ckpt_path).expect("save checkpoint");
    let state = ServeState::new(pipeline, Some(ckpt_path.clone()), config);
    let server = Server::bind("127.0.0.1:0", std::sync::Arc::clone(&state)).expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Prime the token-feature caches and the admission cost model.
    let (_, _) = soak_clients(addr, workload, 1, Some(Duration::from_millis(200)));

    let phase_len = if smoke { Duration::from_millis(1200) } else { Duration::from_secs(12) };
    let rung_len = if smoke { Duration::from_millis(600) } else { Duration::from_secs(3) };
    let ladder: &[usize] = if smoke { &[1, 4, 16] } else { &[1, 2, 4, 8, 16, 32] };

    // Latency under load: goodput, percentiles, and shed rate as offered
    // load climbs past capacity.
    let mut latency_curve = Vec::new();
    for &clients in ladder {
        let (mut stats, wall) = soak_clients(addr, workload, clients, Some(rung_len));
        latency_curve.push(LoadPoint {
            clients,
            req_per_s: stats.ok as f64 / wall.max(1e-9),
            p50_us: stats.quantile(0.5),
            p99_us: stats.quantile(0.99),
            shed_rate: stats.shed as f64 / stats.requests.max(1) as f64,
        });
    }

    let mut phases = Vec::new();

    // Sustain, with a hot reload fired into the middle of it.
    let (stats, wall) = std::thread::scope(|scope| {
        let worker = scope.spawn(move || soak_clients(addr, workload, 4, Some(phase_len)));
        std::thread::sleep(phase_len / 3);
        let resp = client::post(addr, "/admin/reload", "").expect("mid-sustain reload");
        assert_eq!(resp.status, 200, "reload under load must succeed: {}", resp.body);
        worker.join().expect("sustain clients")
    });
    phases.push(phase_row("sustain+reload", 4, stats, wall));

    // Overload: far more closed-loop clients than capacity.
    let (stats, wall) = soak_clients(addr, workload, 32, Some(phase_len));
    phases.push(phase_row("overload", 32, stats, wall));

    // Recovery: back to the sustain load; shedding must stop.
    let (stats, wall) = soak_clients(addr, workload, 4, Some(phase_len));
    phases.push(phase_row("recovery", 4, stats, wall));

    // Drain: shutdown fired into live traffic. Workers run until the
    // first 503 / refused connection; everything answered 200 before that
    // must still be whole and correct.
    let (stats, wall) = std::thread::scope(|scope| {
        let worker = scope.spawn(move || soak_clients(addr, workload, 8, None));
        std::thread::sleep(Duration::from_millis(300));
        let resp = client::post(addr, "/admin/shutdown", "").expect("shutdown under load");
        assert_eq!(resp.status, 200);
        worker.join().expect("drain clients")
    });
    phases.push(phase_row("drain", 8, stats, wall));
    server_thread.join().expect("server drains and exits");
    let _ = std::fs::remove_file(ckpt_path);

    let overload_shed = phases.iter().find(|p| p.phase == "overload").map_or(0, |p| p.shed);
    let recovery = phases.iter().find(|p| p.phase == "recovery");
    let recovered =
        overload_shed > 0 && recovery.is_some_and(|p| p.shed == 0 && p.ok > 0 && p.lost == 0);
    SoakReport {
        replicas,
        poll_shards,
        slo_p99_ms: slo_ms,
        score_delay_ms: delay_ms,
        latency_curve,
        reloads: state.reload_count(),
        recovered,
        lost_total: phases.iter().map(|p| p.lost).sum(),
        divergences: phases.iter().map(|p| p.divergences).sum(),
        phases,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Quick } else { Scale::from_args() };
    init_harness("exp_serving", SEED, scale);
    let requested_threads = ner_par::default_threads();

    // An untrained default-config model serves identically-shaped work at
    // any weight values; skipping training keeps the harness CI-fast. Two
    // pipelines from the same seed: one deployed, one as the offline
    // reference (so the check cannot share cache state with the server).
    let build = || {
        let mut rng = StdRng::seed_from_u64(SEED);
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let corpus = gen.dataset(&mut rng, 60);
        let cfg = NerConfig::default();
        let encoder = SentenceEncoder::from_dataset(&corpus, cfg.scheme, 1);
        let model = NerModel::new(cfg, &encoder, None, &mut rng);
        (corpus, NerPipeline::new(encoder, model))
    };
    let (corpus, offline) = build();
    let texts: Vec<String> = corpus
        .sentences
        .iter()
        .map(|s| s.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" "))
        .collect();
    let expected: Vec<Value> = texts.iter().map(|t| offline_payload(&offline, t)).collect();
    let tokens: Vec<usize> = corpus.sentences.iter().map(|s| s.tokens.len()).collect();
    let workload = Workload { texts, expected, tokens };

    let reqs_per_thread = match scale {
        Scale::Full => 300,
        Scale::Quick => 30,
    };
    let rounds = match scale {
        Scale::Full => 3,
        Scale::Quick => 1,
    };

    let mut rows = Vec::new();
    for &max_batch in &[1usize, 8, 32] {
        for &client_threads in &[1usize, 4] {
            let (_, pipeline) = build();
            let row =
                run_cell(pipeline, &workload, max_batch, client_threads, reqs_per_thread, rounds);
            ner_obs::info(format!(
                "max_batch={} clients={}: {:.0} req/s, {:.0} tok/s (p50 {:.0}µs, p99 {:.0}µs, \
                 mean batch {:.1}, qwait {:.0}µs, compute/row {:.0}µs, {} divergences)",
                row.max_batch,
                row.client_threads,
                row.req_per_s,
                row.tokens_per_s,
                row.p50_us,
                row.p99_us,
                row.mean_batch,
                row.queue_wait_mean_us,
                row.compute_us_per_row,
                row.divergences
            ));
            rows.push(row);
        }
    }

    // Per-row compute efficiency: each cell against the `max_batch=1`
    // cell at the same client count. Computed as a post-pass so the
    // baseline row exists regardless of grid order.
    let baseline_compute: Vec<(usize, f64)> = rows
        .iter()
        .filter(|r| r.max_batch == 1)
        .map(|r| (r.client_threads, r.compute_us_per_row))
        .collect();
    for row in &mut rows {
        if let Some(&(_, base)) = baseline_compute.iter().find(|(ct, _)| *ct == row.client_threads)
        {
            if row.compute_us_per_row > 0.0 {
                row.batch_compute_efficiency = base / row.compute_us_per_row;
            }
        }
    }

    let req_per_s_at = |mb: usize, ct: usize| {
        rows.iter()
            .find(|r| r.max_batch == mb && r.client_threads == ct)
            .map_or(f64::NAN, |r| r.req_per_s)
    };
    let speedup = req_per_s_at(32, 4) / req_per_s_at(1, 4);
    let divergences: usize = rows.iter().map(|r| r.divergences).sum();

    print_table(
        "closed-loop serving throughput",
        &[
            "max_batch",
            "clients",
            "reqs",
            "req/s",
            "tok/s",
            "p50 µs",
            "p99 µs",
            "mean batch",
            "qwait µs",
            "compute µs/row",
            "eff/row",
            "diverged",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.max_batch.to_string(),
                    r.client_threads.to_string(),
                    r.requests.to_string(),
                    format!("{:.0}", r.req_per_s),
                    format!("{:.0}", r.tokens_per_s),
                    format!("{:.0}", r.p50_us),
                    format!("{:.0}", r.p99_us),
                    format!("{:.1}", r.mean_batch),
                    format!("{:.0}", r.queue_wait_mean_us),
                    format!("{:.0}", r.compute_us_per_row),
                    format!("{:.2}", r.batch_compute_efficiency),
                    r.divergences.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nreq/s speedup, max_batch=32 vs 1 at 4 clients: {speedup:.2}×");

    // Whole-run per-stage percentiles: the global histograms accumulated
    // over every cell, the same data request traces attribute from.
    let stage_percentiles: Vec<StageQuantiles> = [
        "serve.queue_wait_us",
        "infer.featurize_us",
        "infer.embed_us",
        "infer.encode_us",
        "infer.decode_us",
        "serve.request_us",
    ]
    .iter()
    .filter_map(|name| {
        ner_obs::histogram_summary(name).map(|h| StageQuantiles {
            stage: name.to_string(),
            count: h.count,
            p50_us: h.p50,
            p99_us: h.p99,
        })
    })
    .collect();
    println!("\nper-stage attribution over the whole run (p50 / p99 µs):");
    for s in &stage_percentiles {
        println!("  {:<22} {:>8.0} / {:>8.0}  (n={})", s.stage, s.p50_us, s.p99_us, s.count);
    }

    // The soak arc: latency under load, overload shedding, recovery,
    // reload and shutdown under live traffic.
    let (_, soak_pipeline) = build();
    let soak = run_soak(soak_pipeline, &workload, smoke);
    print_table(
        "latency under load (soak server: 2 replicas, 20ms/row, 150ms SLO)",
        &["clients", "req/s", "p50 µs", "p99 µs", "shed rate"],
        &soak
            .latency_curve
            .iter()
            .map(|p| {
                vec![
                    p.clients.to_string(),
                    format!("{:.0}", p.req_per_s),
                    format!("{:.0}", p.p50_us),
                    format!("{:.0}", p.p99_us),
                    format!("{:.2}", p.shed_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "soak arc: sustain -> overload -> recovery -> drain",
        &["phase", "clients", "s", "reqs", "ok", "429", "408", "503", "req/s", "p99 µs", "lost"],
        &soak
            .phases
            .iter()
            .map(|p| {
                vec![
                    p.phase.clone(),
                    p.clients.to_string(),
                    format!("{:.1}", p.seconds),
                    p.requests.to_string(),
                    p.ok.to_string(),
                    p.shed.to_string(),
                    p.expired.to_string(),
                    p.draining.to_string(),
                    format!("{:.0}", p.req_per_s),
                    format!("{:.0}", p.p99_us),
                    p.lost.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nsoak: overload shed then recovered = {}, reloads under load = {}, lost = {}, divergences = {}",
        soak.recovered, soak.reloads, soak.lost_total, soak.divergences
    );

    let report = Report {
        experiment: "exp_serving".into(),
        description: "Closed-loop load test of the ner-serve micro-batching server: req/s and latency percentiles over max_batch x client-thread grid, plus a soak harness (latency-under-load ladder, overload-and-recovery arc, reload and shutdown under live traffic); every response checked against offline extract".into(),
        seed: SEED,
        smoke,
        requested_threads,
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        batch32_speedup_at_4_clients: speedup,
        stage_percentiles,
        rows,
        soak,
        divergences,
    };
    let path = write_report("exp_serving", &report);
    let bench_json = serde_json::to_string_pretty(&report).expect("serialize BENCH report");
    std::fs::write("BENCH_serving.json", bench_json).expect("write BENCH_serving.json");
    println!("report: {} (+ BENCH_serving.json)", path.display());

    let mut failures = Vec::new();
    if report.divergences > 0 {
        failures.push(format!(
            "{} grid divergence(s); batched serving must match offline annotate",
            report.divergences
        ));
    }
    if report.soak.divergences > 0 {
        failures.push(format!("{} soak divergence(s) under load", report.soak.divergences));
    }
    if report.soak.lost_total > 0 {
        failures.push(format!(
            "{} malformed/truncated response(s) in the soak",
            report.soak.lost_total
        ));
    }
    if !report.soak.recovered {
        failures.push("soak did not show overload shedding followed by a clean recovery".into());
    }
    if report.soak.reloads == 0 {
        failures.push("mid-sustain reload did not complete".into());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}
