//! E-T2 — the analog of **Table 2** (off-the-shelf NER tools).
//!
//! The paper inventories ready-to-use NER systems; this library's
//! counterpart is its model zoo: named, ready-to-train configurations for
//! the survey's architecture families. Each row is instantiated (to count
//! parameters) against a small reference corpus.

use ner_bench::{init_harness, print_table, write_report, Scale};
use ner_core::model::NerModel;
use ner_core::repr::SentenceEncoder;
use ner_core::zoo::zoo;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: &'static str,
    reference: &'static str,
    signature: String,
    params: usize,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("table2", 17, scale);
    let mut rng = StdRng::seed_from_u64(17);
    let ds = NewsGenerator::new(GeneratorConfig::default()).dataset(&mut rng, scale.size(100));

    let mut rows = Vec::new();
    for entry in zoo() {
        let enc = SentenceEncoder::from_dataset(&ds, entry.config.scheme, 1);
        // Pretrained-word presets are instantiated with random tables here
        // (we only need shapes/counts for the inventory).
        let mut cfg = entry.config.clone();
        if matches!(cfg.word, ner_core::config::WordRepr::Pretrained { .. }) {
            cfg.word = ner_core::config::WordRepr::Random { dim: 32 };
        }
        let model = NerModel::new(cfg, &enc, None, &mut rng);
        rows.push(Row {
            name: entry.name,
            reference: entry.reference,
            signature: entry.config.signature(),
            params: model.num_params(),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.signature.clone(),
                format!("{}k", r.params / 1000),
                r.reference.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 2 analog — the neural-ner model zoo (off-the-shelf configurations)",
        &["Preset", "Architecture", "Params", "Survey reference"],
        &table,
    );
    let path = write_report("table2", &rows);
    println!("\nreport: {}", path.display());
}
