//! E-S51 — reproduces the **§5.1 informal-text and unseen-entity
//! challenges**: models that score ≈90%+ on formal news collapse on
//! user-generated text (the paper cites best F1 barely above 40% on
//! W-NUT-17), and recall on previously-unseen entities lags far behind
//! recall on seen surfaces.
//!
//! Conditions: train on clean news, evaluate on (a) clean news, (b) clean
//! news with unseen entities, (c) the W-NUT noise channel; then retrain
//! with in-domain noisy data added, the standard mitigation.

use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, train_model, write_report,
    Scale,
};
use ner_core::config::NerConfig;
use ner_core::metrics::seen_unseen_recall;
use ner_core::prelude::*;
use ner_corpus::noise::{corrupt_dataset, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    f1_formal: f64,
    f1_unseen: f64,
    f1_noisy: f64,
    f1_noisy_after_indomain: f64,
    seen_recall: f64,
    unseen_recall: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("informal", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);

    println!("training charCNN-BiLSTM-CRF on clean news ...");
    let (enc, model) = train_model(NerConfig::default(), &data.train, &tc, 91);

    let f1_formal = ner_bench::eval_on(&enc, &model, &data.test).micro.f1;
    let unseen_enc = enc.encode_dataset(&data.test_unseen, None);
    let f1_unseen = evaluate_model(&model, &unseen_enc).micro.f1;
    let f1_noisy = ner_bench::eval_on(&enc, &model, &data.test_noisy).micro.f1;

    // Seen/unseen recall split on the unseen-entity test set.
    let golds: Vec<_> = unseen_enc.iter().map(|e| e.gold.clone()).collect();
    let preds = predict_all(&model, &unseen_enc);
    let surfaces: Vec<_> = unseen_enc.iter().map(|e| e.gold_surfaces()).collect();
    let split = seen_unseen_recall(&golds, &preds, &surfaces, &data.train.entity_surfaces());

    // Mitigation: add in-domain noisy training data.
    println!("retraining with in-domain noisy data added ...");
    let mut rng = StdRng::seed_from_u64(92);
    let noisy_train = corrupt_dataset(
        &data.train.take(data.train.len() / 2),
        &NoiseModel::social_media(),
        &mut rng,
    );
    let combined = data.train.concat(&noisy_train);
    let (enc2, model2) = train_model(NerConfig::default(), &combined, &tc, 93);
    let f1_noisy2 = ner_bench::eval_on(&enc2, &model2, &data.test_noisy).micro.f1;

    print_table(
        "§5.1 — the formal/informal and seen/unseen gaps",
        &["Evaluation", "F1 / recall"],
        &[
            vec!["formal news (CoNLL analog)".into(), pct(f1_formal)],
            vec!["formal news, 40% unseen entities".into(), pct(f1_unseen)],
            vec!["user-generated noise channel (W-NUT analog)".into(), pct(f1_noisy)],
            vec!["  └ after adding in-domain noisy training".into(), pct(f1_noisy2)],
            vec!["recall on SEEN entity surfaces".into(), pct(split.seen_recall)],
            vec!["recall on UNSEEN entity surfaces".into(), pct(split.unseen_recall)],
        ],
    );
    println!("\nExpected shape (paper §5.1): formal ≫ noisy (≈90% vs ≈40% band); seen recall ≫");
    println!("unseen recall; in-domain data partially closes the informal gap.");
    let path = write_report(
        "informal",
        &Report {
            f1_formal,
            f1_unseen,
            f1_noisy,
            f1_noisy_after_indomain: f1_noisy2,
            seen_recall: split.seen_recall,
            unseen_recall: split.unseen_recall,
        },
    );
    println!("report: {}", path.display());
}
