//! E-S51n — reproduces the **nested-entity analysis** (§5.1 statistics,
//! §3.3.2 layered models of Ju et al.): a flat tag-sequence model is
//! structurally unable to emit overlapping mentions, so on a corpus with
//! GENIA/ACE-level nesting its recall against the full (all-layer) gold is
//! capped; stacking an inner-layer model on top recovers the nested
//! mentions.

use ner_bench::{harness_train_config, init_harness, pct, print_table, write_report, Scale};
use ner_core::config::{CharRepr, NerConfig, WordRepr};
use ner_core::nested::{evaluate_nested, flat_predictions, outer_layer, LayeredNer};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    nested_fraction: f64,
    flat_precision: f64,
    flat_recall: f64,
    flat_f1: f64,
    layered_precision: f64,
    layered_recall: f64,
    layered_f1: f64,
}

fn main() {
    let scale = Scale::from_args();
    init_harness("nested", 101, scale);
    let tc = harness_train_config(scale);
    let gen = NewsGenerator::new(GeneratorConfig {
        annotate_nested: true,
        institution_rate: 0.45,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(101);
    let train_ds = gen.dataset(&mut rng, scale.size(240));
    let test_ds = gen.dataset(&mut rng, scale.size(120));
    let stats = test_ds.stats();
    println!(
        "nested corpus: {} of test entities are nested (paper: 17% GENIA / 30% ACE sentences)",
        pct(stats.nested_fraction)
    );

    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 24 },
        char_repr: CharRepr::Cnn { dim: 12, filters: 12 },
        ..NerConfig::default()
    };

    println!("training the flat baseline (outermost annotations only) ...");
    let outer_ds = outer_layer(&train_ds);
    let enc = SentenceEncoder::from_dataset(&outer_ds, cfg.scheme, 1);
    let mut flat = NerModel::new(cfg.clone(), &enc, None, &mut rng);
    let outer_enc = enc.encode_dataset(&outer_ds, None);
    ner_core::trainer::train(&mut flat, &outer_enc, None, &tc, &mut rng);
    let flat_eval = evaluate_nested(&test_ds, &flat_predictions(&flat, &enc, &test_ds));

    println!("training the layered model (outer + inner flat layers) ...");
    let (layered, _, _) = LayeredNer::train(&cfg, &train_ds, None, &tc, &mut rng);
    let layered_eval = evaluate_nested(&test_ds, &layered.predict_dataset(&test_ds));

    print_table(
        "§5.1 — nested NER: flat vs layered against ALL gold layers",
        &["Model", "Precision", "Recall", "F1"],
        &[
            vec![
                "flat BiLSTM-CRF (outer only)".into(),
                pct(flat_eval.micro.precision),
                pct(flat_eval.micro.recall),
                pct(flat_eval.micro.f1),
            ],
            vec![
                "layered (Ju et al. style)".into(),
                pct(layered_eval.micro.precision),
                pct(layered_eval.micro.recall),
                pct(layered_eval.micro.f1),
            ],
        ],
    );
    println!(
        "\nFlat recall is structurally capped near {} (share of outermost entities);",
        pct(1.0 - stats.nested_fraction)
    );
    println!("the layered model recovers nested mentions and lifts recall past the cap.");
    let path = write_report(
        "nested",
        &Report {
            nested_fraction: stats.nested_fraction,
            flat_precision: flat_eval.micro.precision,
            flat_recall: flat_eval.micro.recall,
            flat_f1: flat_eval.micro.f1,
            layered_precision: layered_eval.micro.precision,
            layered_recall: layered_eval.micro.recall,
            layered_f1: layered_eval.micro.f1,
        },
    );
    println!("report: {}", path.display());
}
