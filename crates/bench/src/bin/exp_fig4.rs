//! E-F4 — reproduces **Fig. 4** (contextual string embeddings, Akbik et al.).
//!
//! Two demonstrations:
//! 1. the *polysemy property*: the same surface form ("Washington"-style
//!    ambiguous tokens from our lexicons, e.g. "Jordan" the person vs
//!    "Jordan" the country) receives different vectors in different
//!    contexts, and the vectors cluster by role;
//! 2. the downstream effect: appending char-LM embeddings to a BiLSTM-CRF
//!    lifts F1, especially on unseen entities.

use ner_bench::{
    harness_train_config, init_harness, pct, print_table, standard_data, write_report, Scale,
};
use ner_core::config::{CharRepr, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_embed::charlm::{CharLm, CharLmConfig};
use ner_embed::{cosine, ContextualEmbedder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    same_word_cross_context_cosine: f32,
    same_role_cosine: f32,
    f1_unseen_without_lm: f64,
    f1_unseen_with_lm: f64,
}

fn tokens(words: &[&str]) -> Vec<String> {
    words.iter().map(|w| w.to_string()).collect()
}

fn main() {
    let scale = Scale::from_args();
    init_harness("fig4", 42, scale);
    let data = standard_data(42, scale);
    let tc = harness_train_config(scale);
    let mut rng = StdRng::seed_from_u64(9);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let lm_corpus = gen.lm_sentences(&mut rng, scale.size(900));
    println!("pretraining char-LM on {} sentences ...", lm_corpus.len());
    let (charlm, nll) = CharLm::train(
        &lm_corpus,
        &CharLmConfig { hidden: 48, dim: 24, epochs: scale.epochs(3), ..Default::default() },
        &mut rng,
    );
    println!("char-LM per-epoch NLL/char: {nll:?}");

    // --- Polysemy probe: "Jordan" as PERSON vs as COUNTRY context. ---
    let per_ctx_a = charlm.embed(&tokens(&["Jordan", "scored", "44", "points", "yesterday", "."]));
    let per_ctx_b =
        charlm.embed(&tokens(&["Jordan", "told", "reporters", "the", "talks", "failed", "."]));
    let loc_ctx =
        charlm.embed(&tokens(&["officials", "arrived", "in", "Jordan", "on", "Monday", "."]));
    let same_word_cross = cosine(&per_ctx_a[0], &loc_ctx[3]);
    let same_role = cosine(&per_ctx_a[0], &per_ctx_b[0]);
    println!("\ncos(Jordan|PER-ctx, Jordan|PER-ctx') = {same_role:.3}");
    println!("cos(Jordan|PER-ctx, Jordan|LOC-ctx)  = {same_word_cross:.3}");

    // --- Downstream: BiLSTM-CRF ± contextual string embeddings. ---
    let encoder = SentenceEncoder::from_dataset(&data.train, TagScheme::Bioes, 1);
    let base_cfg = NerConfig {
        word: WordRepr::Random { dim: 32 },
        char_repr: CharRepr::None,
        ..NerConfig::default()
    };

    let mut rng2 = StdRng::seed_from_u64(10);
    let mut base = NerModel::new(base_cfg.clone(), &encoder, None, &mut rng2);
    let train_plain = encoder.encode_dataset(&data.train, None);
    ner_core::trainer::train(&mut base, &train_plain, None, &tc, &mut rng2);
    let unseen_plain = encoder.encode_dataset(&data.test_unseen, None);
    let f1_base = evaluate_model(&base, &unseen_plain).micro.f1;

    let lm_cfg = NerConfig { context_dim: charlm.dim(), ..base_cfg };
    let mut rng3 = StdRng::seed_from_u64(10);
    let mut with_lm = NerModel::new(lm_cfg, &encoder, None, &mut rng3);
    let train_ctx = encoder.encode_dataset(&data.train, Some(&charlm));
    ner_core::trainer::train(&mut with_lm, &train_ctx, None, &tc, &mut rng3);
    let unseen_ctx = encoder.encode_dataset(&data.test_unseen, Some(&charlm));
    let f1_lm = evaluate_model(&with_lm, &unseen_ctx).micro.f1;

    print_table(
        "Fig. 4 — contextual string embeddings",
        &["Configuration", "F1 (unseen entities)"],
        &[
            vec!["word + BiLSTM + CRF".into(), pct(f1_base)],
            vec!["word + contextual string emb + BiLSTM + CRF".into(), pct(f1_lm)],
        ],
    );
    println!("\nExpected shape (paper): contextualized embeddings of the same word differ across");
    println!("contexts (cross-context cosine < same-role cosine) and lift downstream F1.");

    let path = write_report(
        "fig4",
        &Report {
            same_word_cross_context_cosine: same_word_cross,
            same_role_cosine: same_role,
            f1_unseen_without_lm: f1_base,
            f1_unseen_with_lm: f1_lm,
        },
    );
    println!("report: {}", path.display());
}
