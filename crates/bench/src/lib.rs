//! # ner-bench — experiment harnesses for `neural-ner`
//!
//! One binary per table/figure of the survey (see DESIGN.md §3 for the
//! index and EXPERIMENTS.md for paper-vs-measured results), plus Criterion
//! micro-benchmarks. This library holds the shared experimental setup so
//! every harness runs on identical data splits.

#![warn(missing_docs)]

use ner_core::prelude::*;
use ner_corpus::noise::{corrupt_dataset, NoiseModel};
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Run identity registered by [`init_harness`], consumed by [`write_report`]
/// to stamp the run manifest.
struct RunInfo {
    name: String,
    seed: u64,
    scale: Scale,
}

static RUN: Mutex<Option<RunInfo>> = Mutex::new(None);

/// Standard harness prologue: installs the observability layer from the
/// process arguments and environment (`--log-json <path>`, `--verbosity
/// <level>`, `NER_LOG_JSON`, `NER_VERBOSITY`) and records the run identity
/// so [`write_report`] can emit a manifest alongside the results.
pub fn init_harness(name: &str, seed: u64, scale: Scale) {
    ner_obs::init_from_process_args();
    *RUN.lock().expect("run info lock") = Some(RunInfo { name: name.to_string(), seed, scale });
    ner_obs::info(format!("harness {name}: seed={seed} scale={scale:?}"));
}

/// The standard experimental split shared by all harnesses.
pub struct ExperimentData {
    /// Clean news training set.
    pub train: Dataset,
    /// Clean news dev set.
    pub dev: Dataset,
    /// Clean in-distribution test set.
    pub test: Dataset,
    /// Test set with 40% held-out (unseen) entity surfaces — the harder
    /// evaluation that differentiates architectures (paper §5.1).
    pub test_unseen: Dataset,
    /// The unseen-entity test set passed through the W-NUT noise channel.
    pub test_noisy: Dataset,
}

/// Sizing knob: `full` is the default for harness binaries; `quick` keeps
/// CI/test runs fast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Full experiment scale.
    Full,
    /// Reduced scale for smoke tests (`--quick`).
    Quick,
}

impl Scale {
    /// Reads `--quick` from the process arguments.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Scales a size down in quick mode.
    pub fn size(&self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 4).max(10),
        }
    }

    /// Scales an epoch count down in quick mode.
    pub fn epochs(&self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 2).max(2),
        }
    }
}

/// Builds the standard split deterministically from a seed.
pub fn standard_data(seed: u64, scale: Scale) -> ExperimentData {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let unseen = NewsGenerator::new(GeneratorConfig {
        unseen_entity_rate: 0.4,
        ..GeneratorConfig::default()
    });
    let train = gen.dataset(&mut rng, scale.size(240));
    let dev = gen.dataset(&mut rng, scale.size(80));
    let test = gen.dataset(&mut rng, scale.size(150));
    let test_unseen = unseen.dataset(&mut rng, scale.size(150));
    let test_noisy = corrupt_dataset(&test_unseen, &NoiseModel::social_media(), &mut rng);
    ExperimentData { train, dev, test, test_unseen, test_noisy }
}

/// The default training configuration for harnesses.
pub fn harness_train_config(scale: Scale) -> TrainConfig {
    TrainConfig { epochs: scale.epochs(10), patience: None, ..TrainConfig::default() }
}

/// Trains `cfg` on `train` and returns the model plus its encoder.
pub fn train_model(
    cfg: NerConfig,
    train: &Dataset,
    tc: &TrainConfig,
    seed: u64,
) -> (SentenceEncoder, NerModel) {
    let mut rng = StdRng::seed_from_u64(seed);
    let encoder = SentenceEncoder::from_dataset(train, cfg.scheme, 1);
    let mut model = NerModel::new(cfg, &encoder, None, &mut rng);
    let encoded = encoder.encode_dataset(train, None);
    ner_core::trainer::train(&mut model, &encoded, None, tc, &mut rng);
    (encoder, model)
}

/// Evaluates a trained model on a dataset via its encoder.
pub fn eval_on(encoder: &SentenceEncoder, model: &NerModel, ds: &Dataset) -> EvalResult {
    let encoded = encoder.encode_dataset(ds, None);
    evaluate_model(model, &encoded)
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        let mut parts = Vec::new();
        for (w, c) in widths.iter().zip(cells) {
            parts.push(format!("{c:<w$}"));
        }
        writeln!(out, "| {} |", parts.join(" | ")).expect("write to String");
    };
    line(&mut out, &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&mut out, &sep);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Prints a table with a title banner.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    print!("{}", render_table(headers, rows));
}

/// Formats a fraction as a percent with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Writes a JSON report next to the experiment outputs (`results/`),
/// creating the directory on demand. Returns the path written.
///
/// When the harness went through [`init_harness`], a run manifest (seed,
/// config signature, wall clock, peak tape nodes, flattened final metrics)
/// is written to `results/<name>.manifest.json`, emitted to any installed
/// sinks, and the observability layer is drained via [`ner_obs::finish`].
pub fn write_report<T: Serialize>(name: &str, value: &T) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    if let Some(manifest) = build_manifest(name, value) {
        let mjson = serde_json::to_string_pretty(&manifest).expect("serialize manifest");
        std::fs::write(dir.join(format!("{name}.manifest.json")), mjson).expect("write manifest");
        ner_obs::emit_manifest(&manifest);
        ner_obs::finish();
    }
    path
}

/// Builds the run manifest for a report, or `None` when [`init_harness`]
/// was never called (library tests, ad-hoc binaries).
fn build_manifest<T: Serialize>(name: &str, value: &T) -> Option<ner_obs::RunManifest> {
    let run = RUN.lock().expect("run info lock");
    let run = run.as_ref()?;
    let mut final_metrics = Vec::new();
    numeric_leaves("", &value.serialize(), &mut final_metrics);
    Some(ner_obs::RunManifest {
        name: name.to_string(),
        version: env!("CARGO_PKG_VERSION").to_string(),
        seed: run.seed,
        config_signature: format!("{}:seed={}:{:?}", run.name, run.seed, run.scale),
        wall_clock_secs: ner_obs::elapsed_secs(),
        peak_tape_nodes: ner_obs::gauge_value("tape.peak_nodes").unwrap_or(0.0) as u64,
        kernel_backend: ner_tensor::simd::descriptor(),
        final_metrics,
    })
}

/// Collects every numeric leaf of a serialized report as a dotted-path
/// metric, so manifests stay comparable across heterogeneous report shapes.
fn numeric_leaves(prefix: &str, v: &serde::Value, out: &mut Vec<(String, f64)>) {
    match v {
        serde::Value::Num(n) => out.push((prefix.to_string(), *n)),
        serde::Value::Object(fields) => {
            for (k, val) in fields {
                let p = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                numeric_leaves(&p, val, out);
            }
        }
        serde::Value::Array(items) => {
            for (i, val) in items.iter().enumerate() {
                numeric_leaves(&format!("{prefix}[{i}]"), val, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_data_is_deterministic_and_disjointly_noisy() {
        let a = standard_data(7, Scale::Quick);
        let b = standard_data(7, Scale::Quick);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test_noisy, b.test_noisy);
        assert_ne!(a.test_unseen, a.test_noisy, "noise channel must change text");
    }

    #[test]
    fn scale_reduces_sizes() {
        assert_eq!(Scale::Quick.size(240), 60);
        assert_eq!(Scale::Full.size(240), 240);
        assert!(Scale::Quick.epochs(10) < Scale::Full.epochs(10));
    }

    #[test]
    fn table_rendering_aligns() {
        let s = render_table(
            &["arch", "F1"],
            &[vec!["a".into(), "0.9".into()], vec!["longer-name".into(), "0.85".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "rows must align");
    }

    #[test]
    fn quick_end_to_end_through_helpers() {
        let data = standard_data(3, Scale::Quick);
        let tc = TrainConfig { epochs: 3, patience: None, ..Default::default() };
        let (enc, model) = train_model(NerConfig::default(), &data.train, &tc, 1);
        let clean = eval_on(&enc, &model, &data.test);
        let noisy = eval_on(&enc, &model, &data.test_noisy);
        assert!(
            clean.micro.f1 > noisy.micro.f1,
            "noise must hurt: {} vs {}",
            clean.micro.f1,
            noisy.micro.f1
        );
    }
}
