//! E-F6 / E-S35 timing side — context-encoder inference cost.
//!
//! Reproduces the wall-clock claims of the survey:
//! * Fig. 6: ID-CNN test-time speedup over BiLSTM (the paper reports 14–20×
//!   with GPU batch parallelism; the CPU trend — ID-CNN faster, gap growing
//!   with length — is the reproducible shape);
//! * §3.5: self-attention O(n²·d) vs recurrent O(n·d²) — the Transformer is
//!   cheaper than the BiLSTM for short sentences and loses at long ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ner_core::config::EncoderKind;
use ner_core::encoder::Encoder;
use ner_tensor::{init, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const DIM: usize = 48;

fn encoders() -> Vec<(&'static str, EncoderKind)> {
    vec![
        ("bilstm", EncoderKind::Lstm { hidden: DIM, bidirectional: true, layers: 1 }),
        (
            "idcnn",
            EncoderKind::IdCnn { filters: DIM, width: 3, dilations: vec![1, 2, 4], iterations: 2 },
        ),
        ("cnn", EncoderKind::Cnn { filters: DIM, layers: 2, width: 3, global: false }),
        ("transformer", EncoderKind::Transformer { d_model: DIM, heads: 4, layers: 2, d_ff: 96 }),
        ("bigru", EncoderKind::Gru { hidden: DIM, bidirectional: true }),
    ]
}

fn bench_encoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_forward");
    let mut rng = StdRng::seed_from_u64(7);
    for (name, kind) in encoders() {
        let mut store = ParamStore::new();
        let enc = Encoder::new(&mut store, &mut rng, "enc", DIM, &kind);
        for &len in &[10usize, 40, 160] {
            let x = init::uniform(&mut rng, len, DIM, 1.0);
            group.bench_with_input(BenchmarkId::new(name, len), &len, |bench, _| {
                bench.iter(|| {
                    let mut tape = Tape::new();
                    let xv = tape.constant(x.clone());
                    black_box(enc.forward(&mut tape, &store, xv))
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encoders
}
criterion_main!(benches);
