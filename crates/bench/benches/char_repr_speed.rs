//! Character-representation cost (Fig. 3 ablation, timing side): the
//! char-CNN (Fig. 3a) parallelizes over a word's characters, while the
//! char-BiLSTM (Fig. 3b) is sequential — the same parallel-vs-recurrent
//! trade-off as the sentence-level encoders, one level down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ner_tensor::nn::{Embedding, LstmCell};
use ner_tensor::{init, ParamStore, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const CHAR_VOCAB: usize = 60;
const CHAR_DIM: usize = 16;
const OUT: usize = 16;

fn bench_char_reprs(c: &mut Criterion) {
    let mut group = c.benchmark_group("char_repr_per_word");
    let mut rng = StdRng::seed_from_u64(9);

    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, &mut rng, "emb", CHAR_VOCAB, CHAR_DIM);
    let conv_w = store.register("conv.w", init::he(&mut rng, 3 * CHAR_DIM, OUT));
    let conv_b = store.register("conv.b", Tensor::zeros(1, OUT));
    let fw = LstmCell::new(&mut store, &mut rng, "fw", CHAR_DIM, OUT / 2);
    let bw = LstmCell::new(&mut store, &mut rng, "bw", CHAR_DIM, OUT / 2);

    for &word_len in &[4usize, 10, 20] {
        let chars: Vec<usize> = (0..word_len).map(|i| 2 + (i % (CHAR_VOCAB - 2))).collect();
        group.bench_with_input(BenchmarkId::new("cnn_maxpool", word_len), &word_len, |bench, _| {
            bench.iter(|| {
                let mut tape = Tape::new();
                let x = emb.lookup(&mut tape, &store, &chars);
                let w = tape.param(&store, conv_w);
                let b = tape.param(&store, conv_b);
                let conv = tape.conv1d(x, w, b, 3, 1);
                let r = tape.relu(conv);
                black_box(tape.max_over_rows(r))
            })
        });
        group.bench_with_input(BenchmarkId::new("bilstm_ends", word_len), &word_len, |bench, _| {
            bench.iter(|| {
                let mut tape = Tape::new();
                let x = emb.lookup(&mut tape, &store, &chars);
                let f = fw.sequence(&mut tape, &store, x);
                let n = word_len;
                let f_last = tape.row(f, n - 1);
                let b = bw.sequence_rev(&mut tape, &store, x);
                let b_first = tape.row(b, 0);
                black_box(tape.concat_cols(&[f_last, b_first]))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_char_reprs
}
criterion_main!(benches);
