//! Micro-benchmarks of the tensor substrate's hot kernels: matmul
//! (plain + fused transpose), 1-D (dilated) convolution, softmax family and
//! a full LSTM sequence pass. These are the inner loops every experiment in
//! this workspace spends its time in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ner_tensor::nn::LstmCell;
use ner_tensor::{init, ParamStore, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[16usize, 64, 128] {
        let a = init::uniform(&mut rng, n, n, 1.0);
        let b = init::uniform(&mut rng, n, n, 1.0);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("nt_fused", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_nt(&b)))
        });
        group.bench_with_input(BenchmarkId::new("tn_fused", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_tn(&b)))
        });
    }
    group.finish();
}

fn bench_conv_and_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops");
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::uniform(&mut rng, 40, 48, 1.0);
    let w = init::uniform(&mut rng, 3 * 48, 48, 0.2);
    let bias = Tensor::zeros(1, 48);
    for &dilation in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("conv1d_40x48", dilation),
            &dilation,
            |bench, &d| {
                bench.iter(|| {
                    let mut tape = Tape::new();
                    let xv = tape.constant(x.clone());
                    let wv = tape.constant(w.clone());
                    let bv = tape.constant(bias.clone());
                    black_box(tape.conv1d(xv, wv, bv, 3, d))
                })
            },
        );
    }
    group.bench_function("log_softmax_40x20", |bench| {
        let logits = init::uniform(&mut rng, 40, 20, 2.0);
        bench.iter(|| {
            let mut tape = Tape::new();
            let l = tape.constant(logits.clone());
            black_box(tape.log_softmax_rows(l))
        })
    });
    group.finish();
}

fn bench_lstm_and_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm");
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, &mut rng, "cell", 48, 48);
    let xs = init::uniform(&mut rng, 20, 48, 1.0);
    group.bench_function("forward_20x48", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let x = tape.constant(xs.clone());
            black_box(cell.sequence(&mut tape, &store, x))
        })
    });
    group.bench_function("forward_backward_20x48", |bench| {
        bench.iter(|| {
            let mut store = store.clone();
            let mut tape = Tape::new();
            let x = tape.constant(xs.clone());
            let h = cell.sequence(&mut tape, &store, x);
            let loss = tape.sum(h);
            tape.backward(loss, &mut store);
            black_box(store.grad_global_norm())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_matmul, bench_conv_and_softmax, bench_lstm_and_backward
}
criterion_main!(benches);
