//! Decoder-cost micro-benchmarks (paper §3.5's decoder discussion):
//! CRF Viterbi cost grows with the square of the tag-set size (the paper's
//! "CRF could be computationally expensive when the number of entity types
//! is large"), while greedy softmax decoding is linear; the greedy RNN
//! decoder pays the serialization cost of a graph per step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ner_core::decoder::{Crf, RnnDecoder};
use ner_tensor::{init, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const LEN: usize = 20;

fn bench_crf_viterbi(c: &mut Criterion) {
    let mut group = c.benchmark_group("crf_viterbi_by_tagset");
    let mut rng = StdRng::seed_from_u64(5);
    // 4 coarse types ≈ CoNLL (BIO → 9 tags); 18 ≈ OntoNotes (37); 64 ≈ BBN (129).
    for &k in &[9usize, 37, 129] {
        let mut store = ParamStore::new();
        let crf = Crf::new(&mut store, &mut rng, "crf", k);
        let emissions = init::uniform(&mut rng, LEN, k, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| black_box(crf.viterbi(&store, &emissions, None)))
        });
    }
    group.finish();
}

fn bench_crf_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("crf_nll_by_tagset");
    let mut rng = StdRng::seed_from_u64(6);
    for &k in &[9usize, 37] {
        let mut store = ParamStore::new();
        let crf = Crf::new(&mut store, &mut rng, "crf", k);
        let emissions = init::uniform(&mut rng, LEN, k, 1.0);
        let tags: Vec<usize> = (0..LEN).map(|t| t % k).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| {
                let mut store = store.clone();
                let mut tape = Tape::new();
                let e = tape.constant(emissions.clone());
                let nll = crf.nll(&mut tape, &store, e, &tags);
                tape.backward(nll, &mut store);
                black_box(store.grad_global_norm())
            })
        });
    }
    group.finish();
}

fn bench_greedy_decoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_decoders");
    let mut rng = StdRng::seed_from_u64(7);
    let k = 9;
    let mut store = ParamStore::new();
    let dec = RnnDecoder::new(&mut store, &mut rng, "dec", 48, 8, 32, k);
    let enc_states = init::uniform(&mut rng, LEN, 48, 1.0);
    group.bench_function("rnn_decoder_20x48", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let e = tape.constant(enc_states.clone());
            black_box(dec.decode(&mut tape, &store, e))
        })
    });
    // Softmax "decode" = row-wise argmax over emissions, the O(n·k) floor.
    let emissions = init::uniform(&mut rng, LEN, k, 1.0);
    group.bench_function("softmax_argmax_20x9", |bench| {
        bench.iter(|| {
            let tags: Vec<usize> = (0..LEN).map(|r| emissions.argmax_row(r)).collect();
            black_box(tags)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_crf_viterbi, bench_crf_loss, bench_greedy_decoders
}
criterion_main!(benches);
