//! End-to-end tests over a real socket: batched serving must be
//! byte-identical to offline annotation, overload must shed load without
//! taking the server down, and a hot reload must lose no in-flight
//! request.

use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
use ner_core::model::NerModel;
use ner_core::persist::Checkpoint;
use ner_core::prelude::NerPipeline;
use ner_core::repr::SentenceEncoder;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_serve::client;
use ner_serve::{ServeConfig, ServeState, Server};
use ner_text::TagScheme;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn tiny_pipeline() -> NerPipeline {
    let mut rng = StdRng::seed_from_u64(11);
    let ds = NewsGenerator::new(GeneratorConfig::default()).dataset(&mut rng, 40);
    let encoder = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 8 },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Lstm { hidden: 8, bidirectional: true, layers: 1 },
        decoder: DecoderKind::Crf,
        dropout: 0.0,
        ..NerConfig::default()
    };
    let model = NerModel::new(cfg, &encoder, None, &mut rng);
    NerPipeline::new(encoder, model)
}

/// Starts a server on an ephemeral port; returns its address, state, and
/// the thread to join after shutdown.
fn start_server(
    cfg: ServeConfig,
    ckpt_path: Option<std::path::PathBuf>,
) -> (SocketAddr, Arc<ServeState>, std::thread::JoinHandle<()>) {
    let state = ServeState::new(tiny_pipeline(), ckpt_path, cfg);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&state)).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, state, handle)
}

fn stop_server(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let resp = client::post(addr, "/admin/shutdown", "").expect("shutdown request");
    assert_eq!(resp.status, 200);
    handle.join().expect("server thread");
}

/// The serialized form the server sends for one sentence — built from the
/// offline pipeline so equality is checked on the exact wire payload.
fn offline_payload(pipeline: &NerPipeline, text: &str) -> Value {
    let s = pipeline.extract(text);
    let entities = s
        .entities
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("start".into(), Value::Num(e.start as f64)),
                ("end".into(), Value::Num(e.end as f64)),
                ("label".into(), Value::Str(e.label.clone())),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "tokens".into(),
            Value::Array(s.tokens.iter().map(|t| Value::Str(t.text.clone())).collect()),
        ),
        ("entities".into(), Value::Array(entities)),
        ("render".into(), Value::Str(s.render_brackets())),
    ])
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[test]
fn concurrent_batched_responses_match_offline_annotate() {
    let cfg = ServeConfig {
        max_batch: 16,
        max_wait: Duration::from_micros(500),
        ..ServeConfig::default()
    };
    let (addr, state, handle) = start_server(cfg, None);
    let offline = state.pipeline();

    let texts: Vec<String> = (0..24)
        .map(|i| format!("Alice Smith flew to Paris with delegation number {i} yesterday ."))
        .collect();
    let results: Vec<(String, Value)> = std::thread::scope(|scope| {
        let workers: Vec<_> = texts
            .chunks(6)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut conn = client::Conn::connect(addr).expect("connect");
                    chunk
                        .iter()
                        .map(|text| {
                            let body = format!("{{\"text\": \"{}\"}}", json_escape(text));
                            let resp = conn.post("/v1/extract", &body).expect("extract");
                            assert_eq!(resp.status, 200, "body: {}", resp.body);
                            let parsed: Value =
                                serde_json::from_str(&resp.body).expect("response json");
                            (text.clone(), parsed)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers.into_iter().flat_map(|w| w.join().expect("client thread")).collect()
    });
    for (text, served) in &results {
        assert_eq!(
            *served,
            offline_payload(&offline, text),
            "served response diverged from offline extract for {text:?}"
        );
    }

    // The batch endpoint returns the same payloads, in request order.
    let mut conn = client::Conn::connect(addr).expect("connect");
    let batch_body = format!(
        "{{\"texts\": [{}]}}",
        texts
            .iter()
            .take(5)
            .map(|t| format!("\"{}\"", json_escape(t)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let resp = conn.post("/v1/extract_batch", &batch_body).expect("extract_batch");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let parsed: Value = serde_json::from_str(&resp.body).expect("batch json");
    let results = parsed.get("results").and_then(|r| r.as_array()).expect("results array");
    assert_eq!(results.len(), 5);
    for (text, served) in texts.iter().take(5).zip(results) {
        assert_eq!(*served, offline_payload(&offline, text));
    }

    stop_server(addr, handle);
}

#[test]
fn overflow_sheds_load_with_429_and_keeps_serving() {
    // A deliberately tiny queue and slow scoring: most of a burst must be
    // rejected, but the server itself must stay responsive throughout.
    let cfg = ServeConfig {
        max_batch: 1,
        queue_cap: 2,
        score_delay: Duration::from_millis(120),
        ..ServeConfig::default()
    };
    let (addr, _state, handle) = start_server(cfg, None);

    let (oks, rejected) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..12)
            .map(|i| {
                scope.spawn(move || {
                    let body = format!("{{\"text\": \"burst request number {i} .\"}}");
                    let resp = client::post(addr, "/v1/extract", &body).expect("request");
                    resp.status
                })
            })
            .collect();
        // While the burst is in flight, liveness must not degrade.
        let health = client::get(addr, "/healthz").expect("healthz during burst");
        assert_eq!(health.status, 200);
        let mut oks = 0;
        let mut rejected = 0;
        for w in workers {
            match w.join().expect("client thread") {
                200 => oks += 1,
                429 => rejected += 1,
                other => panic!("unexpected status {other} during overload"),
            }
        }
        (oks, rejected)
    });
    assert!(oks >= 1, "some of the burst must be served");
    assert!(rejected >= 1, "a 2-slot queue must shed most of a 12-request burst");

    // Shed load is advisory: the client that retries after the burst wins.
    let resp = client::post(addr, "/v1/extract", "{\"text\": \"after the storm .\"}")
        .expect("post-burst request");
    assert_eq!(resp.status, 200);
    // And the 429s told it when to come back.
    stop_server(addr, handle);
}

#[test]
fn reload_mid_traffic_loses_no_requests() {
    let ckpt_path =
        std::env::temp_dir().join(format!("ner-serve-reload-test-{}.json", std::process::id()));
    // The checkpoint on disk is captured from an identical pipeline, so
    // predictions stay comparable across the swap.
    Checkpoint::capture(&tiny_pipeline()).save(&ckpt_path).expect("save checkpoint");

    let cfg = ServeConfig { max_batch: 8, ..ServeConfig::default() };
    let (addr, state, handle) = start_server(cfg, Some(ckpt_path.clone()));
    let offline = state.pipeline();

    let reload_status = std::thread::scope(|scope| {
        let traffic: Vec<_> = (0..4)
            .map(|worker| {
                let offline = &offline;
                scope.spawn(move || {
                    let mut conn = client::Conn::connect(addr).expect("connect");
                    for i in 0..25 {
                        let text = format!("Bob Jones works in London office {worker}-{i} .");
                        let body = format!("{{\"text\": \"{text}\"}}");
                        let resp = conn.post("/v1/extract", &body).expect("extract");
                        assert_eq!(
                            resp.status, 200,
                            "request {worker}-{i} dropped during reload: {}",
                            resp.body
                        );
                        let parsed: Value = serde_json::from_str(&resp.body).expect("json");
                        assert_eq!(parsed, offline_payload(offline, &text));
                    }
                })
            })
            .collect();
        // Fire the reload while the traffic threads are mid-stream.
        std::thread::sleep(Duration::from_millis(30));
        let resp = client::post(addr, "/admin/reload", "").expect("reload");
        for t in traffic {
            t.join().expect("traffic thread");
        }
        resp.status
    });
    assert_eq!(reload_status, 200, "reload must succeed");
    assert_eq!(state.reload_count(), 1);

    // The reloaded model keeps serving.
    let resp = client::post(addr, "/v1/extract", "{\"text\": \"Carol visited Berlin .\"}")
        .expect("post-reload request");
    assert_eq!(resp.status, 200);

    stop_server(addr, handle);
    let _ = std::fs::remove_file(ckpt_path);
}

#[test]
fn health_metrics_and_errors_speak_http() {
    let (addr, _state, handle) = start_server(ServeConfig::default(), None);

    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let parsed: Value = serde_json::from_str(&health.body).expect("health json");
    assert_eq!(parsed.get("status").and_then(|s| s.as_str()), Some("ok"));

    // Generate some traffic so the serving histograms exist.
    let resp = client::post(addr, "/v1/extract", "{\"text\": \"Dana met Erik in Oslo .\"}")
        .expect("extract");
    assert_eq!(resp.status, 200);
    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("serve.batch_size"), "metrics:\n{}", metrics.body);
    assert!(metrics.body.contains("serve.request_us"), "metrics:\n{}", metrics.body);
    // The queue depth must be exported as a *gauge* (current depth), not a
    // histogram of past depths.
    assert!(metrics.body.contains("gauge serve.queue_depth"), "metrics:\n{}", metrics.body);

    // Error surfaces: bad JSON, wrong method, unknown route, no reload path.
    let bad = client::post(addr, "/v1/extract", "{not json").expect("bad body");
    assert_eq!(bad.status, 400);
    let wrong = client::get(addr, "/v1/extract").expect("wrong method");
    assert_eq!(wrong.status, 405);
    let missing = client::get(addr, "/nope").expect("unknown route");
    assert_eq!(missing.status, 404);
    let reload = client::post(addr, "/admin/reload", "").expect("reload without path");
    assert_eq!(reload.status, 500);

    stop_server(addr, handle);
}
