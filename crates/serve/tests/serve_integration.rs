//! End-to-end tests over a real socket: batched serving must be
//! byte-identical to offline annotation, overload must shed load without
//! taking the server down, a hot reload must lose no in-flight request,
//! and the poll loop must survive hostile clients — slowloris heads,
//! dribbled bodies, disconnects while queued, shutdown racing traffic.

use std::io::{BufRead, BufReader, Read, Write};

use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
use ner_core::model::NerModel;
use ner_core::persist::Checkpoint;
use ner_core::prelude::NerPipeline;
use ner_core::repr::SentenceEncoder;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_serve::client;
use ner_serve::{ServeConfig, ServeState, Server};
use ner_text::TagScheme;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn tiny_pipeline() -> NerPipeline {
    tiny_pipeline_seeded(11)
}

fn tiny_pipeline_seeded(seed: u64) -> NerPipeline {
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = NewsGenerator::new(GeneratorConfig::default()).dataset(&mut rng, 40);
    let encoder = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 8 },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Lstm { hidden: 8, bidirectional: true, layers: 1 },
        decoder: DecoderKind::Crf,
        dropout: 0.0,
        ..NerConfig::default()
    };
    let model = NerModel::new(cfg, &encoder, None, &mut rng);
    NerPipeline::new(encoder, model)
}

/// Starts a server on an ephemeral port; returns its address, state, and
/// the thread to join after shutdown.
fn start_server(
    cfg: ServeConfig,
    ckpt_path: Option<std::path::PathBuf>,
) -> (SocketAddr, Arc<ServeState>, std::thread::JoinHandle<()>) {
    let state = ServeState::new(tiny_pipeline(), ckpt_path, cfg);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&state)).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, state, handle)
}

fn stop_server(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let resp = client::post(addr, "/admin/shutdown", "").expect("shutdown request");
    assert_eq!(resp.status, 200);
    handle.join().expect("server thread");
}

/// The serialized form the server sends for one sentence — built from the
/// offline pipeline so equality is checked on the exact wire payload.
fn offline_payload(pipeline: &NerPipeline, text: &str) -> Value {
    let s = pipeline.extract(text);
    let entities = s
        .entities
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("start".into(), Value::Num(e.start as f64)),
                ("end".into(), Value::Num(e.end as f64)),
                ("label".into(), Value::Str(e.label.clone())),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "tokens".into(),
            Value::Array(s.tokens.iter().map(|t| Value::Str(t.text.clone())).collect()),
        ),
        ("entities".into(), Value::Array(entities)),
        ("render".into(), Value::Str(s.render_brackets())),
    ])
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[test]
fn concurrent_batched_responses_match_offline_annotate() {
    let cfg = ServeConfig {
        max_batch: 16,
        max_wait: Duration::from_micros(500),
        ..ServeConfig::default()
    };
    let (addr, state, handle) = start_server(cfg, None);
    let offline = state.pipeline();

    let texts: Vec<String> = (0..24)
        .map(|i| format!("Alice Smith flew to Paris with delegation number {i} yesterday ."))
        .collect();
    let results: Vec<(String, Value)> = std::thread::scope(|scope| {
        let workers: Vec<_> = texts
            .chunks(6)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut conn = client::Conn::connect(addr).expect("connect");
                    chunk
                        .iter()
                        .map(|text| {
                            let body = format!("{{\"text\": \"{}\"}}", json_escape(text));
                            let resp = conn.post("/v1/extract", &body).expect("extract");
                            assert_eq!(resp.status, 200, "body: {}", resp.body);
                            let parsed: Value =
                                serde_json::from_str(&resp.body).expect("response json");
                            (text.clone(), parsed)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers.into_iter().flat_map(|w| w.join().expect("client thread")).collect()
    });
    for (text, served) in &results {
        assert_eq!(
            *served,
            offline_payload(&offline, text),
            "served response diverged from offline extract for {text:?}"
        );
    }

    // The batch endpoint returns the same payloads, in request order.
    let mut conn = client::Conn::connect(addr).expect("connect");
    let batch_body = format!(
        "{{\"texts\": [{}]}}",
        texts
            .iter()
            .take(5)
            .map(|t| format!("\"{}\"", json_escape(t)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let resp = conn.post("/v1/extract_batch", &batch_body).expect("extract_batch");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let parsed: Value = serde_json::from_str(&resp.body).expect("batch json");
    let results = parsed.get("results").and_then(|r| r.as_array()).expect("results array");
    assert_eq!(results.len(), 5);
    for (text, served) in texts.iter().take(5).zip(results) {
        assert_eq!(*served, offline_payload(&offline, text));
    }

    stop_server(addr, handle);
}

/// `(batches scored, requests scored)` so far — the `serve.batch_size`
/// histogram's count and sum. Deltas of these give the mean batch width
/// over a window even while other tests observe into the same registry.
fn batch_size_totals() -> (u64, f64) {
    ner_obs::histogram_snapshots()
        .into_iter()
        .find(|h| h.name == "serve.batch_size")
        .map(|h| (h.count, h.sum))
        .unwrap_or((0, 0.0))
}

#[test]
fn concurrent_load_forms_batches_wider_than_one() {
    // A scoring delay long enough that a burst piles up behind the first
    // dispatch: the batcher must drain the pile as real multi-request
    // batches, not as a serial stream of singletons. This regression-tests
    // the fill target — it must not be capped below `max_batch` (e.g. at
    // the thread-pool width) now that scoring packs the whole batch into
    // one [B,T] forward.
    let cfg = ServeConfig {
        max_batch: 32,
        score_delay: Duration::from_millis(25),
        ..ServeConfig::default()
    };
    let (addr, _state, handle) = start_server(cfg, None);

    let (batches_before, requests_before) = batch_size_totals();
    std::thread::scope(|scope| {
        for i in 0..32 {
            scope.spawn(move || {
                let body = format!("{{\"text\": \"batched burst probe {i} .\"}}");
                let resp = client::post(addr, "/v1/extract", &body).expect("extract");
                assert_eq!(resp.status, 200, "body: {}", resp.body);
            });
        }
    });
    let (batches_after, requests_after) = batch_size_totals();

    let batches = batches_after - batches_before;
    let requests = requests_after - requests_before;
    assert!(requests >= 32.0, "all 32 burst requests must be scored, saw {requests}");
    let mean_batch = requests / batches as f64;
    assert!(
        mean_batch > 1.0,
        "a 32-request burst against 25ms scoring must batch: \
         {requests} requests over {batches} batches (mean {mean_batch:.2})"
    );

    stop_server(addr, handle);
}

#[test]
fn overflow_sheds_load_with_429_and_keeps_serving() {
    // A deliberately tiny queue and slow scoring: most of a burst must be
    // rejected, but the server itself must stay responsive throughout.
    let cfg = ServeConfig {
        max_batch: 1,
        queue_cap: 2,
        score_delay: Duration::from_millis(120),
        ..ServeConfig::default()
    };
    let (addr, _state, handle) = start_server(cfg, None);

    let (oks, rejected) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..12)
            .map(|i| {
                scope.spawn(move || {
                    let body = format!("{{\"text\": \"burst request number {i} .\"}}");
                    let resp = client::post(addr, "/v1/extract", &body).expect("request");
                    resp.status
                })
            })
            .collect();
        // While the burst is in flight, liveness must not degrade.
        let health = client::get(addr, "/healthz").expect("healthz during burst");
        assert_eq!(health.status, 200);
        let mut oks = 0;
        let mut rejected = 0;
        for w in workers {
            match w.join().expect("client thread") {
                200 => oks += 1,
                429 => rejected += 1,
                other => panic!("unexpected status {other} during overload"),
            }
        }
        (oks, rejected)
    });
    assert!(oks >= 1, "some of the burst must be served");
    assert!(rejected >= 1, "a 2-slot queue must shed most of a 12-request burst");

    // Shed load is advisory: the client that retries after the burst wins.
    let resp = client::post(addr, "/v1/extract", "{\"text\": \"after the storm .\"}")
        .expect("post-burst request");
    assert_eq!(resp.status, 200);
    // And the 429s told it when to come back.
    stop_server(addr, handle);
}

#[test]
fn reload_mid_traffic_loses_no_requests() {
    let ckpt_path =
        std::env::temp_dir().join(format!("ner-serve-reload-test-{}.json", std::process::id()));
    // The checkpoint on disk is captured from an identical pipeline, so
    // predictions stay comparable across the swap.
    Checkpoint::capture(&tiny_pipeline()).save(&ckpt_path).expect("save checkpoint");

    let cfg = ServeConfig { max_batch: 8, ..ServeConfig::default() };
    let (addr, state, handle) = start_server(cfg, Some(ckpt_path.clone()));
    let offline = state.pipeline();

    let reload_status = std::thread::scope(|scope| {
        let traffic: Vec<_> = (0..4)
            .map(|worker| {
                let offline = &offline;
                scope.spawn(move || {
                    let mut conn = client::Conn::connect(addr).expect("connect");
                    for i in 0..25 {
                        let text = format!("Bob Jones works in London office {worker}-{i} .");
                        let body = format!("{{\"text\": \"{text}\"}}");
                        let resp = conn.post("/v1/extract", &body).expect("extract");
                        assert_eq!(
                            resp.status, 200,
                            "request {worker}-{i} dropped during reload: {}",
                            resp.body
                        );
                        let parsed: Value = serde_json::from_str(&resp.body).expect("json");
                        assert_eq!(parsed, offline_payload(offline, &text));
                    }
                })
            })
            .collect();
        // Fire the reload while the traffic threads are mid-stream.
        std::thread::sleep(Duration::from_millis(30));
        let resp = client::post(addr, "/admin/reload", "").expect("reload");
        for t in traffic {
            t.join().expect("traffic thread");
        }
        resp.status
    });
    assert_eq!(reload_status, 200, "reload must succeed");
    assert_eq!(state.reload_count(), 1);

    // The reloaded model keeps serving.
    let resp = client::post(addr, "/v1/extract", "{\"text\": \"Carol visited Berlin .\"}")
        .expect("post-reload request");
    assert_eq!(resp.status, 200);

    stop_server(addr, handle);
    let _ = std::fs::remove_file(ckpt_path);
}

#[test]
fn health_metrics_and_errors_speak_http() {
    let (addr, _state, handle) = start_server(ServeConfig::default(), None);

    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.header("content-type"), Some("application/json"));
    let parsed: Value = serde_json::from_str(&health.body).expect("health json");
    assert_eq!(parsed.get("status").and_then(|s| s.as_str()), Some("ok"));

    // Generate some traffic so the serving histograms exist.
    let resp = client::post(addr, "/v1/extract", "{\"text\": \"Dana met Erik in Oslo .\"}")
        .expect("extract");
    assert_eq!(resp.status, 200);

    // The default is Prometheus text exposition: typed families, the
    // batcher's histograms as cumulative bucket series, and the queue
    // depth as a *gauge* (current depth), not a histogram of past depths.
    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.header("content-type"), Some(ner_serve::prometheus::CONTENT_TYPE));
    for needle in [
        "# TYPE ner_serve_queue_depth gauge",
        "# TYPE ner_serve_batch_size histogram",
        "# TYPE ner_serve_queue_wait_us histogram",
        "ner_serve_batch_size_bucket{le=\"",
        "ner_serve_queue_wait_us_bucket{le=\"+Inf\"}",
        "ner_serve_request_us_count",
    ] {
        assert!(metrics.body.contains(needle), "missing {needle:?} in:\n{}", metrics.body);
    }
    ner_serve::prometheus::lint(&metrics.body).expect("live /metrics must pass the lint");
    let also_prom = client::get(addr, "/metrics?format=prometheus").expect("explicit format");
    assert_eq!(also_prom.status, 200);
    assert_eq!(also_prom.header("content-type"), Some(ner_serve::prometheus::CONTENT_TYPE));

    // `?format=json` keeps the structured form; unknown formats are a 400.
    let json = client::get(addr, "/metrics?format=json").expect("metrics json");
    assert_eq!(json.status, 200);
    assert_eq!(json.header("content-type"), Some("application/json"));
    let parsed: Value = serde_json::from_str(&json.body).expect("metrics json body");
    for key in ["counters", "gauges", "histograms"] {
        assert!(parsed.get(key).is_some(), "metrics json lacks {key:?}: {}", json.body);
    }
    let histograms = parsed.get("histograms").and_then(|h| h.as_array()).expect("histograms");
    assert!(histograms
        .iter()
        .any(|h| h.get("name").and_then(|n| n.as_str()) == Some("serve.batch_size")));
    let unknown = client::get(addr, "/metrics?format=xml").expect("unknown format");
    assert_eq!(unknown.status, 400);

    // Error surfaces: bad JSON, wrong method, unknown route, no reload path.
    let bad = client::post(addr, "/v1/extract", "{not json").expect("bad body");
    assert_eq!(bad.status, 400);
    let wrong = client::get(addr, "/v1/extract").expect("wrong method");
    assert_eq!(wrong.status, 405);
    let missing = client::get(addr, "/nope").expect("unknown route");
    assert_eq!(missing.status, 404);
    let reload = client::post(addr, "/admin/reload", "").expect("reload without path");
    assert_eq!(reload.status, 500);
    let bad_trace =
        client::post(addr, "/v1/extract?trace=2", "{\"text\": \"x\"}").expect("bad trace flag");
    assert_eq!(bad_trace.status, 400);

    stop_server(addr, handle);
}

#[test]
fn every_extraction_response_carries_a_unique_trace_id() {
    let (addr, _state, handle) = start_server(ServeConfig::default(), None);

    let mut ids: Vec<String> = Vec::new();
    let mut take_id = |resp: &client::ClientResponse| {
        let id = resp.header("x-trace-id").expect("x-trace-id header").to_string();
        assert_eq!(id.len(), 16, "trace id {id:?} is not 16 hex digits");
        assert!(id.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        ids.push(id);
    };

    let mut conn = client::Conn::connect(addr).expect("connect");
    for i in 0..6 {
        let body = format!("{{\"text\": \"Frank toured museum {i} in Rome .\"}}");
        let resp = conn.post("/v1/extract", &body).expect("extract");
        assert_eq!(resp.status, 200);
        take_id(&resp);
    }
    let resp = conn
        .post("/v1/extract_batch", "{\"texts\": [\"Gina sang .\", \"Hugo danced .\"]}")
        .expect("extract_batch");
    assert_eq!(resp.status, 200);
    take_id(&resp);
    // Error responses are traced too — a 400 still identifies itself.
    let resp = conn.post("/v1/extract", "{broken").expect("bad body");
    assert_eq!(resp.status, 400);
    take_id(&resp);

    let mut unique = ids.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), ids.len(), "trace ids must be unique: {ids:?}");

    stop_server(addr, handle);
}

/// Parses the inline `"trace"` object out of a `?trace=1` response body.
fn inline_trace(body: &str) -> ner_obs::trace::TraceRecord {
    let parsed: Value = serde_json::from_str(body).expect("response json");
    let trace = parsed.get("trace").expect("inline trace object");
    serde::Deserialize::deserialize(trace).expect("trace record json")
}

#[test]
fn inline_trace_stage_timings_account_for_the_total() {
    // A few ms of artificial scoring delay (attributed to `batch_form`:
    // it sits between dequeue and the scoring slot) keeps the request
    // long enough that the fixed per-request bookkeeping — channel hops,
    // clock reads — cannot eat the 10% attribution budget by itself.
    let cfg = ServeConfig { score_delay: Duration::from_millis(5), ..ServeConfig::default() };
    let (addr, _state, handle) = start_server(cfg, None);
    let mut conn = client::Conn::connect(addr).expect("connect");

    // The default body must stay byte-identical to offline extraction: no
    // "trace" key unless asked for.
    let resp = conn.post("/v1/extract", "{\"text\": \"Ivy left Lisbon .\"}").expect("extract");
    assert_eq!(resp.status, 200);
    let parsed: Value = serde_json::from_str(&resp.body).expect("json");
    assert!(parsed.get("trace").is_none(), "untraced body grew a trace key: {}", resp.body);

    // `?trace=1` inlines the per-stage record; the pipeline stages plus
    // queue accounting must explain (nearly) all of the wall clock. The
    // gap is scheduler noise, so take the best of a few tries before
    // calling the attribution broken.
    let mut best_gap = f64::INFINITY;
    let mut last = None;
    for i in 0..5 {
        let body = format!("{{\"text\": \"Judy met partner {i} in Kyoto .\"}}");
        let resp = conn.post("/v1/extract?trace=1", &body).expect("traced extract");
        assert_eq!(resp.status, 200);
        let record = inline_trace(&resp.body);
        assert_eq!(Some(record.id.as_str()), resp.header("x-trace-id"));
        assert_eq!(record.endpoint, "/v1/extract");
        assert_eq!(record.status, 200);
        assert!(record.batch_id >= 1, "scored request must carry its batch id");
        assert!(record.batch_size >= 1);
        for stage in ["queue_wait", "batch_form", "featurize", "embed", "encode", "decode"] {
            assert!(
                record.stages.iter().any(|s| s.stage == stage),
                "stage {stage:?} missing from {:?}",
                record.stages
            );
        }
        assert!(record.total_us > 0.0);
        let gap = (record.total_us - record.stage_sum_us()).abs() / record.total_us;
        best_gap = best_gap.min(gap);
        last = Some(record);
    }
    assert!(
        best_gap <= 0.10,
        "stage timings leave {:.1}% of the total unattributed: {:?}",
        best_gap * 100.0,
        last
    );

    // A batch request shares one trace across its items: each item
    // contributes its own decode stage to the same record.
    let resp = conn
        .post(
            "/v1/extract_batch?trace=1",
            "{\"texts\": [\"Kim ran .\", \"Lee swam .\", \"Max rowed .\"]}",
        )
        .expect("traced batch");
    assert_eq!(resp.status, 200);
    let record = inline_trace(&resp.body);
    assert_eq!(record.endpoint, "/v1/extract_batch");
    assert_eq!(record.stages.iter().filter(|s| s.stage == "decode").count(), 3);

    stop_server(addr, handle);
}

#[test]
fn flight_recorder_pins_the_slowest_request() {
    // Serial scoring with an artificial per-batch delay: later arrivals
    // queue behind earlier ones, so the burst produces a wide spread of
    // totals with a clear slowest request.
    let cfg = ServeConfig {
        max_batch: 1,
        score_delay: Duration::from_millis(40),
        ..ServeConfig::default()
    };
    let (addr, _state, handle) = start_server(cfg, None);

    let mine: Vec<(String, f64)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || {
                    let body = format!("{{\"text\": \"recorder probe {i} .\"}}");
                    let resp =
                        client::post(addr, "/v1/extract?trace=1", &body).expect("traced extract");
                    assert_eq!(resp.status, 200, "body: {}", resp.body);
                    let record = inline_trace(&resp.body);
                    (record.id, record.total_us)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });
    let (slowest_id, slowest_us) =
        mine.iter().max_by(|a, b| a.1.total_cmp(&b.1)).cloned().expect("eight results");
    // With a 40ms serial floor per request the worst of eight must be slow.
    assert!(slowest_us >= 40_000.0, "slowest request took only {slowest_us}µs");

    let resp = client::get(addr, "/admin/trace").expect("admin trace");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    let snap: ner_obs::trace::FlightSnapshot =
        serde_json::from_str(&resp.body).expect("flight snapshot json");

    // The slowest list is ordered, and pinning holds: nothing in the
    // recent ring may be slower than the slowest pinned trace.
    assert!(!snap.slowest.is_empty());
    for pair in snap.slowest.windows(2) {
        assert!(pair[0].total_us >= pair[1].total_us);
    }
    let ring_max = snap.recent.iter().map(|r| r.total_us).fold(0.0, f64::max);
    assert!(ring_max <= snap.slowest[0].total_us);
    // And the burst's genuinely slowest request survived the churn.
    assert!(
        snap.slowest.iter().any(|r| r.id == slowest_id),
        "slowest request {slowest_id} ({slowest_us}µs) missing from {:?}",
        snap.slowest.iter().map(|r| (&r.id, r.total_us)).collect::<Vec<_>>()
    );

    stop_server(addr, handle);
}

/// Reads one HTTP response off a raw socket: status code and whether the
/// server closed the connection afterwards. For the hostile-client tests
/// that drive sockets directly instead of through the client module.
fn read_raw_response(stream: std::net::TcpStream) -> (u16, bool) {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    // EOF after the body means the server closed the connection; probe
    // briefly so a keep-alive socket doesn't hold the test for its full
    // read timeout.
    reader.get_ref().set_read_timeout(Some(Duration::from_millis(200))).unwrap();
    let closed = matches!(reader.read(&mut [0u8; 1]), Ok(0));
    (status, closed)
}

#[test]
fn dribbled_body_is_waited_for_not_dropped() {
    // Regression for the slow-body drop: the old blocking reader's 250 ms
    // socket poll surfaced as an I/O error mid-`read_exact`, so a client
    // pausing longer than that between headers and body was disconnected
    // without a response. The poll loop must wait (the per-request read
    // deadline, default 10 s, is the only bound).
    let (addr, state, handle) = start_server(ServeConfig::default(), None);
    let body = "{\"text\": \"Pat ran home .\"}";

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "POST /v1/extract HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.flush().unwrap();
    // Well past the old 250 ms poll window.
    std::thread::sleep(Duration::from_millis(400));
    stream.write_all(body.as_bytes()).expect("write dribbled body");
    stream.flush().unwrap();
    let (status, _) = read_raw_response(stream);
    assert_eq!(status, 200, "a 400 ms body pause must not drop the connection");

    // Same request again, body split mid-JSON this time.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(&body.as_bytes()[..5]).expect("first body fragment");
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(300));
    stream.write_all(&body.as_bytes()[5..]).expect("second body fragment");
    stream.flush().unwrap();
    let (status, _) = read_raw_response(stream);
    assert_eq!(status, 200, "a split body must reassemble");

    drop(state);
    stop_server(addr, handle);
}

#[test]
fn slowloris_partial_headers_get_408_and_the_server_stays_live() {
    // A head that never finishes must be answered 408 and closed once the
    // per-request read deadline expires — one buffered parser per socket,
    // no thread held hostage — while well-behaved clients keep being
    // served throughout.
    let cfg = ServeConfig { read_timeout: Duration::from_millis(300), ..ServeConfig::default() };
    let (addr, _state, handle) = start_server(cfg, None);

    let mut loris = std::net::TcpStream::connect(addr).expect("connect");
    loris.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    loris.write_all(b"POST /v1/extract HTTP/1.1\r\ncontent-le").expect("partial head");
    loris.flush().unwrap();

    // While the slowloris connection dangles, normal traffic flows.
    let resp = client::post(addr, "/v1/extract", "{\"text\": \"Sam kept serving .\"}")
        .expect("concurrent request");
    assert_eq!(resp.status, 200);

    let (status, closed) = read_raw_response(loris);
    assert_eq!(status, 408, "an unfinished head must time out with 408");
    assert!(closed, "a timed-out connection must be closed");

    // A head dribbled *within* the deadline still completes: the timeout
    // bounds the whole request read, it is not a per-read trigger.
    let mut slow = std::net::TcpStream::connect(addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    slow.write_all(b"GET /healthz HTT").expect("fragment");
    slow.flush().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    slow.write_all(b"P/1.1\r\n\r\n").expect("rest");
    slow.flush().unwrap();
    let (status, _) = read_raw_response(slow);
    assert_eq!(status, 200);

    stop_server(addr, handle);
}

#[test]
fn client_disconnect_while_queued_is_harmless() {
    // A client that hangs up while its request waits for the scorer
    // exercises the reply-channel send-failure path: the dispatcher's
    // answer has nowhere to go and must be dropped without disturbing
    // anything else in the batch.
    let cfg = ServeConfig {
        max_batch: 1,
        replicas: 1,
        score_delay: Duration::from_millis(120),
        ..ServeConfig::default()
    };
    let (addr, _state, handle) = start_server(cfg, None);

    // Occupy the single dispatcher so the deserter's request queues.
    let occupant = std::thread::spawn(move || {
        let resp = client::post(addr, "/v1/extract", "{\"text\": \"first in line .\"}")
            .expect("occupant request");
        assert_eq!(resp.status, 200);
    });
    std::thread::sleep(Duration::from_millis(30));
    for i in 0..4 {
        let mut deserter = std::net::TcpStream::connect(addr).expect("connect");
        let body = format!("{{\"text\": \"deserter {i} gives up .\"}}");
        let head = format!(
            "POST /v1/extract HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        deserter.write_all(head.as_bytes()).expect("write request");
        deserter.flush().unwrap();
        // Hang up without reading the response.
        drop(deserter);
    }
    occupant.join().expect("occupant thread");

    // The server shrugged it off: later requests still score correctly.
    let resp = client::post(addr, "/v1/extract", "{\"text\": \"still standing .\"}")
        .expect("post-desertion request");
    assert_eq!(resp.status, 200);
    stop_server(addr, handle);
}

#[test]
fn shutdown_racing_http_traffic_loses_no_accepted_request() {
    // Fire shutdown into the middle of live traffic. Every request that
    // gets an HTTP response must be whole: 200 with a full payload, or an
    // orderly rejection (503 draining, 429 shed, 408 expired). A connection
    // error is only legitimate for a request the server never accepted
    // (the socket closed between requests during drain).
    let cfg = ServeConfig {
        max_batch: 4,
        score_delay: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let (addr, state, handle) = start_server(cfg, None);
    let offline = state.pipeline();

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..6)
            .map(|worker| {
                let offline = &offline;
                scope.spawn(move || {
                    let mut served = 0usize;
                    'outer: loop {
                        let Ok(mut conn) = client::Conn::connect(addr) else { break };
                        loop {
                            let text = format!("Racer {worker} lap {served} in Madrid .");
                            let body = format!("{{\"text\": \"{text}\"}}");
                            match conn.post("/v1/extract", &body) {
                                Ok(resp) => match resp.status {
                                    200 => {
                                        let parsed: Value = serde_json::from_str(&resp.body)
                                            .expect("a 200 during shutdown must be whole");
                                        assert_eq!(parsed, offline_payload(offline, &text));
                                        served += 1;
                                    }
                                    503 => break 'outer,
                                    429 | 408 => {}
                                    other => panic!("unexpected status {other} during drain"),
                                },
                                // The drain closed this keep-alive socket
                                // between requests; try a fresh connection
                                // (refused once the listener is gone).
                                Err(_) => break,
                            }
                        }
                    }
                    served
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(60));
        let resp = client::post(addr, "/admin/shutdown", "").expect("shutdown");
        assert_eq!(resp.status, 200);
        let served: usize = workers.into_iter().map(|w| w.join().expect("racer")).sum();
        assert!(served > 0, "some pre-shutdown traffic must have been served");
    });
    handle.join().expect("server drains and exits");
}

#[test]
fn replicas_serve_identically_and_reload_swaps_them_all() {
    // Four replicas, four dispatchers: every response must match replica
    // 0's offline extraction, and a reload must swap *all* replicas — a
    // stale replica would keep answering with the old model's predictions.
    let ckpt_path =
        std::env::temp_dir().join(format!("ner-serve-swap-test-{}.json", std::process::id()));
    // The checkpoint on disk is a *different* model (different seed), so a
    // replica that misses the swap is detectable.
    let incoming = tiny_pipeline_seeded(23);
    Checkpoint::capture(&incoming).save(&ckpt_path).expect("save checkpoint");

    let cfg = ServeConfig { replicas: 4, max_batch: 2, ..ServeConfig::default() };
    let (addr, state, handle) = start_server(cfg, Some(ckpt_path.clone()));
    let offline = state.pipeline();

    let texts: Vec<String> =
        (0..24).map(|i| format!("Nora Qvist opened branch {i} in Geneva .")).collect();
    std::thread::scope(|scope| {
        for chunk in texts.chunks(6) {
            let offline = &offline;
            scope.spawn(move || {
                for text in chunk {
                    let body = format!("{{\"text\": \"{}\"}}", json_escape(text));
                    let resp = client::post(addr, "/v1/extract", &body).expect("extract");
                    assert_eq!(resp.status, 200);
                    let parsed: Value = serde_json::from_str(&resp.body).expect("json");
                    assert_eq!(
                        parsed,
                        offline_payload(offline, text),
                        "a replica diverged from replica 0 on {text:?}"
                    );
                }
            });
        }
    });

    let resp = client::post(addr, "/admin/reload", "").expect("reload");
    assert_eq!(resp.status, 200);
    assert_eq!(state.reload_count(), 1);

    // Enough traffic to hit every dispatcher: all answers must now come
    // from the new model.
    std::thread::scope(|scope| {
        for chunk in texts.chunks(6) {
            let incoming = &incoming;
            scope.spawn(move || {
                for text in chunk {
                    let body = format!("{{\"text\": \"{}\"}}", json_escape(text));
                    let resp = client::post(addr, "/v1/extract", &body).expect("extract");
                    assert_eq!(resp.status, 200);
                    let parsed: Value = serde_json::from_str(&resp.body).expect("json");
                    assert_eq!(
                        parsed,
                        offline_payload(incoming, text),
                        "a replica kept the old model after reload for {text:?}"
                    );
                }
            });
        }
    });

    stop_server(addr, handle);
    let _ = std::fs::remove_file(ckpt_path);
}
