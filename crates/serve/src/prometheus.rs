//! Prometheus text exposition (format version 0.0.4) over the live
//! `ner-obs` registry, plus a small lint used by the integration tests and
//! CI to reject malformed output.
//!
//! Metric names are sanitized into the Prometheus charset and prefixed
//! `ner_` (`serve.request_us` → `ner_serve_request_us`). Histograms render
//! the full cumulative `_bucket{le="…"}` series from
//! [`ner_obs::histogram_snapshots`], so a scraper recovers the exact same
//! bucket layout the in-process quantile estimates are computed from.

/// The content-type Prometheus scrapers expect.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Renders the whole live registry — counters, gauges, and histograms —
/// as Prometheus text exposition. Families are deduplicated after name
/// sanitization (first registration wins; a comment line notes any
/// dropped collision, rather than silently emitting an invalid family).
pub fn render() -> String {
    let mut out = String::new();
    let mut seen: Vec<String> = Vec::new();
    let mut fresh = |name: &str, out: &mut String| {
        if seen.iter().any(|s| s == name) {
            out.push_str(&format!("# duplicate family after sanitization skipped: {name}\n"));
            false
        } else {
            seen.push(name.to_string());
            true
        }
    };
    for (name, value) in ner_obs::counters() {
        let name = prom_name(&name);
        if fresh(&name, &mut out) {
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", num(value)));
        }
    }
    for (name, value) in ner_obs::gauges() {
        let name = prom_name(&name);
        if fresh(&name, &mut out) {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", num(value)));
        }
    }
    for h in ner_obs::histogram_snapshots() {
        let name = prom_name(&h.name);
        if !fresh(&name, &mut out) {
            continue;
        }
        out.push_str(&format!("# TYPE {name} histogram\n"));
        for (le, cumulative) in &h.buckets {
            out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cumulative}\n", num(*le)));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", num(h.sum)));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// Maps a registry metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and
/// the `ner_` namespace prefix guarantees a legal first character.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("ner_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a sample value: integral values render without a fractional
/// part (`32`, not `32.0`) so `le` labels stay canonical across renders.
fn num(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Validates Prometheus text exposition: every sample must belong to a
/// `# TYPE`-declared family, no family may be declared twice, values must
/// parse, and histogram bucket series must be cumulative (non-decreasing
/// in `le` order, closed by `+Inf` equal to `_count`). Returns the first
/// violation.
pub fn lint(text: &str) -> Result<(), String> {
    /// Closing-series bookkeeping for one histogram family.
    #[derive(Default)]
    struct Closure {
        inf: Option<f64>,
        count: Option<f64>,
    }
    let mut families: Vec<(String, String)> = Vec::new(); // (name, kind)
    let mut last_bucket: Vec<(String, f64)> = Vec::new(); // (family, last cumulative)
    let mut counts: Vec<(String, Closure)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let ctx = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(ctx("malformed TYPE line"));
            };
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(ctx("unknown family kind"));
            }
            if families.iter().any(|(n, _)| n == name) {
                return Err(ctx("duplicate family declaration"));
            }
            families.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and unchecked
        }
        // A sample: `name[{labels}] value`.
        let name_end = line.find(['{', ' ']).ok_or_else(|| ctx("malformed sample"))?;
        let name = &line[..name_end];
        let value_str = line.rsplit(' ').next().ok_or_else(|| ctx("missing sample value"))?;
        let value: f64 = value_str.parse().map_err(|_| ctx("unparsable sample value"))?;
        // Resolve the family: histogram series carry suffixes.
        let family_of = |suffix: &str| {
            name.strip_suffix(suffix)
                .filter(|base| families.iter().any(|(n, k)| n == base && k == "histogram"))
        };
        let (family, series) = if let Some(base) = family_of("_bucket") {
            (base, "bucket")
        } else if let Some(base) = family_of("_sum") {
            (base, "sum")
        } else if let Some(base) = family_of("_count") {
            (base, "count")
        } else {
            (name, "plain")
        };
        let Some((_, kind)) = families.iter().find(|(n, _)| n == family) else {
            return Err(ctx("sample without a TYPE declaration"));
        };
        if kind == "histogram" && series == "plain" {
            return Err(ctx("bare sample for a histogram family"));
        }
        match series {
            "bucket" => {
                let le = line
                    .split_once("le=\"")
                    .and_then(|(_, rest)| rest.split_once('"'))
                    .map(|(le, _)| le)
                    .ok_or_else(|| ctx("bucket sample without an le label"))?;
                match last_bucket.iter_mut().find(|(f, _)| f == family) {
                    Some((_, prev)) => {
                        if value < *prev {
                            return Err(ctx("non-cumulative bucket series"));
                        }
                        *prev = value;
                    }
                    None => last_bucket.push((family.to_string(), value)),
                }
                if le == "+Inf" {
                    match counts.iter_mut().find(|(f, _)| f == family) {
                        Some((_, c)) => c.inf = Some(value),
                        None => counts.push((
                            family.to_string(),
                            Closure { inf: Some(value), ..Closure::default() },
                        )),
                    }
                }
            }
            "count" => match counts.iter_mut().find(|(f, _)| f == family) {
                Some((_, c)) => c.count = Some(value),
                None => counts.push((
                    family.to_string(),
                    Closure { count: Some(value), ..Closure::default() },
                )),
            },
            _ => {}
        }
    }
    for (family, Closure { inf, count }) in &counts {
        match (inf, count) {
            (Some(inf), Some(count)) if inf == count => {}
            (Some(_), Some(_)) => return Err(format!("{family}: +Inf bucket != _count")),
            _ => return Err(format!("{family}: histogram missing +Inf bucket or _count")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names_into_the_prometheus_charset() {
        assert_eq!(prom_name("serve.request_us"), "ner_serve_request_us");
        assert_eq!(prom_name("infer.cache.hits"), "ner_infer_cache_hits");
        assert_eq!(prom_name("weird-name!"), "ner_weird_name_");
    }

    #[test]
    fn values_render_canonically() {
        assert_eq!(num(32.0), "32");
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(1048576.0), "1048576");
    }

    #[test]
    fn lint_accepts_well_formed_exposition() {
        let text = "# TYPE ner_requests counter\n\
                    ner_requests 10\n\
                    # TYPE ner_lat histogram\n\
                    ner_lat_bucket{le=\"1\"} 2\n\
                    ner_lat_bucket{le=\"2\"} 5\n\
                    ner_lat_bucket{le=\"+Inf\"} 7\n\
                    ner_lat_sum 9.5\n\
                    ner_lat_count 7\n";
        assert_eq!(lint(text), Ok(()));
    }

    #[test]
    fn lint_rejects_untyped_duplicate_and_non_cumulative() {
        assert!(lint("ner_orphan 1\n").unwrap_err().contains("without a TYPE"));
        let dup = "# TYPE ner_x counter\n# TYPE ner_x counter\nner_x 1\n";
        assert!(lint(dup).unwrap_err().contains("duplicate"));
        let decreasing = "# TYPE ner_h histogram\n\
                          ner_h_bucket{le=\"1\"} 5\n\
                          ner_h_bucket{le=\"2\"} 3\n\
                          ner_h_bucket{le=\"+Inf\"} 5\n\
                          ner_h_sum 1\n\
                          ner_h_count 5\n";
        assert!(lint(decreasing).unwrap_err().contains("non-cumulative"));
        let mismatched = "# TYPE ner_h histogram\n\
                          ner_h_bucket{le=\"+Inf\"} 5\n\
                          ner_h_sum 1\n\
                          ner_h_count 6\n";
        assert!(lint(mismatched).unwrap_err().contains("+Inf bucket != _count"));
    }

    #[test]
    fn live_registry_renders_lintable_exposition() {
        ner_obs::counter("prom.test.counter", 3.0);
        ner_obs::gauge("prom.test.gauge", 1.5);
        ner_obs::observe("prom.test.hist_us", 123.0);
        ner_obs::observe("prom.test.hist_us", 45000.0);
        let text = render();
        assert!(text.contains("# TYPE ner_prom_test_counter counter"));
        assert!(text.contains("# TYPE ner_prom_test_hist_us histogram"));
        assert!(text.contains("ner_prom_test_hist_us_bucket{le=\"+Inf\"}"));
        lint(&text).unwrap();
    }
}
