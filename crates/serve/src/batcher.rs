//! The dynamic micro-batcher.
//!
//! Connection threads [`submit`](Batcher::submit) raw texts onto a bounded
//! queue and block on a per-request reply channel. A single dispatcher
//! thread drains up to `max_batch` requests the moment it is free to score
//! — batches widen work-conservingly, from requests that accumulate while
//! the previous batch scores, never by holding an idle scorer back — and
//! scores the whole batch with one
//! [`ner_core::inference::NerPipeline::extract_batch`] call, which packs
//! the sentences into a padded `[B,T]` batched forward (one GEMM per
//! timestep across the batch). Batching is a throughput device only:
//! scoring is read-only on a shared plan and the batched backend is
//! bit-identical to per-sentence evaluation, so a batched response is
//! byte-identical to the same text scored alone.
//!
//! Overload is handled at the edges, never by buffering without bound:
//!
//! * a full queue rejects immediately ([`SubmitError::QueueFull`] → 429);
//! * a request whose deadline passes while queued is answered
//!   [`Outcome::TimedOut`] (→ 408) without being scored;
//! * shutdown stops intake ([`SubmitError::ShuttingDown`] → 503) and the
//!   dispatcher drains every request already accepted before exiting, so a
//!   graceful stop loses nothing in flight.

use crate::state::ServeState;
use ner_core::plan::stage;
use ner_obs::trace::TraceCtx;
use ner_text::Sentence;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Why a request was not accepted onto the queue.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — shed load (429).
    QueueFull,
    /// The server is draining for shutdown (503).
    ShuttingDown,
}

/// What the dispatcher eventually answers for one accepted request.
#[derive(Debug)]
pub enum Outcome {
    /// The annotated sentence, identical to offline `extract` of the text.
    Scored(Sentence),
    /// The request's deadline expired before it could be scored (408).
    TimedOut,
}

/// One queued request.
struct Pending {
    text: String,
    enqueued: Instant,
    deadline: Instant,
    reply: mpsc::SyncSender<Outcome>,
    /// The owning request's trace, when the caller wants queue-wait and
    /// per-stage scoring timings attributed to it.
    trace: Option<TraceCtx>,
}

struct Shared {
    queue: Mutex<VecDeque<Pending>>,
    arrived: Condvar,
    state: Arc<ServeState>,
    stop: AtomicBool,
}

/// Handle to the dispatcher; dropping it (or calling
/// [`shutdown`](Batcher::shutdown)) drains the queue and joins the thread.
pub struct Batcher {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Starts the dispatcher thread for `state`.
    pub fn start(state: Arc<ServeState>) -> Batcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            state,
            stop: AtomicBool::new(false),
        });
        let loop_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("ner-serve-batcher".into())
            .spawn(move || dispatch_loop(loop_shared))
            .expect("spawn batcher dispatcher");
        Batcher { shared, dispatcher: Some(dispatcher) }
    }

    /// Enqueues one text. On success the caller receives the channel the
    /// dispatcher will answer on — wait with `recv_timeout` bounded by the
    /// same deadline.
    pub fn submit(
        &self,
        text: String,
        deadline: Instant,
    ) -> Result<mpsc::Receiver<Outcome>, SubmitError> {
        self.submit_traced(text, deadline, None)
    }

    /// [`submit`](Batcher::submit) with a request trace attached: the
    /// dispatcher records the entry's queue wait and batch id/size on it,
    /// and installs it while the text scores so the `infer.*` stage
    /// timings attribute to the owning request.
    pub fn submit_traced(
        &self,
        text: String,
        deadline: Instant,
        trace: Option<TraceCtx>,
    ) -> Result<mpsc::Receiver<Outcome>, SubmitError> {
        if self.shared.state.is_shutting_down() || self.shared.stop.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let (reply, rx) = mpsc::sync_channel(1);
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= self.shared.state.config.queue_cap {
                ner_obs::counter("serve.rejected", 1.0);
                return Err(SubmitError::QueueFull);
            }
            queue.push_back(Pending { text, enqueued: Instant::now(), deadline, reply, trace });
            ner_obs::gauge("serve.queue_depth", queue.len() as f64);
        }
        self.shared.arrived.notify_one();
        Ok(rx)
    }

    /// Stops intake, drains everything already queued, and joins the
    /// dispatcher. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.arrived.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(shared: Arc<Shared>) {
    let cfg = shared.state.config.clone();
    // Scored-batch ids, unique per dispatcher lifetime; traces carry them
    // so a slow request can be correlated with its batch mates.
    let mut batch_seq: u64 = 0;
    loop {
        // Batching is work-conserving: the dispatcher scores whatever has
        // queued the moment it is free, up to `max_batch` rows. Width is
        // not bought with waiting — it comes from requests that accumulate
        // while the previous batch scores, and the scorer packs however
        // many there are into one padded [B,T] forward. Holding requests
        // back to grow the batch would only add latency: an idle scorer
        // plus a non-empty queue means nothing is gained by waiting.
        let batch: Vec<Pending> = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let stopping = shared.stop.load(Ordering::Acquire);
                if queue.is_empty() {
                    if stopping {
                        return; // drained: nothing in flight can be lost
                    }
                    let (q, _) = shared
                        .arrived
                        .wait_timeout(queue, cfg.max_wait.max(std::time::Duration::from_millis(5)))
                        .unwrap_or_else(|e| e.into_inner());
                    queue = q;
                    continue;
                }
                let n = queue.len().min(cfg.max_batch);
                let batch: Vec<Pending> = queue.drain(..n).collect();
                ner_obs::gauge("serve.queue_depth", queue.len() as f64);
                break batch;
            }
        };

        // Dequeue is the end of queue wait for everything in the batch —
        // including requests about to be shed as expired (their traces
        // should still show where the time went).
        let now = Instant::now();
        for p in &batch {
            let wait_us = now.duration_since(p.enqueued).as_secs_f64() * 1e6;
            ner_obs::observe("serve.queue_wait_us", wait_us);
            if let Some(trace) = &p.trace {
                trace.stage(stage::QUEUE_WAIT, wait_us);
                trace.mark(stage::MARK_DEQUEUE);
            }
        }
        // Expired requests are answered without being scored; the rest
        // form the scoring batch.
        let (expired, live): (Vec<Pending>, Vec<Pending>) =
            batch.into_iter().partition(|p| p.deadline <= now);
        for p in expired {
            ner_obs::counter("serve.timeouts", 1.0);
            let _ = p.reply.send(Outcome::TimedOut);
        }
        if live.is_empty() {
            continue;
        }

        if !cfg.score_delay.is_zero() {
            std::thread::sleep(cfg.score_delay);
        }
        batch_seq += 1;
        for p in &live {
            if let Some(trace) = &p.trace {
                trace.set_batch(batch_seq, live.len() as u64);
            }
        }
        // Hold one pipeline snapshot for the whole batch: a concurrent
        // reload swaps the Arc for *later* batches only.
        let pipeline = shared.state.pipeline();
        let texts: Vec<&str> = live.iter().map(|p| p.text.as_str()).collect();
        let traces: Vec<Option<TraceCtx>> = live.iter().map(|p| p.trace.clone()).collect();
        let scored = pipeline.extract_batch_traced(&texts, &traces);
        ner_obs::observe("serve.batch_size", scored.len() as f64);

        let done = Instant::now();
        for (pending, sentence) in live.into_iter().zip(scored) {
            ner_obs::observe(
                "serve.request_us",
                done.duration_since(pending.enqueued).as_secs_f64() * 1e6,
            );
            ner_obs::counter("serve.requests", 1.0);
            // A send error means the client already gave up (e.g. its own
            // recv_timeout fired); the result is simply dropped.
            let _ = pending.reply.send(Outcome::Scored(sentence));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServeConfig;
    use crate::test_support::tiny_pipeline;
    use std::time::Duration;

    fn state_with(cfg: ServeConfig) -> Arc<ServeState> {
        ServeState::new(tiny_pipeline(), None, cfg)
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn scores_a_single_request() {
        let state = state_with(ServeConfig::default());
        let batcher = Batcher::start(Arc::clone(&state));
        let rx = batcher.submit("Alice went to Paris .".into(), far_deadline()).unwrap();
        let Outcome::Scored(got) = rx.recv_timeout(Duration::from_secs(5)).unwrap() else {
            panic!("expected a scored outcome");
        };
        assert_eq!(got, state.pipeline().extract("Alice went to Paris ."));
    }

    #[test]
    fn full_queue_rejects_immediately() {
        // Keep the dispatcher busy with an artificial scoring delay so the
        // queue genuinely fills.
        let cfg = ServeConfig {
            queue_cap: 2,
            max_batch: 1,
            score_delay: Duration::from_millis(100),
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(state_with(cfg));
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for i in 0..8 {
            match batcher.submit(format!("text {i}"), far_deadline()) {
                Ok(rx) => accepted.push(rx),
                Err(e) => {
                    assert_eq!(e, SubmitError::QueueFull);
                    rejected += 1;
                }
            }
        }
        assert!(rejected > 0, "a 2-slot queue must reject some of 8 instant submits");
        // Everything accepted is still answered.
        for rx in accepted {
            assert!(matches!(rx.recv_timeout(Duration::from_secs(10)), Ok(Outcome::Scored(_))));
        }
    }

    #[test]
    fn expired_requests_time_out_instead_of_scoring() {
        let cfg = ServeConfig {
            score_delay: Duration::from_millis(50),
            max_batch: 1,
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(state_with(cfg));
        // The first request occupies the dispatcher; the second's deadline
        // expires while it waits in the queue.
        let first = batcher.submit("first".into(), far_deadline()).unwrap();
        let doomed =
            batcher.submit("doomed".into(), Instant::now() + Duration::from_millis(1)).unwrap();
        assert!(matches!(first.recv_timeout(Duration::from_secs(10)), Ok(Outcome::Scored(_))));
        assert!(matches!(doomed.recv_timeout(Duration::from_secs(10)), Ok(Outcome::TimedOut)));
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let cfg = ServeConfig {
            score_delay: Duration::from_millis(20),
            max_batch: 2,
            ..ServeConfig::default()
        };
        let mut batcher = Batcher::start(state_with(cfg));
        let pending: Vec<_> = (0..6)
            .map(|i| batcher.submit(format!("sentence {i}"), far_deadline()).unwrap())
            .collect();
        batcher.shutdown();
        for rx in pending {
            assert!(
                matches!(rx.try_recv(), Ok(Outcome::Scored(_))),
                "shutdown must answer every accepted request before returning"
            );
        }
        assert_eq!(
            batcher.submit("late".into(), far_deadline()).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn batched_results_match_individual_extraction() {
        let state = state_with(ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(20),
            ..ServeConfig::default()
        });
        let batcher = Batcher::start(Arc::clone(&state));
        let texts: Vec<String> =
            (0..8).map(|i| format!("Bob visited office number {i} in London .")).collect();
        let rxs: Vec<_> =
            texts.iter().map(|t| batcher.submit(t.clone(), far_deadline()).unwrap()).collect();
        let pipeline = state.pipeline();
        for (text, rx) in texts.iter().zip(rxs) {
            let Outcome::Scored(got) = rx.recv_timeout(Duration::from_secs(5)).unwrap() else {
                panic!("expected a scored outcome");
            };
            assert_eq!(got, pipeline.extract(text), "batched != sequential for {text:?}");
        }
    }
}
