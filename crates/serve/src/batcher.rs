//! The dynamic micro-batcher, sharded across pipeline replicas.
//!
//! Poll-loop shards [`submit`](Batcher::submit) raw texts onto a bounded
//! queue and receive a per-request reply channel. One dispatcher thread
//! per pipeline replica drains up to `max_batch` requests the moment it is
//! free to score — batches widen work-conservingly, from requests that
//! accumulate while previous batches score, never by holding an idle
//! scorer back — and scores the whole batch with one
//! [`ner_core::inference::NerPipeline::extract_batch`] call on its **own**
//! replica: a private compiled plan, token-feature cache, and buffer pool,
//! so concurrent dispatchers never contend on a shared lock. Batching and
//! replication are throughput devices only: every replica's parameters are
//! bit-identical and the batched backend is bit-identical to per-sentence
//! evaluation, so any scheduling of a text yields a byte-identical
//! response.
//!
//! Overload is handled at admission, never by buffering without bound:
//!
//! * **SLO-aware shedding** — each dispatcher feeds an EWMA of measured
//!   per-row scoring cost; `submit` predicts a request's completion time
//!   from the queue backlog, in-flight rows, and replica count, and sheds
//!   ([`SubmitError::Overloaded`] → 429 + `Retry-After`) when the
//!   prediction overshoots the `slo_p99` budget or the request's own
//!   deadline — the queue stays shallow enough that accepted requests
//!   meet their SLO, instead of a deep queue timing everyone out;
//! * the bounded queue is a hard backstop ([`SubmitError::QueueFull`] →
//!   429) for before the cost model has its first measurement;
//! * a request whose deadline passes while queued is answered
//!   [`Outcome::TimedOut`] (→ 408) without being scored;
//! * shutdown stops intake ([`SubmitError::ShuttingDown`] → 503) and the
//!   dispatchers drain every request already accepted before exiting. The
//!   stop flag is checked **under the queue lock** — the same lock the
//!   exiting dispatchers hold for their final-drain check — so a submit
//!   can never slip a request into the queue after the last dispatcher
//!   has decided it is empty (the accepted-but-never-answered race).

use crate::state::ServeState;
use ner_core::plan::stage;
use ner_obs::trace::TraceCtx;
use ner_text::Sentence;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// EWMA weight of the newest per-row cost sample (out of
/// [`EWMA_DENOM`]): the cost model tracks load shifts within a few
/// batches without whipsawing on one slow outlier.
const EWMA_NUM: u64 = 1;
const EWMA_DENOM: u64 = 4;

/// Why a request was not accepted onto the queue.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at its hard capacity — shed load (429).
    QueueFull,
    /// Admission control predicts this request would miss its deadline or
    /// the `slo_p99` budget; the payload is the predicted queue wait (429
    /// + `Retry-After`).
    Overloaded(Duration),
    /// The server is draining for shutdown (503).
    ShuttingDown,
}

/// What a dispatcher eventually answers for one accepted request.
#[derive(Debug)]
pub enum Outcome {
    /// The annotated sentence, identical to offline `extract` of the text.
    Scored(Sentence),
    /// The request's deadline expired before it could be scored (408).
    TimedOut,
}

/// One queued request.
struct Pending {
    text: String,
    enqueued: Instant,
    deadline: Instant,
    reply: mpsc::SyncSender<Outcome>,
    /// The owning request's trace, when the caller wants queue-wait and
    /// per-stage scoring timings attributed to it.
    trace: Option<TraceCtx>,
}

struct Shared {
    queue: Mutex<VecDeque<Pending>>,
    arrived: Condvar,
    state: Arc<ServeState>,
    stop: AtomicBool,
    /// EWMA of per-row batch service time, in nanoseconds. `0` means no
    /// batch has completed yet — admission stays optimistic until the
    /// first measurement.
    row_cost_ns: AtomicU64,
    /// Rows currently being scored across all dispatchers; part of the
    /// backlog the admission predictor charges a new arrival for.
    inflight_rows: AtomicUsize,
}

impl Shared {
    /// Records one batch's measured per-row cost into the EWMA.
    fn observe_batch_cost(&self, elapsed: Duration, rows: usize) {
        if rows == 0 {
            return;
        }
        let per_row = (elapsed.as_nanos() as u64) / rows as u64;
        let old = self.row_cost_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            per_row
        } else {
            (old * (EWMA_DENOM - EWMA_NUM) + per_row * EWMA_NUM) / EWMA_DENOM
        };
        // Racy store is fine: any interleaving lands on a recent sample.
        self.row_cost_ns.store(new.max(1), Ordering::Relaxed);
        ner_obs::gauge("serve.row_cost_us", new as f64 / 1e3);
    }

    /// Predicted wait until a request admitted now would start scoring.
    fn predicted_wait(&self, queued: usize) -> Option<Duration> {
        let row_ns = self.row_cost_ns.load(Ordering::Relaxed);
        if row_ns == 0 {
            return None; // no measurement yet: admit optimistically
        }
        let backlog = queued + self.inflight_rows.load(Ordering::Relaxed);
        let replicas = self.state.replica_count().max(1) as u64;
        Some(Duration::from_nanos(row_ns.saturating_mul(backlog as u64) / replicas))
    }
}

/// Handle to the dispatchers; dropping it (or calling
/// [`shutdown`](Batcher::shutdown)) drains the queue and joins the
/// threads.
pub struct Batcher {
    shared: Arc<Shared>,
    dispatchers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Starts one dispatcher thread per pipeline replica of `state`.
    pub fn start(state: Arc<ServeState>) -> Batcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            state,
            stop: AtomicBool::new(false),
            row_cost_ns: AtomicU64::new(0),
            inflight_rows: AtomicUsize::new(0),
        });
        let dispatchers = (0..shared.state.replica_count())
            .map(|replica| {
                let loop_shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ner-serve-batcher-{replica}"))
                    .spawn(move || dispatch_loop(loop_shared, replica))
                    .expect("spawn batcher dispatcher")
            })
            .collect();
        Batcher { shared, dispatchers: Mutex::new(dispatchers) }
    }

    /// Enqueues one text. On success the caller receives the channel a
    /// dispatcher will answer on — wait with `recv_timeout` bounded by the
    /// same deadline, or poll with `try_recv` from an event loop.
    pub fn submit(
        &self,
        text: String,
        deadline: Instant,
    ) -> Result<mpsc::Receiver<Outcome>, SubmitError> {
        self.submit_traced(text, deadline, None)
    }

    /// [`submit`](Batcher::submit) with a request trace attached: the
    /// dispatcher records the entry's queue wait and batch id/size on it,
    /// and installs it while the text scores so the `infer.*` stage
    /// timings attribute to the owning request.
    pub fn submit_traced(
        &self,
        text: String,
        deadline: Instant,
        trace: Option<TraceCtx>,
    ) -> Result<mpsc::Receiver<Outcome>, SubmitError> {
        let (reply, rx) = mpsc::sync_channel(1);
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // The stop check must happen under the queue lock: dispatchers
            // decide "stopped and drained, exit" while holding it, so a
            // request admitted here is guaranteed a live dispatcher.
            // Checking before taking the lock (as this code once did)
            // loses the request that lands between the final drain and the
            // push — accepted, never answered.
            if self.shared.state.is_shutting_down() || self.shared.stop.load(Ordering::Acquire) {
                return Err(SubmitError::ShuttingDown);
            }
            if queue.len() >= self.shared.state.config.queue_cap {
                ner_obs::counter("serve.rejected", 1.0);
                return Err(SubmitError::QueueFull);
            }
            // SLO-aware admission: predict when this request would finish
            // and shed it now if that misses its deadline or the p99
            // budget — a 429 the client can retry beats a 408 after
            // rotting in a queue that was never going to drain in time.
            if let Some(wait) = self.shared.predicted_wait(queue.len()) {
                let now = Instant::now();
                let misses_deadline = now + wait > deadline;
                let misses_slo = wait > self.shared.state.config.slo_p99;
                if misses_deadline || misses_slo {
                    ner_obs::counter("serve.rejected", 1.0);
                    ner_obs::counter("serve.shed_slo", 1.0);
                    return Err(SubmitError::Overloaded(wait));
                }
            }
            queue.push_back(Pending { text, enqueued: Instant::now(), deadline, reply, trace });
            ner_obs::gauge("serve.queue_depth", queue.len() as f64);
        }
        self.shared.arrived.notify_one();
        Ok(rx)
    }

    /// Stops intake, drains everything already queued, and joins the
    /// dispatchers. Idempotent, and callable from a shared reference so
    /// the server can trigger the drain while poll shards still hold the
    /// batcher.
    pub fn shutdown(&self) {
        {
            // Setting stop under the queue lock orders it against every
            // submit: a submit holding the lock either sees stop and
            // refuses, or completes its push before stop lands — and the
            // dispatchers drain everything pushed before exiting.
            let _queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.stop.store(true, Ordering::Release);
        }
        self.shared.arrived.notify_all();
        let mut dispatchers = self.dispatchers.lock().unwrap_or_else(|e| e.into_inner());
        for handle in dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(shared: Arc<Shared>, replica: usize) {
    let cfg = shared.state.config.clone();
    // The replica pinned to this dispatcher, cached outside the loop. One
    // atomic generation load per batch detects a reload; the slot lock is
    // taken only then — the scoring hot path holds no shared lock.
    let (mut generation, mut pipeline) = shared.state.replica(replica);
    // Scored-batch ids, unique per process; traces carry them so a slow
    // request can be correlated with its batch mates.
    static BATCH_SEQ: AtomicU64 = AtomicU64::new(0);
    loop {
        // Batching is work-conserving: a dispatcher scores whatever has
        // queued the moment it is free, up to `max_batch` rows. Width is
        // not bought with waiting — it comes from requests that accumulate
        // while previous batches score, and the scorer packs however many
        // there are into one padded [B,T] forward. Holding requests back
        // to grow the batch would only add latency: an idle scorer plus a
        // non-empty queue means nothing is gained by waiting.
        let batch: Vec<Pending> = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let stopping = shared.stop.load(Ordering::Acquire);
                if queue.is_empty() {
                    if stopping {
                        // Drained, and `submit` checks the stop flag under
                        // this same lock: nothing accepted can be lost.
                        return;
                    }
                    let (q, _) = shared
                        .arrived
                        .wait_timeout(queue, cfg.max_wait.max(std::time::Duration::from_millis(5)))
                        .unwrap_or_else(|e| e.into_inner());
                    queue = q;
                    continue;
                }
                let n = queue.len().min(cfg.max_batch);
                let batch: Vec<Pending> = queue.drain(..n).collect();
                // Count the claimed rows as in-flight before releasing the
                // lock, so admission never sees them vanish from both the
                // queue and the in-flight backlog at once.
                shared.inflight_rows.fetch_add(batch.len(), Ordering::Relaxed);
                ner_obs::gauge("serve.queue_depth", queue.len() as f64);
                break batch;
            }
        };

        // Dequeue is the end of queue wait for everything in the batch —
        // including requests about to be shed as expired (their traces
        // should still show where the time went).
        let now = Instant::now();
        for p in &batch {
            let wait_us = now.duration_since(p.enqueued).as_secs_f64() * 1e6;
            ner_obs::observe("serve.queue_wait_us", wait_us);
            if let Some(trace) = &p.trace {
                trace.stage(stage::QUEUE_WAIT, wait_us);
                trace.mark(stage::MARK_DEQUEUE);
            }
        }
        // Expired requests are answered without being scored; the rest
        // form the scoring batch.
        let (expired, live): (Vec<Pending>, Vec<Pending>) =
            batch.into_iter().partition(|p| p.deadline <= now);
        if !expired.is_empty() {
            shared.inflight_rows.fetch_sub(expired.len(), Ordering::Relaxed);
        }
        for p in expired {
            ner_obs::counter("serve.timeouts", 1.0);
            let _ = p.reply.send(Outcome::TimedOut);
        }
        if live.is_empty() {
            continue;
        }

        if !cfg.score_delay.is_zero() {
            std::thread::sleep(cfg.score_delay);
        }
        let batch_seq = BATCH_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
        for p in &live {
            if let Some(trace) = &p.trace {
                trace.set_batch(batch_seq, live.len() as u64);
            }
        }
        // A reload bumps the generation after refilling every slot;
        // batches never switch models mid-flight, and all replicas move
        // together at their next batch boundary.
        if shared.state.generation() != generation {
            let (fresh_gen, fresh) = shared.state.replica(replica);
            generation = fresh_gen;
            pipeline = fresh;
        }
        let texts: Vec<&str> = live.iter().map(|p| p.text.as_str()).collect();
        let traces: Vec<Option<TraceCtx>> = live.iter().map(|p| p.trace.clone()).collect();
        let scored = pipeline.extract_batch_traced(&texts, &traces);
        let done = Instant::now();
        shared.observe_batch_cost(done.duration_since(now), live.len());
        shared.inflight_rows.fetch_sub(live.len(), Ordering::Relaxed);
        ner_obs::observe("serve.batch_size", scored.len() as f64);

        for (pending, sentence) in live.into_iter().zip(scored) {
            ner_obs::observe(
                "serve.request_us",
                done.duration_since(pending.enqueued).as_secs_f64() * 1e6,
            );
            ner_obs::counter("serve.requests", 1.0);
            // A send error means the client already gave up (e.g. it
            // disconnected and the poll loop dropped the receiver); the
            // result is simply dropped.
            let _ = pending.reply.send(Outcome::Scored(sentence));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServeConfig;
    use crate::test_support::tiny_pipeline;
    use std::time::Duration;

    fn state_with(cfg: ServeConfig) -> Arc<ServeState> {
        ServeState::new(tiny_pipeline(), None, cfg)
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn scores_a_single_request() {
        let state = state_with(ServeConfig::default());
        let batcher = Batcher::start(Arc::clone(&state));
        let rx = batcher.submit("Alice went to Paris .".into(), far_deadline()).unwrap();
        let Outcome::Scored(got) = rx.recv_timeout(Duration::from_secs(5)).unwrap() else {
            panic!("expected a scored outcome");
        };
        assert_eq!(got, state.pipeline().extract("Alice went to Paris ."));
    }

    #[test]
    fn replicated_dispatchers_agree_with_replica_zero() {
        // Four replicas scoring a spread of texts must all answer exactly
        // what replica 0 (the parity oracle) answers offline.
        let state = state_with(ServeConfig { replicas: 4, ..ServeConfig::default() });
        assert_eq!(state.replica_count(), 4);
        let batcher = Batcher::start(Arc::clone(&state));
        let texts: Vec<String> =
            (0..16).map(|i| format!("Alice moved item {i} to Berlin .")).collect();
        let rxs: Vec<_> =
            texts.iter().map(|t| batcher.submit(t.clone(), far_deadline()).unwrap()).collect();
        let oracle = state.pipeline();
        for (text, rx) in texts.iter().zip(rxs) {
            let Outcome::Scored(got) = rx.recv_timeout(Duration::from_secs(10)).unwrap() else {
                panic!("expected a scored outcome");
            };
            assert_eq!(got, oracle.extract(text), "replica diverged on {text:?}");
        }
    }

    #[test]
    fn full_queue_rejects_immediately() {
        // Keep the dispatcher busy with an artificial scoring delay so the
        // queue genuinely fills.
        let cfg = ServeConfig {
            queue_cap: 2,
            max_batch: 1,
            replicas: 1,
            score_delay: Duration::from_millis(100),
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(state_with(cfg));
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for i in 0..8 {
            match batcher.submit(format!("text {i}"), far_deadline()) {
                Ok(rx) => accepted.push(rx),
                Err(e) => {
                    assert_eq!(e, SubmitError::QueueFull);
                    rejected += 1;
                }
            }
        }
        assert!(rejected > 0, "a 2-slot queue must reject some of 8 instant submits");
        // Everything accepted is still answered.
        for rx in accepted {
            assert!(matches!(rx.recv_timeout(Duration::from_secs(10)), Ok(Outcome::Scored(_))));
        }
    }

    #[test]
    fn slo_admission_sheds_predicted_deadline_misses() {
        // 50 ms per single-row batch, one replica, and a 120 ms SLO
        // budget: once the cost model has its first measurement, a deep
        // backlog must be refused at the door instead of queueing up to
        // the 1024-slot hard cap and timing out.
        let cfg = ServeConfig {
            max_batch: 1,
            replicas: 1,
            score_delay: Duration::from_millis(50),
            slo_p99: Duration::from_millis(120),
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(state_with(cfg));
        // Prime the cost model: one scored request establishes the EWMA.
        let rx = batcher.submit("prime the pump .".into(), far_deadline()).unwrap();
        assert!(matches!(rx.recv_timeout(Duration::from_secs(10)), Ok(Outcome::Scored(_))));

        // Now flood: far more work than a 120 ms budget can hold at ~50 ms
        // per row. Admission must shed most of it as Overloaded — with a
        // positive wait prediction — long before the hard queue cap.
        let mut accepted = Vec::new();
        let mut shed = 0;
        for i in 0..24 {
            match batcher.submit(format!("flood {i}"), far_deadline()) {
                Ok(rx) => accepted.push(rx),
                Err(SubmitError::Overloaded(wait)) => {
                    assert!(wait > Duration::ZERO);
                    shed += 1;
                }
                Err(e) => panic!("expected Overloaded, got {e:?}"),
            }
        }
        assert!(shed > 0, "a 120ms budget over ~50ms rows must shed most of a 24-burst");
        assert!(
            accepted.len() <= 8,
            "admission should keep the queue near budget/row_cost, accepted {}",
            accepted.len()
        );
        // Everything admitted is still answered.
        for rx in accepted {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(10)),
                Ok(Outcome::Scored(_) | Outcome::TimedOut)
            ));
        }
    }

    #[test]
    fn expired_requests_time_out_instead_of_scoring() {
        let cfg = ServeConfig {
            score_delay: Duration::from_millis(50),
            max_batch: 1,
            replicas: 1,
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(state_with(cfg));
        // The first request occupies the dispatcher; the second's deadline
        // expires while it waits in the queue.
        let first = batcher.submit("first".into(), far_deadline()).unwrap();
        let doomed =
            batcher.submit("doomed".into(), Instant::now() + Duration::from_millis(1)).unwrap();
        assert!(matches!(first.recv_timeout(Duration::from_secs(10)), Ok(Outcome::Scored(_))));
        assert!(matches!(doomed.recv_timeout(Duration::from_secs(10)), Ok(Outcome::TimedOut)));
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let cfg = ServeConfig {
            score_delay: Duration::from_millis(20),
            max_batch: 2,
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(state_with(cfg));
        let pending: Vec<_> = (0..6)
            .map(|i| batcher.submit(format!("sentence {i}"), far_deadline()).unwrap())
            .collect();
        batcher.shutdown();
        for rx in pending {
            assert!(
                matches!(rx.try_recv(), Ok(Outcome::Scored(_))),
                "shutdown must answer every accepted request before returning"
            );
        }
        assert_eq!(
            batcher.submit("late".into(), far_deadline()).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn shutdown_racing_submits_never_loses_an_accepted_request() {
        // Regression for the submit/shutdown TOCTOU race: `submit` used to
        // check the stop flag *before* taking the queue lock, so a request
        // could be pushed after the dispatcher's final drain — accepted,
        // never answered. With the check under the lock, every Ok(rx)
        // must resolve. Run the race repeatedly; pre-fix this flaked.
        for round in 0..40 {
            let cfg = ServeConfig { max_batch: 4, replicas: 2, ..ServeConfig::default() };
            let batcher = Batcher::start(state_with(cfg));
            let submitted = std::thread::scope(|scope| {
                let batcher = &batcher;
                let submitter = scope.spawn(move || {
                    let mut accepted = Vec::new();
                    for i in 0..64 {
                        match batcher.submit(format!("race {round}-{i}"), far_deadline()) {
                            Ok(rx) => accepted.push(rx),
                            Err(SubmitError::ShuttingDown) => break,
                            Err(e) => panic!("unexpected submit error {e:?}"),
                        }
                        if i % 8 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    accepted
                });
                // Race the drain against the submit loop.
                std::thread::yield_now();
                batcher.shutdown();
                submitter.join().expect("submitter thread")
            });
            for (i, rx) in submitted.into_iter().enumerate() {
                assert!(
                    matches!(
                        rx.recv_timeout(Duration::from_secs(10)),
                        Ok(Outcome::Scored(_) | Outcome::TimedOut)
                    ),
                    "round {round}: accepted request {i} was never answered"
                );
            }
        }
    }

    #[test]
    fn batched_results_match_individual_extraction() {
        let state = state_with(ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(20),
            ..ServeConfig::default()
        });
        let batcher = Batcher::start(Arc::clone(&state));
        let texts: Vec<String> =
            (0..8).map(|i| format!("Bob visited office number {i} in London .")).collect();
        let rxs: Vec<_> =
            texts.iter().map(|t| batcher.submit(t.clone(), far_deadline()).unwrap()).collect();
        let pipeline = state.pipeline();
        for (text, rx) in texts.iter().zip(rxs) {
            let Outcome::Scored(got) = rx.recv_timeout(Duration::from_secs(5)).unwrap() else {
                panic!("expected a scored outcome");
            };
            assert_eq!(got, pipeline.extract(text), "batched != sequential for {text:?}");
        }
    }
}
