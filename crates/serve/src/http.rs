//! Minimal HTTP/1.1 over `std::net`: just enough of RFC 9112 for the
//! serving endpoints — request-line + headers + `Content-Length` bodies,
//! keep-alive connections, and plain responses. No chunked encoding, no
//! TLS, no compression; anything outside that subset gets a clean 4xx.

use std::io::{BufRead, Write};

/// Upper bound on a request body (1 MiB): a batch of sentences, not a file
/// upload. Larger bodies are refused with 413 before buffering.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Upper bound on a single header line, and on the header count.
const MAX_HEADER_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET` / `POST`.
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Lowercased header names with their values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The request path with any query string removed — what routing
    /// matches on (`/metrics?format=json` → `/metrics`).
    pub fn route_path(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// Value of one query parameter. `?a=1&b=2` yields `Some("1")` for
    /// `a`; a bare flag (`?trace`) yields `Some("")`; an absent name
    /// yields `None`. No percent-decoding — the serving API only uses
    /// simple token values.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let (_, query) = self.path.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// True when the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not an error to report.
    Closed,
    /// A socket read timeout fired before the first byte of a request
    /// arrived: the connection is idle. The caller may retry (keep-alive
    /// poll) or close; no data was consumed.
    Idle,
    /// The bytes did not form a request this server accepts; the payload
    /// is the response to send before closing.
    Bad(Response),
    /// Transport-level failure mid-request.
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from a buffered stream. Blocks until a full request
/// arrives (bound the wait with a socket read timeout).
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, ReadError> {
    let request_line = match read_line(stream) {
        Ok(None) => return Err(ReadError::Closed),
        Ok(Some(l)) => l,
        // Idle is only clean before the first byte of a request; a timeout
        // once headers have started means a stalled client.
        Err(ReadError::Idle) => return Err(ReadError::Idle),
        Err(e) => return Err(e),
    };
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(ReadError::Bad(Response::text(400, "malformed request line"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Bad(Response::text(505, "HTTP version not supported")));
    }
    let mut headers = Vec::new();
    loop {
        let line = match read_line(stream) {
            Ok(None) | Err(ReadError::Idle) => {
                return Err(ReadError::Bad(Response::text(400, "truncated headers")))
            }
            Ok(Some(l)) => l,
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::Bad(Response::text(431, "too many headers")));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Bad(Response::text(400, "malformed header")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Err(ReadError::Bad(Response::text(400, "bad content-length"))),
        },
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::Bad(Response::text(413, "request body too large")));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request { method: method.to_string(), path: path.to_string(), headers, body })
}

/// Reads one CRLF- (or LF-) terminated line; `None` on immediate EOF,
/// [`ReadError::Idle`] when a read timeout fires before the first byte.
fn read_line(stream: &mut impl BufRead) -> Result<Option<String>, ReadError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(ReadError::Bad(Response::text(400, "truncated request")));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| ReadError::Bad(Response::text(400, "non-UTF-8 header")))?;
                    return Ok(Some(line));
                }
                if buf.len() >= MAX_HEADER_LINE {
                    return Err(ReadError::Bad(Response::text(431, "header line too long")));
                }
                buf.push(byte[0]);
            }
            Err(e)
                if buf.is_empty()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(ReadError::Idle)
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// Media type of `body`.
    pub content_type: &'static str,
    /// Response payload.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response (a trailing newline is appended).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        let mut body = body.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response { status, headers: Vec::new(), content_type: "text/plain", body: body.into() }
    }

    /// An `application/json` response from an already-serialized payload.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Overrides the media type (e.g. the Prometheus exposition type on an
    /// otherwise-plain-text body).
    pub fn with_content_type(mut self, content_type: &'static str) -> Response {
        self.content_type = content_type;
        self
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Serializes the response onto a stream. `close` adds
    /// `Connection: close` so the client stops reusing the socket.
    pub fn write_to(&self, stream: &mut impl Write, close: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if close {
            head.push_str("connection: close\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            parse("POST /v1/extract HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/extract");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"abcd");
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_lf_only_lines() {
        let r = parse("GET /healthz HTTP/1.1\nConnection: close\n\n").unwrap();
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
        assert!(r.wants_close());
    }

    #[test]
    fn eof_before_request_is_a_clean_close() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn rejects_garbage_with_400() {
        let Err(ReadError::Bad(resp)) = parse("not an http request\r\n\r\n") else {
            panic!("garbage must be rejected");
        };
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn rejects_oversized_body_with_413() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let Err(ReadError::Bad(resp)) = parse(&raw) else {
            panic!("oversized body must be rejected");
        };
        assert_eq!(resp.status, 413);
    }

    #[test]
    fn query_strings_split_off_the_route_path() {
        let r = parse("GET /metrics?format=json&trace HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.route_path(), "/metrics");
        assert_eq!(r.query_param("format"), Some("json"));
        assert_eq!(r.query_param("trace"), Some(""));
        assert_eq!(r.query_param("missing"), None);
        let plain = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(plain.route_path(), "/metrics");
        assert_eq!(plain.query_param("format"), None);
    }

    #[test]
    fn response_serializes_with_headers() {
        let mut out = Vec::new();
        Response::text(429, "busy")
            .with_header("retry-after", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nbusy\n"));
    }
}
