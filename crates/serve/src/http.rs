//! Minimal HTTP/1.1 over `std::net`: just enough of RFC 9112 for the
//! serving endpoints — request-line + headers + `Content-Length` bodies,
//! keep-alive connections, and plain responses. No chunked encoding, no
//! TLS, no compression; anything outside that subset gets a clean 4xx.
//!
//! Parsing is **incremental**: [`RequestParser`] consumes bytes as they
//! arrive off a nonblocking socket and yields a [`Request`] only once the
//! head and body are complete, which is what lets the server's poll loop
//! serve thousands of slow connections without a thread (or a blocked
//! read) per socket. The blocking [`read_request`] used by tests and
//! simple callers is a thin loop over the same parser, retrying
//! `WouldBlock`/`TimedOut` reads under an overall per-request deadline —
//! a client that dribbles its body across several read-timeout windows is
//! waited for, not dropped.

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

/// Upper bound on a request body (1 MiB): a batch of sentences, not a file
/// upload. Larger bodies are refused with 413 before buffering.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Upper bound on a single header line, and on the header count.
const MAX_HEADER_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 64;

/// Upper bound on a buffered-but-incomplete request head. A peer that
/// sends this much without finishing its headers is slow-loris-ing, not
/// negotiating.
const MAX_HEAD_BYTES: usize = 32 * 1024;

/// Default overall deadline for reading one request (first byte of the
/// request line through the last body byte) in the blocking
/// [`read_request`] path.
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(10);

/// The HTTP protocol version a request was made with. The server answers
/// both the same way; the difference is connection semantics — HTTP/1.0
/// defaults to close-after-response, HTTP/1.1 to keep-alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpVersion {
    /// `HTTP/1.0` — connections close unless `Connection: keep-alive`.
    Http10,
    /// `HTTP/1.1` — connections persist unless `Connection: close`.
    Http11,
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET` / `POST`.
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Protocol version from the request line.
    pub version: HttpVersion,
    /// Lowercased header names with their values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The request path with any query string removed — what routing
    /// matches on (`/metrics?format=json` → `/metrics`).
    pub fn route_path(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// Value of one query parameter. `?a=1&b=2` yields `Some("1")` for
    /// `a`; a bare flag (`?trace`) yields `Some("")`; an absent name
    /// yields `None`. No percent-decoding — the serving API only uses
    /// simple token values.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let (_, query) = self.path.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// True when the connection should close after this exchange.
    /// HTTP/1.1 defaults to keep-alive and closes on `Connection: close`;
    /// HTTP/1.0 defaults to close and persists only on an explicit
    /// `Connection: keep-alive`.
    pub fn wants_close(&self) -> bool {
        match self.version {
            HttpVersion::Http11 => {
                self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
            }
            HttpVersion::Http10 => {
                !self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
            }
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not an error to report.
    Closed,
    /// A socket read timeout fired before the first byte of a request
    /// arrived: the connection is idle. The caller may retry (keep-alive
    /// poll) or close; no data was consumed.
    Idle,
    /// The bytes did not form a request this server accepts; the payload
    /// is the response to send before closing.
    Bad(Response),
    /// Transport-level failure mid-request.
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// The parsed head of a request whose body is still arriving.
struct PendingHead {
    request: Request,
    content_length: usize,
}

/// Incremental request parser over a per-connection byte buffer.
///
/// [`feed`](RequestParser::feed) bytes as the socket yields them, then
/// [`poll`](RequestParser::poll) for complete requests. Leftover bytes
/// after a request stay buffered, so pipelined requests parse one after
/// another with no extra reads. A parse error poisons the connection — the
/// caller writes the error response and closes.
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    head: Option<PendingHead>,
}

impl RequestParser {
    /// An empty parser for a fresh connection.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends bytes read from the connection.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when no request is in progress: nothing buffered, no head
    /// awaiting its body. The safe state to idle or close a keep-alive
    /// connection in.
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty() && self.head.is_none()
    }

    /// Tries to complete one request from the buffered bytes. `Ok(None)`
    /// means more bytes are needed; an `Err` response should be written
    /// back before closing the connection.
    pub fn poll(&mut self) -> Result<Option<Request>, Response> {
        if self.head.is_none() {
            match self.parse_head()? {
                Some(head) => self.head = Some(head),
                None => return Ok(None),
            }
        }
        let ready = self.head.as_ref().is_some_and(|head| self.buf.len() >= head.content_length);
        if !ready {
            return Ok(None);
        }
        let PendingHead { mut request, content_length } = self.head.take().expect("head present");
        request.body = self.buf.drain(..content_length).collect();
        Ok(Some(request))
    }

    /// Parses the request line + headers once the blank line has arrived.
    fn parse_head(&mut self) -> Result<Option<PendingHead>, Response> {
        let Some(head_end) = find_head_end(&self.buf) else {
            // Not complete yet — but bound how much an unfinished head may
            // buffer, and how long any single line may grow.
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(Response::text(431, "request head too large"));
            }
            if current_line_len(&self.buf) > MAX_HEADER_LINE {
                return Err(Response::text(431, "header line too long"));
            }
            return Ok(None);
        };
        let head: Vec<u8> = self.buf.drain(..head_end).collect();
        let mut lines = split_head_lines(&head)?;
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
            _ => return Err(Response::text(400, "malformed request line")),
        };
        let version = match version {
            "HTTP/1.1" => HttpVersion::Http11,
            "HTTP/1.0" => HttpVersion::Http10,
            _ => return Err(Response::text(505, "HTTP version not supported")),
        };
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                break;
            }
            if line.len() > MAX_HEADER_LINE {
                return Err(Response::text(431, "header line too long"));
            }
            if headers.len() >= MAX_HEADERS {
                return Err(Response::text(431, "too many headers"));
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(Response::text(400, "malformed header"));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
            None => 0,
            Some((_, v)) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return Err(Response::text(400, "bad content-length")),
            },
        };
        if content_length > MAX_BODY_BYTES {
            return Err(Response::text(413, "request body too large"));
        }
        let request = Request {
            method: method.to_string(),
            path: path.to_string(),
            version,
            headers,
            body: Vec::new(),
        };
        Ok(Some(PendingHead { request, content_length }))
    }
}

/// Index just past the blank line that terminates the head, if buffered.
/// Lines end in `\n` with an optional `\r`; the head ends at the first
/// empty line.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0;
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let line = &buf[line_start..i];
        let line = if line.last() == Some(&b'\r') { &line[..line.len() - 1] } else { line };
        if line.is_empty() {
            return Some(i + 1);
        }
        line_start = i + 1;
    }
    None
}

/// Length of the last, unterminated line in the buffer.
fn current_line_len(buf: &[u8]) -> usize {
    match buf.iter().rposition(|&b| b == b'\n') {
        Some(i) => buf.len() - i - 1,
        None => buf.len(),
    }
}

/// Splits a complete head into `\n`-terminated lines with the `\r`
/// stripped, validating UTF-8 per line.
fn split_head_lines(head: &[u8]) -> Result<impl Iterator<Item = &str>, Response> {
    let text = std::str::from_utf8(head).map_err(|_| Response::text(400, "non-UTF-8 header"))?;
    Ok(text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l)))
}

/// Reads one request from a buffered stream, blocking until it is complete
/// or `deadline` elapses (measured from the request's first byte — an idle
/// wait beforehand does not count). Socket read timeouts that fire
/// mid-request are retried, so a client that pauses between its headers
/// and body is waited for instead of dropped; the deadline bounds how long
/// such a dribble may take end to end.
pub fn read_request_deadline(
    stream: &mut impl BufRead,
    deadline: Duration,
) -> Result<Request, ReadError> {
    let mut parser = RequestParser::new();
    let mut started: Option<Instant> = None;
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(request) = parser.poll().map_err(ReadError::Bad)? {
            return Ok(request);
        }
        if started.is_some_and(|t0| t0.elapsed() > deadline) {
            return Err(ReadError::Bad(Response::text(408, "request read deadline expired")));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if parser.is_idle() {
                    return Err(ReadError::Closed);
                }
                return Err(ReadError::Bad(Response::text(400, "truncated request")));
            }
            Ok(n) => {
                started.get_or_insert_with(Instant::now);
                parser.feed(&chunk[..n]);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if parser.is_idle() {
                    return Err(ReadError::Idle);
                }
                // Mid-request timeout: a slow client, not a dead one —
                // keep reading until the overall deadline says otherwise.
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// [`read_request_deadline`] with the default per-request deadline.
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, ReadError> {
    read_request_deadline(stream, DEFAULT_READ_DEADLINE)
}

/// An HTTP response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// Media type of `body`.
    pub content_type: &'static str,
    /// Response payload.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response (a trailing newline is appended).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        let mut body = body.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response { status, headers: Vec::new(), content_type: "text/plain", body: body.into() }
    }

    /// An `application/json` response from an already-serialized payload.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Overrides the media type (e.g. the Prometheus exposition type on an
    /// otherwise-plain-text body).
    pub fn with_content_type(mut self, content_type: &'static str) -> Response {
        self.content_type = content_type;
        self
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Serializes the response to wire bytes. `close` adds
    /// `Connection: close` so the client stops reusing the socket.
    pub fn to_bytes(&self, close: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if close {
            head.push_str("connection: close\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes the response onto a stream. `close` adds
    /// `Connection: close` so the client stops reusing the socket.
    pub fn write_to(&self, stream: &mut impl Write, close: bool) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes(close))?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            parse("POST /v1/extract HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/extract");
        assert_eq!(r.version, HttpVersion::Http11);
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"abcd");
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_lf_only_lines() {
        let r = parse("GET /healthz HTTP/1.1\nConnection: close\n\n").unwrap();
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
        assert!(r.wants_close());
    }

    #[test]
    fn http10_defaults_to_close_unless_keep_alive_is_sent() {
        // A bare HTTP/1.0 request closes after the response — the 1.1
        // keep-alive default must not leak onto 1.0 connections.
        let r = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(r.version, HttpVersion::Http10);
        assert!(r.wants_close(), "HTTP/1.0 without keep-alive must close");
        // Explicit keep-alive opts a 1.0 client in.
        let r = parse("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!r.wants_close());
        // And Connection: close on 1.0 stays closed.
        let r = parse("GET /healthz HTTP/1.0\r\nConnection: close\r\n\r\n").unwrap();
        assert!(r.wants_close());
        // HTTP/1.1 still defaults to keep-alive.
        let r = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert!(!r.wants_close());
    }

    #[test]
    fn eof_before_request_is_a_clean_close() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn eof_mid_request_is_a_400() {
        let Err(ReadError::Bad(resp)) = parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        else {
            panic!("truncated body must be rejected");
        };
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn rejects_garbage_with_400() {
        let Err(ReadError::Bad(resp)) = parse("not an http request\r\n\r\n") else {
            panic!("garbage must be rejected");
        };
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn rejects_unknown_version_with_505() {
        let Err(ReadError::Bad(resp)) = parse("GET / HTTP/2\r\n\r\n") else {
            panic!("unknown version must be rejected");
        };
        assert_eq!(resp.status, 505);
    }

    #[test]
    fn rejects_oversized_body_with_413() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let Err(ReadError::Bad(resp)) = parse(&raw) else {
            panic!("oversized body must be rejected");
        };
        assert_eq!(resp.status, 413);
    }

    #[test]
    fn incremental_parser_handles_split_and_pipelined_requests() {
        let mut parser = RequestParser::new();
        // Nothing yet: no request, parser idle.
        assert!(parser.poll().unwrap().is_none());
        assert!(parser.is_idle());
        // The head arrives in two fragments, split mid-header.
        parser.feed(b"POST /v1/extract HTTP/1.1\r\nContent-Le");
        assert!(parser.poll().unwrap().is_none());
        assert!(!parser.is_idle());
        parser.feed(b"ngth: 4\r\n\r\n");
        // Head complete, body not yet.
        assert!(parser.poll().unwrap().is_none());
        assert!(!parser.is_idle());
        // Body plus a pipelined second request in one read.
        parser.feed(b"abcdGET /healthz HTTP/1.1\r\n\r\n");
        let first = parser.poll().unwrap().expect("first request");
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"abcd");
        let second = parser.poll().unwrap().expect("pipelined request");
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert!(parser.is_idle());
    }

    #[test]
    fn incremental_parser_caps_unfinished_heads() {
        // One endless header line, never terminated: 431 once it passes
        // the line bound, instead of buffering without limit.
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\nx-junk: ");
        parser.feed(&vec![b'a'; MAX_HEADER_LINE + 1]);
        let err = parser.poll().expect_err("oversized header line must be rejected");
        assert_eq!(err.status, 431);
    }

    #[test]
    fn query_strings_split_off_the_route_path() {
        let r = parse("GET /metrics?format=json&trace HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.route_path(), "/metrics");
        assert_eq!(r.query_param("format"), Some("json"));
        assert_eq!(r.query_param("trace"), Some(""));
        assert_eq!(r.query_param("missing"), None);
        let plain = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(plain.route_path(), "/metrics");
        assert_eq!(plain.query_param("format"), None);
    }

    #[test]
    fn response_serializes_with_headers() {
        let mut out = Vec::new();
        Response::text(429, "busy")
            .with_header("retry-after", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nbusy\n"));
    }
}
