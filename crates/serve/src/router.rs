//! Maps parsed requests onto the serving endpoints.
//!
//! | route                    | behaviour                                      |
//! |--------------------------|------------------------------------------------|
//! | `POST /v1/extract`       | `{"text": …}` → one annotated sentence         |
//! | `POST /v1/extract_batch` | `{"texts": […]}` → one result per text         |
//! | `GET /healthz`           | liveness + drain status                        |
//! | `GET /metrics`           | Prometheus exposition (`?format=json` for JSON)|
//! | `GET /admin/trace`       | flight-recorder dump (recent + slowest traces) |
//! | `POST /admin/reload`     | atomically swap in the checkpoint from disk    |
//! | `POST /admin/shutdown`   | begin graceful drain                           |
//!
//! Extraction requests go through the [`Batcher`]; admin and introspection
//! routes answer inline on the connection thread.
//!
//! Every extraction response — success or error — carries the request's
//! trace id as an `x-trace-id` header, and `?trace=1` inlines the full
//! per-stage [`TraceRecord`](ner_obs::trace::TraceRecord) into the JSON
//! body under a `"trace"` key (the default body is unchanged, preserving
//! byte-identity with offline extraction).

use crate::batcher::{Batcher, Outcome, SubmitError};
use crate::http::{Request, Response};
use crate::prometheus;
use crate::state::ServeState;
use ner_obs::trace::TraceCtx;
use ner_text::Sentence;
use serde::{Deserialize, Serialize, Value};
use std::time::{Duration, Instant};

#[derive(Deserialize)]
struct ExtractRequest {
    text: String,
}

#[derive(Deserialize)]
struct ExtractBatchRequest {
    texts: Vec<String>,
}

/// One annotated sentence as the wire format: surface tokens, entity spans
/// (token-index `[start, end)` plus label), and the bracket rendering.
#[derive(Serialize)]
struct ExtractResponse {
    tokens: Vec<String>,
    entities: Vec<ner_text::EntitySpan>,
    render: String,
}

impl ExtractResponse {
    fn from_sentence(s: Sentence) -> ExtractResponse {
        ExtractResponse {
            render: s.render_brackets(),
            tokens: s.tokens.into_iter().map(|t| t.text).collect(),
            entities: s.entities,
        }
    }
}

#[derive(Serialize)]
struct ExtractBatchResponse {
    results: Vec<ExtractResponse>,
}

#[derive(Serialize)]
struct HealthResponse {
    status: String,
    reloads: u64,
}

#[derive(Serialize)]
struct ReloadResponse {
    status: String,
    reloads: u64,
}

/// Dispatches one request. Never panics on malformed input — every error
/// path maps to a 4xx/5xx the connection loop writes back. `trace` is the
/// per-request context the server opened at ingress; the extraction
/// routes seal it and stamp its id onto the response.
pub fn route(req: &Request, state: &ServeState, batcher: &Batcher, trace: &TraceCtx) -> Response {
    match (req.method.as_str(), req.route_path()) {
        ("POST", "/v1/extract") => extract(req, state, batcher, trace),
        ("POST", "/v1/extract_batch") => extract_batch(req, state, batcher, trace),
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(req),
        ("GET", "/admin/trace") => admin_trace(),
        ("POST", "/admin/reload") => reload(state),
        ("POST", "/admin/shutdown") => shutdown(state),
        (_, "/v1/extract" | "/v1/extract_batch" | "/admin/reload" | "/admin/shutdown") => {
            Response::text(405, "use POST").with_header("allow", "POST")
        }
        (_, "/healthz" | "/metrics" | "/admin/trace") => {
            Response::text(405, "use GET").with_header("allow", "GET")
        }
        _ => Response::text(404, format!("no route for {}", req.route_path())),
    }
}

/// Whether the client opted into an inline `"trace"` object. Unknown
/// values are a client error, mirroring `?format=` on `/metrics`.
fn wants_trace(req: &Request) -> Result<bool, Response> {
    match req.query_param("trace") {
        None | Some("0") | Some("false") => Ok(false),
        Some("1") | Some("true") => Ok(true),
        Some(other) => {
            Err(Response::text(400, format!("unknown ?trace= value {other:?} (1|0|true|false)")))
        }
    }
}

/// Seals the trace with the response's status and stamps `x-trace-id`.
fn finish_trace(resp: Response, trace: &TraceCtx) -> Response {
    let record = trace.finish(u64::from(resp.status));
    resp.with_header("x-trace-id", record.id)
}

/// Appends the sealed trace record under a `"trace"` key. The default
/// response body never carries the key, keeping successful extraction
/// bodies byte-identical to offline `extract`.
fn attach_trace(body: &mut Value, record: &ner_obs::trace::TraceRecord) {
    if let Value::Object(fields) = body {
        fields.push(("trace".to_string(), record.serialize()));
    }
}

fn extract(req: &Request, state: &ServeState, batcher: &Batcher, trace: &TraceCtx) -> Response {
    let inline = match wants_trace(req) {
        Ok(w) => w,
        Err(resp) => return finish_trace(resp, trace),
    };
    let parsed: ExtractRequest = match parse_body(req) {
        Ok(p) => p,
        Err(resp) => return finish_trace(resp, trace),
    };
    let deadline = Instant::now() + state.config.request_timeout;
    match score_one(batcher, parsed.text, deadline, trace) {
        Ok(sentence) => {
            let mut body = ExtractResponse::from_sentence(sentence).serialize();
            let record = trace.finish(200);
            if inline {
                attach_trace(&mut body, &record);
            }
            json_ok(serde_json::to_string(&body)).with_header("x-trace-id", record.id)
        }
        Err(resp) => finish_trace(resp, trace),
    }
}

fn extract_batch(
    req: &Request,
    state: &ServeState,
    batcher: &Batcher,
    trace: &TraceCtx,
) -> Response {
    let inline = match wants_trace(req) {
        Ok(w) => w,
        Err(resp) => return finish_trace(resp, trace),
    };
    let parsed: ExtractBatchRequest = match parse_body(req) {
        Ok(p) => p,
        Err(resp) => return finish_trace(resp, trace),
    };
    let deadline = Instant::now() + state.config.request_timeout;
    // Each text is its own queue entry, so one oversized client request
    // still interleaves fairly with concurrent single extractions — and is
    // subject to the same queue bound. Every entry carries a clone of the
    // same request trace, so stage events from all items accumulate on it
    // (they may overlap in time when items score in parallel).
    let mut receivers = Vec::with_capacity(parsed.texts.len());
    for text in parsed.texts {
        match batcher.submit_traced(text, deadline, Some(trace.clone())) {
            Ok(rx) => receivers.push(rx),
            Err(e) => return finish_trace(submit_error(e), trace),
        }
    }
    let mut results = Vec::with_capacity(receivers.len());
    for rx in receivers {
        match wait_outcome(rx, deadline) {
            Ok(sentence) => results.push(ExtractResponse::from_sentence(sentence)),
            Err(resp) => return finish_trace(resp, trace),
        }
    }
    let mut body = ExtractBatchResponse { results }.serialize();
    let record = trace.finish(200);
    if inline {
        attach_trace(&mut body, &record);
    }
    json_ok(serde_json::to_string(&body)).with_header("x-trace-id", record.id)
}

/// Submits one text and blocks until its outcome (or the deadline).
fn score_one(
    batcher: &Batcher,
    text: String,
    deadline: Instant,
    trace: &TraceCtx,
) -> Result<Sentence, Response> {
    let rx = batcher.submit_traced(text, deadline, Some(trace.clone())).map_err(submit_error)?;
    wait_outcome(rx, deadline)
}

fn wait_outcome(
    rx: std::sync::mpsc::Receiver<Outcome>,
    deadline: Instant,
) -> Result<Sentence, Response> {
    // Small slack past the deadline: the dispatcher answers TimedOut
    // itself for expired requests; the slack just covers scheduling skew
    // so we prefer its verdict over racing it.
    let wait = deadline.saturating_duration_since(Instant::now()) + Duration::from_millis(100);
    match rx.recv_timeout(wait) {
        Ok(Outcome::Scored(sentence)) => Ok(sentence),
        Ok(Outcome::TimedOut) => Err(Response::text(408, "request deadline expired")),
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            Err(Response::text(408, "request deadline expired"))
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            // The dispatcher dropped the channel without answering — only
            // possible if it is gone; surface as unavailable.
            Err(Response::text(503, "scoring backend unavailable"))
        }
    }
}

fn submit_error(e: SubmitError) -> Response {
    match e {
        SubmitError::QueueFull => {
            Response::text(429, "queue full, retry shortly").with_header("retry-after", "1")
        }
        SubmitError::ShuttingDown => Response::text(503, "server is draining"),
    }
}

fn healthz(state: &ServeState) -> Response {
    let status = if state.is_shutting_down() { "draining" } else { "ok" };
    let body = HealthResponse { status: status.to_string(), reloads: state.reload_count() };
    json_ok(serde_json::to_string(&body))
}

/// Renders the live `ner-obs` registry. The default (and
/// `?format=prometheus`) is Prometheus text exposition with `# TYPE`
/// lines and cumulative histogram buckets; `?format=json` returns a JSON
/// object of counters, gauges, and histogram summaries; anything else is
/// a 400.
fn metrics(req: &Request) -> Response {
    match req.query_param("format") {
        None | Some("prometheus") => {
            Response::text(200, prometheus::render()).with_content_type(prometheus::CONTENT_TYPE)
        }
        Some("json") => {
            let pairs = |kv: Vec<(String, f64)>| {
                Value::Object(kv.into_iter().map(|(n, v)| (n, Value::Num(v))).collect())
            };
            let histograms = Value::Array(
                ner_obs::histogram_summaries().iter().map(|h| h.serialize()).collect(),
            );
            let body = Value::Object(vec![
                ("counters".to_string(), pairs(ner_obs::counters())),
                ("gauges".to_string(), pairs(ner_obs::gauges())),
                ("histograms".to_string(), histograms),
            ]);
            json_ok(serde_json::to_string(&body))
        }
        Some(other) => {
            Response::text(400, format!("unknown ?format= value {other:?} (prometheus|json)"))
        }
    }
}

/// Dumps the flight recorder: the last completed traces plus the pinned
/// slowest ones, as one JSON object.
fn admin_trace() -> Response {
    json_ok(serde_json::to_string(&ner_obs::trace::flight_snapshot()))
}

fn reload(state: &ServeState) -> Response {
    if state.is_shutting_down() {
        return Response::text(503, "server is draining");
    }
    match state.reload_from_disk() {
        Ok(reloads) => {
            ner_obs::info(format!("checkpoint reloaded (#{reloads})"));
            json_ok(serde_json::to_string(&ReloadResponse {
                status: "reloaded".to_string(),
                reloads,
            }))
        }
        Err(e) => Response::text(500, format!("reload failed: {e}")),
    }
}

fn shutdown(state: &ServeState) -> Response {
    state.begin_shutdown();
    ner_obs::info("shutdown requested; draining");
    Response::text(200, "draining")
}

fn parse_body<T: Deserialize>(req: &Request) -> Result<T, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::text(400, "body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| Response::text(400, format!("bad request body: {e}")))
}

fn json_ok(body: Result<String, serde_json::Error>) -> Response {
    match body {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::text(500, format!("serialization error: {e}")),
    }
}
