//! Maps parsed requests onto the serving endpoints.
//!
//! | route                    | behaviour                                      |
//! |--------------------------|------------------------------------------------|
//! | `POST /v1/extract`       | `{"text": …}` → one annotated sentence         |
//! | `POST /v1/extract_batch` | `{"texts": […]}` → one result per text         |
//! | `GET /healthz`           | liveness + drain status                        |
//! | `GET /metrics`           | live `ner-obs` counters/gauges/histograms      |
//! | `POST /admin/reload`     | atomically swap in the checkpoint from disk    |
//! | `POST /admin/shutdown`   | begin graceful drain                           |
//!
//! Extraction requests go through the [`Batcher`]; admin and introspection
//! routes answer inline on the connection thread.

use crate::batcher::{Batcher, Outcome, SubmitError};
use crate::http::{Request, Response};
use crate::state::ServeState;
use ner_text::Sentence;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

#[derive(Deserialize)]
struct ExtractRequest {
    text: String,
}

#[derive(Deserialize)]
struct ExtractBatchRequest {
    texts: Vec<String>,
}

/// One annotated sentence as the wire format: surface tokens, entity spans
/// (token-index `[start, end)` plus label), and the bracket rendering.
#[derive(Serialize)]
struct ExtractResponse {
    tokens: Vec<String>,
    entities: Vec<ner_text::EntitySpan>,
    render: String,
}

impl ExtractResponse {
    fn from_sentence(s: Sentence) -> ExtractResponse {
        ExtractResponse {
            render: s.render_brackets(),
            tokens: s.tokens.into_iter().map(|t| t.text).collect(),
            entities: s.entities,
        }
    }
}

#[derive(Serialize)]
struct ExtractBatchResponse {
    results: Vec<ExtractResponse>,
}

#[derive(Serialize)]
struct HealthResponse {
    status: String,
    reloads: u64,
}

#[derive(Serialize)]
struct ReloadResponse {
    status: String,
    reloads: u64,
}

/// Dispatches one request. Never panics on malformed input — every error
/// path maps to a 4xx/5xx the connection loop writes back.
pub fn route(req: &Request, state: &ServeState, batcher: &Batcher) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/extract") => extract(req, state, batcher),
        ("POST", "/v1/extract_batch") => extract_batch(req, state, batcher),
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(),
        ("POST", "/admin/reload") => reload(state),
        ("POST", "/admin/shutdown") => shutdown(state),
        (_, "/v1/extract" | "/v1/extract_batch" | "/admin/reload" | "/admin/shutdown") => {
            Response::text(405, "use POST").with_header("allow", "POST")
        }
        (_, "/healthz" | "/metrics") => Response::text(405, "use GET").with_header("allow", "GET"),
        _ => Response::text(404, format!("no route for {}", req.path)),
    }
}

fn extract(req: &Request, state: &ServeState, batcher: &Batcher) -> Response {
    let parsed: ExtractRequest = match parse_body(req) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let deadline = Instant::now() + state.config.request_timeout;
    match score_one(batcher, parsed.text, deadline) {
        Ok(sentence) => json_ok(serde_json::to_string(&ExtractResponse::from_sentence(sentence))),
        Err(resp) => resp,
    }
}

fn extract_batch(req: &Request, state: &ServeState, batcher: &Batcher) -> Response {
    let parsed: ExtractBatchRequest = match parse_body(req) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let deadline = Instant::now() + state.config.request_timeout;
    // Each text is its own queue entry, so one oversized client request
    // still interleaves fairly with concurrent single extractions — and is
    // subject to the same queue bound.
    let mut receivers = Vec::with_capacity(parsed.texts.len());
    for text in parsed.texts {
        match batcher.submit(text, deadline) {
            Ok(rx) => receivers.push(rx),
            Err(e) => return submit_error(e),
        }
    }
    let mut results = Vec::with_capacity(receivers.len());
    for rx in receivers {
        match wait_outcome(rx, deadline) {
            Ok(sentence) => results.push(ExtractResponse::from_sentence(sentence)),
            Err(resp) => return resp,
        }
    }
    json_ok(serde_json::to_string(&ExtractBatchResponse { results }))
}

/// Submits one text and blocks until its outcome (or the deadline).
fn score_one(batcher: &Batcher, text: String, deadline: Instant) -> Result<Sentence, Response> {
    let rx = batcher.submit(text, deadline).map_err(submit_error)?;
    wait_outcome(rx, deadline)
}

fn wait_outcome(
    rx: std::sync::mpsc::Receiver<Outcome>,
    deadline: Instant,
) -> Result<Sentence, Response> {
    // Small slack past the deadline: the dispatcher answers TimedOut
    // itself for expired requests; the slack just covers scheduling skew
    // so we prefer its verdict over racing it.
    let wait = deadline.saturating_duration_since(Instant::now()) + Duration::from_millis(100);
    match rx.recv_timeout(wait) {
        Ok(Outcome::Scored(sentence)) => Ok(sentence),
        Ok(Outcome::TimedOut) => Err(Response::text(408, "request deadline expired")),
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            Err(Response::text(408, "request deadline expired"))
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            // The dispatcher dropped the channel without answering — only
            // possible if it is gone; surface as unavailable.
            Err(Response::text(503, "scoring backend unavailable"))
        }
    }
}

fn submit_error(e: SubmitError) -> Response {
    match e {
        SubmitError::QueueFull => {
            Response::text(429, "queue full, retry shortly").with_header("retry-after", "1")
        }
        SubmitError::ShuttingDown => Response::text(503, "server is draining"),
    }
}

fn healthz(state: &ServeState) -> Response {
    let status = if state.is_shutting_down() { "draining" } else { "ok" };
    let body = HealthResponse { status: status.to_string(), reloads: state.reload_count() };
    json_ok(serde_json::to_string(&body))
}

/// Renders the live `ner-obs` registry as plain text, one metric per line
/// (Prometheus-like exposition: counters/gauges as `name value`, histogram
/// summaries as labeled quantile fields).
fn metrics() -> Response {
    let mut out = String::new();
    for (name, value) in ner_obs::counters() {
        out.push_str(&format!("counter {name} {value}\n"));
    }
    for (name, value) in ner_obs::gauges() {
        out.push_str(&format!("gauge {name} {value}\n"));
    }
    for h in ner_obs::histogram_summaries() {
        out.push_str(&format!(
            "histogram {} count={} mean={:.1} p50={:.1} p90={:.1} p99={:.1} max={:.1}\n",
            h.name, h.count, h.mean, h.p50, h.p90, h.p99, h.max
        ));
    }
    Response::text(200, out)
}

fn reload(state: &ServeState) -> Response {
    if state.is_shutting_down() {
        return Response::text(503, "server is draining");
    }
    match state.reload_from_disk() {
        Ok(reloads) => {
            ner_obs::info(format!("checkpoint reloaded (#{reloads})"));
            json_ok(serde_json::to_string(&ReloadResponse {
                status: "reloaded".to_string(),
                reloads,
            }))
        }
        Err(e) => Response::text(500, format!("reload failed: {e}")),
    }
}

fn shutdown(state: &ServeState) -> Response {
    state.begin_shutdown();
    ner_obs::info("shutdown requested; draining");
    Response::text(200, "draining")
}

fn parse_body<T: Deserialize>(req: &Request) -> Result<T, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::text(400, "body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| Response::text(400, format!("bad request body: {e}")))
}

fn json_ok(body: Result<String, serde_json::Error>) -> Response {
    match body {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::text(500, format!("serialization error: {e}")),
    }
}
