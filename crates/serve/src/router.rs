//! Maps parsed requests onto the serving endpoints.
//!
//! | route                    | behaviour                                      |
//! |--------------------------|------------------------------------------------|
//! | `POST /v1/extract`       | `{"text": …}` → one annotated sentence         |
//! | `POST /v1/extract_batch` | `{"texts": […]}` → one result per text         |
//! | `GET /healthz`           | liveness + drain status                        |
//! | `GET /metrics`           | Prometheus exposition (`?format=json` for JSON)|
//! | `GET /admin/trace`       | flight-recorder dump (recent + slowest traces) |
//! | `POST /admin/reload`     | atomically swap the checkpoint into all replicas |
//! | `POST /admin/shutdown`   | begin graceful drain                           |
//!
//! Routing is **nonblocking**: [`dispatch`] either answers immediately
//! ([`Routed::Done`] — admin and introspection routes, and every error
//! path) or submits the texts to the [`Batcher`] and hands back a
//! [`PendingExtract`] the poll loop re-polls each tick ([`Routed::Pending`]).
//! No connection ever holds a thread hostage waiting for the scorer.
//!
//! Every extraction response — success or error — carries the request's
//! trace id as an `x-trace-id` header, and `?trace=1` inlines the full
//! per-stage [`TraceRecord`](ner_obs::trace::TraceRecord) into the JSON
//! body under a `"trace"` key (the default body is unchanged, preserving
//! byte-identity with offline extraction).

use crate::batcher::{Batcher, Outcome, SubmitError};
use crate::http::{Request, Response};
use crate::prometheus;
use crate::state::ServeState;
use ner_obs::trace::TraceCtx;
use ner_text::Sentence;
use serde::{Deserialize, Serialize, Value};
use std::time::{Duration, Instant};

/// Slack past the request deadline before the router gives up on the
/// reply channel itself: the dispatcher answers `TimedOut` for expired
/// requests, so the slack only covers scheduling skew — we prefer its
/// verdict over racing it.
const DEADLINE_SLACK: Duration = Duration::from_millis(100);

#[derive(Deserialize)]
struct ExtractRequest {
    text: String,
}

#[derive(Deserialize)]
struct ExtractBatchRequest {
    texts: Vec<String>,
}

/// One annotated sentence as the wire format: surface tokens, entity spans
/// (token-index `[start, end)` plus label), and the bracket rendering.
#[derive(Serialize)]
struct ExtractResponse {
    tokens: Vec<String>,
    entities: Vec<ner_text::EntitySpan>,
    render: String,
}

impl ExtractResponse {
    fn from_sentence(s: Sentence) -> ExtractResponse {
        ExtractResponse {
            render: s.render_brackets(),
            tokens: s.tokens.into_iter().map(|t| t.text).collect(),
            entities: s.entities,
        }
    }
}

#[derive(Serialize)]
struct ExtractBatchResponse {
    results: Vec<ExtractResponse>,
}

#[derive(Serialize)]
struct HealthResponse {
    status: String,
    reloads: u64,
}

#[derive(Serialize)]
struct ReloadResponse {
    status: String,
    reloads: u64,
}

/// The result of routing one request.
pub enum Routed {
    /// The response is ready now.
    Done(Response),
    /// The request was accepted by the batcher; poll
    /// [`PendingExtract::poll`] until it yields the response.
    Pending(PendingExtract),
}

/// An extraction in flight: reply channels the dispatchers will answer,
/// polled without blocking from the connection's poll loop.
pub struct PendingExtract {
    /// One receiver per submitted text, in response order.
    receivers: Vec<std::sync::mpsc::Receiver<Outcome>>,
    /// Scored sentences as they resolve (index-aligned with `receivers`).
    scored: Vec<Option<Sentence>>,
    /// `extract_batch` wraps results in `{"results": […]}`; a single
    /// extract answers the bare object.
    batch: bool,
    inline_trace: bool,
    deadline: Instant,
    trace: TraceCtx,
}

impl PendingExtract {
    /// Checks the reply channels; `Some` once the response is ready. Never
    /// blocks. After it yields, further calls would answer 503 — callers
    /// consume the pending on `Some`.
    pub fn poll(&mut self) -> Option<Response> {
        for (i, rx) in self.receivers.iter().enumerate() {
            if self.scored[i].is_some() {
                continue;
            }
            match rx.try_recv() {
                Ok(Outcome::Scored(sentence)) => self.scored[i] = Some(sentence),
                Ok(Outcome::TimedOut) => {
                    return Some(finish_trace(
                        Response::text(408, "request deadline expired"),
                        &self.trace,
                    ));
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => {}
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    // The dispatcher dropped the channel without answering
                    // — only possible if it is gone; surface as
                    // unavailable.
                    return Some(finish_trace(
                        Response::text(503, "scoring backend unavailable"),
                        &self.trace,
                    ));
                }
            }
        }
        if self.scored.iter().all(Option::is_some) {
            return Some(self.render());
        }
        if Instant::now() > self.deadline + DEADLINE_SLACK {
            return Some(finish_trace(
                Response::text(408, "request deadline expired"),
                &self.trace,
            ));
        }
        None
    }

    /// Serializes the completed extraction, sealing the trace.
    fn render(&mut self) -> Response {
        let sentences: Vec<Sentence> =
            self.scored.iter_mut().map(|s| s.take().expect("all scored")).collect();
        let mut body = if self.batch {
            ExtractBatchResponse {
                results: sentences.into_iter().map(ExtractResponse::from_sentence).collect(),
            }
            .serialize()
        } else {
            let sentence = sentences.into_iter().next().expect("one scored sentence");
            ExtractResponse::from_sentence(sentence).serialize()
        };
        let record = self.trace.finish(200);
        if self.inline_trace {
            attach_trace(&mut body, &record);
        }
        json_ok(serde_json::to_string(&body)).with_header("x-trace-id", record.id)
    }
}

/// Dispatches one request without blocking. Never panics on malformed
/// input — every error path maps to a 4xx/5xx. `trace` is the per-request
/// context opened at ingress; the extraction routes seal it and stamp its
/// id onto the response.
pub fn dispatch(req: &Request, state: &ServeState, batcher: &Batcher, trace: &TraceCtx) -> Routed {
    match (req.method.as_str(), req.route_path()) {
        ("POST", "/v1/extract") => begin_extract(req, state, batcher, trace, false),
        ("POST", "/v1/extract_batch") => begin_extract(req, state, batcher, trace, true),
        ("GET", "/healthz") => Routed::Done(healthz(state)),
        ("GET", "/metrics") => Routed::Done(metrics(req)),
        ("GET", "/admin/trace") => Routed::Done(admin_trace()),
        ("POST", "/admin/reload") => Routed::Done(reload(state)),
        ("POST", "/admin/shutdown") => Routed::Done(shutdown(state)),
        (_, "/v1/extract" | "/v1/extract_batch" | "/admin/reload" | "/admin/shutdown") => {
            Routed::Done(Response::text(405, "use POST").with_header("allow", "POST"))
        }
        (_, "/healthz" | "/metrics" | "/admin/trace") => {
            Routed::Done(Response::text(405, "use GET").with_header("allow", "GET"))
        }
        _ => Routed::Done(Response::text(404, format!("no route for {}", req.route_path()))),
    }
}

/// Whether the client opted into an inline `"trace"` object. Unknown
/// values are a client error, mirroring `?format=` on `/metrics`.
fn wants_trace(req: &Request) -> Result<bool, Response> {
    match req.query_param("trace") {
        None | Some("0") | Some("false") => Ok(false),
        Some("1") | Some("true") => Ok(true),
        Some(other) => {
            Err(Response::text(400, format!("unknown ?trace= value {other:?} (1|0|true|false)")))
        }
    }
}

/// Seals the trace with the response's status and stamps `x-trace-id`.
fn finish_trace(resp: Response, trace: &TraceCtx) -> Response {
    let record = trace.finish(u64::from(resp.status));
    resp.with_header("x-trace-id", record.id)
}

/// Appends the sealed trace record under a `"trace"` key. The default
/// response body never carries the key, keeping successful extraction
/// bodies byte-identical to offline `extract`.
fn attach_trace(body: &mut Value, record: &ner_obs::trace::TraceRecord) {
    if let Value::Object(fields) = body {
        fields.push(("trace".to_string(), record.serialize()));
    }
}

/// Parses an extraction request and submits its text(s) to the batcher.
/// Each text is its own queue entry, so one oversized client request
/// still interleaves fairly with concurrent single extractions — and is
/// subject to the same admission control. Every entry carries a clone of
/// the same request trace, so stage events from all items accumulate on
/// it (they may overlap in time when items score in parallel).
fn begin_extract(
    req: &Request,
    state: &ServeState,
    batcher: &Batcher,
    trace: &TraceCtx,
    batch: bool,
) -> Routed {
    let inline_trace = match wants_trace(req) {
        Ok(w) => w,
        Err(resp) => return Routed::Done(finish_trace(resp, trace)),
    };
    let texts: Vec<String> = if batch {
        match parse_body::<ExtractBatchRequest>(req) {
            Ok(p) => p.texts,
            Err(resp) => return Routed::Done(finish_trace(resp, trace)),
        }
    } else {
        match parse_body::<ExtractRequest>(req) {
            Ok(p) => vec![p.text],
            Err(resp) => return Routed::Done(finish_trace(resp, trace)),
        }
    };
    let deadline = Instant::now() + state.config.request_timeout;
    let mut receivers = Vec::with_capacity(texts.len());
    for text in texts {
        match batcher.submit_traced(text, deadline, Some(trace.clone())) {
            Ok(rx) => receivers.push(rx),
            // Rejecting mid-batch drops the already-accepted receivers;
            // their dispatcher sends fail harmlessly.
            Err(e) => return Routed::Done(finish_trace(submit_error(e), trace)),
        }
    }
    let scored = receivers.iter().map(|_| None).collect();
    Routed::Pending(PendingExtract {
        receivers,
        scored,
        batch,
        inline_trace,
        deadline,
        trace: trace.clone(),
    })
}

fn submit_error(e: SubmitError) -> Response {
    match e {
        SubmitError::QueueFull => {
            Response::text(429, "queue full, retry shortly").with_header("retry-after", "1")
        }
        SubmitError::Overloaded(predicted) => {
            let retry_s = predicted.as_secs().clamp(1, 30);
            Response::text(
                429,
                format!(
                    "predicted queue wait {:.0}ms exceeds the latency budget, retry shortly",
                    predicted.as_secs_f64() * 1e3
                ),
            )
            .with_header("retry-after", retry_s.to_string())
        }
        SubmitError::ShuttingDown => Response::text(503, "server is draining"),
    }
}

fn healthz(state: &ServeState) -> Response {
    let status = if state.is_shutting_down() { "draining" } else { "ok" };
    let body = HealthResponse { status: status.to_string(), reloads: state.reload_count() };
    json_ok(serde_json::to_string(&body))
}

/// Renders the live `ner-obs` registry. The default (and
/// `?format=prometheus`) is Prometheus text exposition with `# TYPE`
/// lines and cumulative histogram buckets; `?format=json` returns a JSON
/// object of counters, gauges, and histogram summaries; anything else is
/// a 400.
fn metrics(req: &Request) -> Response {
    match req.query_param("format") {
        None | Some("prometheus") => {
            Response::text(200, prometheus::render()).with_content_type(prometheus::CONTENT_TYPE)
        }
        Some("json") => {
            let pairs = |kv: Vec<(String, f64)>| {
                Value::Object(kv.into_iter().map(|(n, v)| (n, Value::Num(v))).collect())
            };
            let histograms = Value::Array(
                ner_obs::histogram_summaries().iter().map(|h| h.serialize()).collect(),
            );
            let body = Value::Object(vec![
                ("counters".to_string(), pairs(ner_obs::counters())),
                ("gauges".to_string(), pairs(ner_obs::gauges())),
                ("histograms".to_string(), histograms),
            ]);
            json_ok(serde_json::to_string(&body))
        }
        Some(other) => {
            Response::text(400, format!("unknown ?format= value {other:?} (prometheus|json)"))
        }
    }
}

/// Dumps the flight recorder: the last completed traces plus the pinned
/// slowest ones, as one JSON object.
fn admin_trace() -> Response {
    json_ok(serde_json::to_string(&ner_obs::trace::flight_snapshot()))
}

fn reload(state: &ServeState) -> Response {
    if state.is_shutting_down() {
        return Response::text(503, "server is draining");
    }
    match state.reload_from_disk() {
        Ok(reloads) => {
            ner_obs::info(format!("checkpoint reloaded into all replicas (#{reloads})"));
            json_ok(serde_json::to_string(&ReloadResponse {
                status: "reloaded".to_string(),
                reloads,
            }))
        }
        Err(e) => Response::text(500, format!("reload failed: {e}")),
    }
}

fn shutdown(state: &ServeState) -> Response {
    state.begin_shutdown();
    ner_obs::info("shutdown requested; draining");
    Response::text(200, "draining")
}

fn parse_body<T: Deserialize>(req: &Request) -> Result<T, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::text(400, "body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| Response::text(400, format!("bad request body: {e}")))
}

fn json_ok(body: Result<String, serde_json::Error>) -> Response {
    match body {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::text(500, format!("serialization error: {e}")),
    }
}
