//! # ner-serve — the HTTP serving layer of `neural-ner`
//!
//! The survey's future-work call is an *easy-to-use, end-to-end* NER
//! toolkit; this crate is the "end" of end-to-end: it loads a
//! [`Checkpoint`](ner_core::persist::Checkpoint) and serves it over a
//! dependency-free HTTP/1.1 server built on `std::net` alone.
//!
//! ## The sharded poll loop
//!
//! Connections are not threads. An acceptor deals sockets round-robin to
//! a fixed set of `poll_shards` I/O threads; each shard drives its
//! connections with nonblocking reads and writes, feeding bytes to a
//! per-connection incremental [`http::RequestParser`] and writing
//! pipelined responses in request order. A slow client costs a buffer,
//! not a blocked thread; a client that dribbles one request past
//! `read_timeout` gets `408`, and idle keep-alives are reaped after 30 s.
//! Routing is nonblocking too: extraction requests come back from the
//! [`router`] as pending handles the shard re-polls each tick, so the
//! event loop never waits on the scorer.
//!
//! ## Replicated dynamic micro-batching
//!
//! The throughput device is the [`batcher::Batcher`] over `replicas`
//! pipeline replicas. Shards enqueue raw texts onto a bounded queue; one
//! dispatcher per replica drains up to `max_batch` requests the moment it
//! is free — batches widen from what accumulates while the previous batch
//! scores, never by holding the scorer idle — and scores them together
//! with one
//! [`NerPipeline::extract_batch`](ner_core::prelude::NerPipeline::extract_batch)
//! call on its **own** replica: parameters restored bit-identically from
//! one checkpoint, but a private compiled plan, token-feature cache, and
//! buffer pool, so the scoring hot path touches no shared lock.
//! `extract_batch` packs the batch into padded `[B,T]` buckets whose
//! backend is bit-identical to per-sentence evaluation, so a batched
//! response from any replica is **byte-identical** to scoring the same
//! text alone — concurrency buys throughput, never different answers.
//! The `exp_serving` soak harness and this crate's integration tests
//! verify that equivalence over a real socket, including under overload.
//!
//! ## Request tracing
//!
//! Every request gets a [`ner_obs::trace::TraceCtx`] at ingress. The
//! batcher stamps queue wait and batch id/size onto it, the scoring
//! dispatcher installs it thread-locally so the model's per-stage
//! `infer.{featurize,embed,encode,decode}_us` timings attribute to the
//! owning request, and the router seals it into a
//! [`TraceRecord`](ner_obs::trace::TraceRecord). Extraction responses
//! carry the id as an `x-trace-id` header; `?trace=1` inlines the full
//! per-stage record; `GET /admin/trace` dumps the always-on flight
//! recorder (last-N completed traces, slowest-K pinned).
//!
//! ## Overload & operations
//!
//! * **SLO-aware admission**: each request carries a deadline into the
//!   batcher, which predicts its completion from an EWMA of measured
//!   per-row scoring cost, the queue backlog, and the replica count — a
//!   request predicted to miss its deadline or the `slo_p99` budget is
//!   shed with `429` + `Retry-After` at the door, keeping the queue
//!   shallow enough that accepted requests meet their SLO;
//! * the bounded queue is a hard backstop (overflow → `429`); a request
//!   whose deadline passes while queued → `408` without being scored;
//! * `GET /healthz` liveness, `GET /metrics` Prometheus text exposition
//!   of the live `ner-obs` registry (`serve.queue_depth`,
//!   `serve.batch_size`, `serve.queue_wait_us`, `serve.row_cost_us`,
//!   `serve.shed_slo`, the `infer.*` family, …) — `?format=json` for the
//!   JSON form;
//! * `POST /admin/reload` rebuilds **all** replicas from a freshly
//!   restored checkpoint and flips them atomically behind a generation
//!   counter — in-flight batches finish on the old model, and no two
//!   replicas ever serve different models to the same batch;
//! * `POST /admin/shutdown` drains gracefully: the acceptor stops, live
//!   connections finish what they started, everything the batcher
//!   accepted is answered, then [`server::Server::run`] returns.
//!
//! Wired into the CLI as `neural-ner serve --ckpt model.json --addr
//! 127.0.0.1:8080 [--replicas N] [--poll-shards S] [--max-batch N]
//! [--max-wait-us T] [--queue-cap Q] [--slo-ms B] [--timeout-ms D]
//! [--read-timeout-ms R] [--threads K] [--trace-ring N]`.

#![warn(missing_docs)]

pub mod batcher;
pub mod http;
pub mod prometheus;
pub mod router;
pub mod server;
pub mod state;

pub use server::{client, Server};
pub use state::{ServeConfig, ServeState};

/// Shared fixture for this crate's unit tests: a tiny untrained pipeline
/// (deterministic predictions are all the serving layer needs).
#[cfg(test)]
pub(crate) mod test_support {
    use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
    use ner_core::model::NerModel;
    use ner_core::prelude::NerPipeline;
    use ner_core::repr::SentenceEncoder;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub fn tiny_pipeline() -> NerPipeline {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = NewsGenerator::new(GeneratorConfig::default()).dataset(&mut rng, 30);
        let encoder = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let cfg = NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 8 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 8, bidirectional: false, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.0,
            ..NerConfig::default()
        };
        let model = NerModel::new(cfg, &encoder, None, &mut rng);
        NerPipeline::new(encoder, model)
    }
}
