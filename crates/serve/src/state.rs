//! State shared by every connection thread: the hot-swappable pipeline,
//! the serving configuration, and lifecycle flags.

use ner_core::persist::Checkpoint;
use ner_core::prelude::NerPipeline;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Tunables for the serving layer. The CLI flags map onto these 1:1.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Largest batch the dispatcher scores in one `extract_batch` call.
    pub max_batch: usize,
    /// Upper bound on one idle-dispatcher sleep between queue checks.
    /// Batching itself is work-conserving — the dispatcher never holds an
    /// idle scorer back to widen a batch — so this only paces the wakeup
    /// loop while the queue is empty.
    pub max_wait: Duration,
    /// Bounded queue capacity; requests beyond it get 429 + `Retry-After`.
    pub queue_cap: usize,
    /// Per-request deadline: a request that has not been scored this long
    /// after arrival is answered 408 instead (queued or in flight).
    pub request_timeout: Duration,
    /// Artificial per-batch scoring delay — load-test instrumentation for
    /// exercising overload behaviour with a fast model. Zero in production.
    pub score_delay: Duration,
    /// How many recently completed request traces the flight recorder
    /// ring retains for `GET /admin/trace`.
    pub trace_recent: usize,
    /// How many slowest traces stay pinned alongside the ring.
    pub trace_slowest: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
            queue_cap: 1024,
            request_timeout: Duration::from_secs(10),
            score_delay: Duration::ZERO,
            trace_recent: ner_obs::trace::DEFAULT_RECENT_CAP,
            trace_slowest: ner_obs::trace::DEFAULT_SLOWEST_CAP,
        }
    }
}

/// Shared, thread-safe serving state.
pub struct ServeState {
    /// The deployed pipeline. Swapped wholesale on reload: in-flight
    /// batches keep their `Arc` clone of the old pipeline, so a reload
    /// never disturbs requests already being scored.
    pipeline: RwLock<Arc<NerPipeline>>,
    /// Where `/admin/reload` restores from (`None` disables reload).
    ckpt_path: Option<PathBuf>,
    /// The serving tunables.
    pub config: ServeConfig,
    /// Set when a graceful shutdown has been requested.
    shutting_down: AtomicBool,
    /// Completed reloads since boot.
    reloads: AtomicU64,
}

impl ServeState {
    /// Wraps a pipeline for serving. `ckpt_path` enables `/admin/reload`.
    pub fn new(
        pipeline: NerPipeline,
        ckpt_path: Option<PathBuf>,
        config: ServeConfig,
    ) -> Arc<ServeState> {
        // The flight recorder is process-global; the serving layer is its
        // only producer, so sizing it from the serve config is sound.
        ner_obs::trace::configure_flight_recorder(config.trace_recent, config.trace_slowest);
        Arc::new(ServeState {
            pipeline: RwLock::new(Arc::new(pipeline)),
            ckpt_path,
            config,
            shutting_down: AtomicBool::new(false),
            reloads: AtomicU64::new(0),
        })
    }

    /// The current pipeline. Callers hold the returned `Arc` for the whole
    /// batch they score, so a concurrent reload cannot pull the model out
    /// from under them.
    pub fn pipeline(&self) -> Arc<NerPipeline> {
        Arc::clone(&self.pipeline.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Atomically replaces the served pipeline.
    pub fn swap_pipeline(&self, fresh: NerPipeline) {
        *self.pipeline.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(fresh);
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Restores the checkpoint from disk and swaps it in. Returns the
    /// reload count after the swap.
    pub fn reload_from_disk(&self) -> Result<u64, String> {
        let path = self.ckpt_path.as_ref().ok_or("no checkpoint path configured")?;
        let fresh = Checkpoint::load(path)
            .map_err(|e| format!("cannot load {}: {e}", path.display()))?
            .restore()
            .map_err(|e| format!("cannot restore {}: {e}", path.display()))?;
        self.swap_pipeline(fresh);
        ner_obs::counter("serve.reloads", 1.0);
        Ok(self.reloads.load(Ordering::Relaxed))
    }

    /// Completed reloads since boot.
    pub fn reload_count(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Flags the server as draining; new requests are refused with 503.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }
}
