//! State shared by every poll-loop shard and dispatcher: the sharded,
//! hot-swappable pipeline replicas, the serving configuration, and
//! lifecycle flags.

use ner_core::persist::Checkpoint;
use ner_core::prelude::NerPipeline;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tunables for the serving layer. The CLI flags map onto these 1:1.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Largest batch a dispatcher scores in one `extract_batch` call.
    pub max_batch: usize,
    /// Upper bound on one idle-dispatcher sleep between queue checks.
    /// Batching itself is work-conserving — a dispatcher never holds an
    /// idle scorer back to widen a batch — so this only paces the wakeup
    /// loop while the queue is empty.
    pub max_wait: Duration,
    /// Hard backstop on queue depth; requests beyond it get 429 +
    /// `Retry-After` regardless of what the SLO model predicts.
    pub queue_cap: usize,
    /// Per-request deadline: a request that has not been scored this long
    /// after arrival is answered 408 instead (queued or in flight).
    pub request_timeout: Duration,
    /// Tail-latency budget for SLO-aware admission: a request whose
    /// predicted completion (queue backlog × measured per-row cost ÷
    /// replicas) would overshoot this budget — or its own deadline — is
    /// shed with 429 at submit time, before it can rot in the queue.
    pub slo_p99: Duration,
    /// Pipeline replicas: dispatcher threads, each owning its own
    /// compiled plan, token-feature cache, and pooled buffers, so scoring
    /// never contends on a shared lock.
    pub replicas: usize,
    /// Poll-loop shards: connection I/O threads, each owning a subset of
    /// the live sockets.
    pub poll_shards: usize,
    /// Overall per-request read deadline (request line through last body
    /// byte). Slow-loris heads and dribbled bodies are answered 408 when
    /// it expires; pauses shorter than this never drop a connection.
    pub read_timeout: Duration,
    /// Artificial per-batch scoring delay — load-test instrumentation for
    /// exercising overload behaviour with a fast model. Zero in production.
    pub score_delay: Duration,
    /// How many recently completed request traces the flight recorder
    /// ring retains for `GET /admin/trace`.
    pub trace_recent: usize,
    /// How many slowest traces stay pinned alongside the ring.
    pub trace_slowest: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
            queue_cap: 1024,
            request_timeout: Duration::from_secs(10),
            slo_p99: Duration::from_secs(10),
            replicas: 1,
            poll_shards: 2,
            read_timeout: Duration::from_secs(10),
            score_delay: Duration::ZERO,
            trace_recent: ner_obs::trace::DEFAULT_RECENT_CAP,
            trace_slowest: ner_obs::trace::DEFAULT_SLOWEST_CAP,
        }
    }
}

/// Shared, thread-safe serving state.
///
/// The deployed model lives as `replicas` independent [`NerPipeline`]s,
/// each rebuilt from the same checkpoint so their parameters — and
/// therefore their predictions — are bit-identical, while their compiled
/// plans, token-feature caches, and buffer pools are private. A dispatcher
/// pins one replica and touches no shared lock while scoring: it holds a
/// cached `Arc` and re-fetches only when the [`generation`] counter says a
/// reload happened.
///
/// [`generation`]: ServeState::generation
pub struct ServeState {
    /// One slot per replica. The `Mutex` is only taken at fetch/swap time
    /// — never on the scoring hot path, which runs on a cached `Arc`.
    replicas: Vec<Mutex<Arc<NerPipeline>>>,
    /// Bumped once per completed swap, *after* every slot holds the fresh
    /// pipeline — dispatchers watching it switch atomically between
    /// batches, never mid-batch.
    generation: AtomicU64,
    /// Where `/admin/reload` restores from (`None` disables reload).
    ckpt_path: Option<PathBuf>,
    /// The serving tunables.
    pub config: ServeConfig,
    /// Set when a graceful shutdown has been requested.
    shutting_down: AtomicBool,
    /// Completed reloads since boot.
    reloads: AtomicU64,
}

impl ServeState {
    /// Wraps a pipeline for serving, cloning it into
    /// `config.replicas` independent replicas (each with its own plan and
    /// caches). `ckpt_path` enables `/admin/reload`.
    pub fn new(
        pipeline: NerPipeline,
        ckpt_path: Option<PathBuf>,
        config: ServeConfig,
    ) -> Arc<ServeState> {
        // The flight recorder is process-global; the serving layer is its
        // only producer, so sizing it from the serve config is sound.
        ner_obs::trace::configure_flight_recorder(config.trace_recent, config.trace_slowest);
        let n = config.replicas.max(1);
        let mut replicas = Vec::with_capacity(n);
        let template = Checkpoint::capture(&pipeline);
        replicas.push(Mutex::new(Arc::new(pipeline)));
        for _ in 1..n {
            replicas.push(Mutex::new(Arc::new(restore_replica(&template))));
        }
        Arc::new(ServeState {
            replicas,
            generation: AtomicU64::new(1),
            ckpt_path,
            config,
            shutting_down: AtomicBool::new(false),
            reloads: AtomicU64::new(0),
        })
    }

    /// How many pipeline replicas are deployed.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The current swap generation. Dispatchers compare this (one atomic
    /// load per batch) against the generation their cached `Arc` was
    /// fetched at, and call [`replica`](ServeState::replica) again only
    /// when it moved — the hot path never takes a lock.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Fetches replica `index`'s current pipeline with the generation it
    /// belongs to. Callers hold the returned `Arc` for the whole batch
    /// they score, so a concurrent reload cannot pull the model out from
    /// under them.
    pub fn replica(&self, index: usize) -> (u64, Arc<NerPipeline>) {
        let gen = self.generation();
        let slot = &self.replicas[index % self.replicas.len()];
        (gen, Arc::clone(&slot.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// The current pipeline (replica 0) — the reference for parity checks
    /// and admin introspection.
    pub fn pipeline(&self) -> Arc<NerPipeline> {
        self.replica(0).1
    }

    /// Atomically replaces the served pipeline across **all** replicas:
    /// every slot is rebuilt from the new model's checkpoint, then the
    /// generation bumps once, so dispatchers switch together at their next
    /// batch boundary. In-flight batches finish on the old model.
    pub fn swap_pipeline(&self, fresh: NerPipeline) {
        let template = Checkpoint::capture(&fresh);
        let mut incoming = Vec::with_capacity(self.replicas.len());
        incoming.push(Arc::new(fresh));
        for _ in 1..self.replicas.len() {
            incoming.push(Arc::new(restore_replica(&template)));
        }
        for (slot, fresh) in self.replicas.iter().zip(incoming) {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = fresh;
        }
        self.generation.fetch_add(1, Ordering::Release);
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Restores the checkpoint from disk and swaps it into every replica.
    /// Returns the reload count after the swap.
    pub fn reload_from_disk(&self) -> Result<u64, String> {
        let path = self.ckpt_path.as_ref().ok_or("no checkpoint path configured")?;
        let fresh = Checkpoint::load(path)
            .map_err(|e| format!("cannot load {}: {e}", path.display()))?
            .restore()
            .map_err(|e| format!("cannot restore {}: {e}", path.display()))?;
        self.swap_pipeline(fresh);
        ner_obs::counter("serve.reloads", 1.0);
        Ok(self.reloads.load(Ordering::Relaxed))
    }

    /// Completed reloads since boot.
    pub fn reload_count(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Flags the server as draining; new requests are refused with 503.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }
}

/// Rebuilds one replica from a captured checkpoint. Restoration is exact —
/// the replica's parameters are byte-for-byte the template's, so replicas
/// cannot diverge — only its plan, caches, and buffers are private.
fn restore_replica(template: &Checkpoint) -> NerPipeline {
    let copy = Checkpoint {
        config: template.config.clone(),
        encoder: template.encoder.clone(),
        params: template.params.clone(),
    };
    copy.restore().expect("a captured checkpoint must restore onto its own architecture")
}
