//! The serving front end: a nonblocking, readiness-driven poll loop over
//! `std::net`, sharded across a small fixed set of I/O threads.
//!
//! The acceptor thread owns the listener and deals accepted sockets
//! round-robin to `poll_shards` shard threads over channels. Each shard
//! owns its connections outright — no lock is shared between shards — and
//! drives them with nonblocking reads and writes:
//!
//! * bytes are fed to a per-connection incremental [`RequestParser`], so a
//!   slow client costs a buffer, not a blocked thread;
//! * complete requests dispatch through the router; extraction requests
//!   come back as [`PendingExtract`]s the shard re-polls each tick, so the
//!   loop never blocks on scoring;
//! * responses are written in request order (keep-alive pipelining), with
//!   partial writes resumed on the next tick;
//! * a connection that dribbles one request past `read_timeout` is
//!   answered 408 and closed; one idle past `IDLE_TIMEOUT` (30 s) is closed
//!   silently.
//!
//! There is no thread per socket anywhere: a shard sleeps only when a full
//! tick makes no progress, briefly while extractions are in flight and a
//! little longer when fully idle.
//!
//! The shutdown sequence loses no accepted work: the acceptor closes
//! first, shards finish every request already parsed or in flight (new
//! submits are refused 503 by the batcher), and the batcher drains
//! everything it accepted before its dispatchers exit.

use crate::batcher::Batcher;
use crate::http::{RequestParser, Response};
use crate::router::{self, PendingExtract, Routed};
use crate::state::ServeState;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How long an idle keep-alive connection may sit between requests.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Acceptor sleep between empty `accept` polls.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Shard sleep when a tick made no progress but extractions are in
/// flight — short, so a scored batch turns into response bytes quickly.
const INFLIGHT_POLL: Duration = Duration::from_micros(200);

/// Shard sleep when a tick made no progress and nothing is in flight.
const IDLE_POLL: Duration = Duration::from_millis(1);

/// A bound, not-yet-running server. [`run`](Server::run) blocks until a
/// graceful shutdown completes (via `POST /admin/shutdown` or
/// [`ServeState::begin_shutdown`] from another thread).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8080`; port 0 picks an ephemeral
    /// port) over the given state.
    pub fn bind(addr: impl ToSocketAddrs, state: Arc<ServeState>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server { listener, state, addr })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for triggering shutdown or reloads in-process.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Serves until shutdown is requested, then drains and returns.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let batcher = Batcher::start(Arc::clone(&self.state));
        let shard_count = self.state.config.poll_shards.max(1);
        ner_obs::info(format!(
            "serving on http://{} ({} poll shards, {} replicas)",
            self.addr,
            shard_count,
            self.state.replica_count()
        ));

        std::thread::scope(|scope| {
            // One channel per shard; dropping the senders after the accept
            // loop is the shards' signal to drain and exit.
            let mut senders = Vec::with_capacity(shard_count);
            for shard in 0..shard_count {
                let (tx, rx) = mpsc::channel::<TcpStream>();
                senders.push(tx);
                let state = &*self.state;
                let batcher = &batcher;
                std::thread::Builder::new()
                    .name(format!("ner-serve-poll-{shard}"))
                    .spawn_scoped(scope, move || shard_loop(rx, state, batcher))
                    .expect("spawn poll shard");
            }
            let mut next_shard = 0usize;
            while !self.state.is_shutting_down() {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        // A shard only stops receiving when its channel is
                        // dropped below, so this send cannot fail while
                        // accepting.
                        let _ = senders[next_shard % senders.len()].send(stream);
                        next_shard = next_shard.wrapping_add(1);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) => {
                        ner_obs::warn(format!("accept error: {e}"));
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
            drop(senders);
        });
        // Shards are done: every accepted request has been answered. Drain
        // whatever the batcher still holds (nothing, unless a caller used
        // it directly) and join its dispatchers.
        batcher.shutdown();
        ner_obs::info("drained; server stopped");
        Ok(())
    }
}

/// One poll shard: adopts connections from its channel and ticks them
/// until the acceptor hangs up and every connection has drained.
fn shard_loop(incoming: mpsc::Receiver<TcpStream>, state: &ServeState, batcher: &Batcher) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let mut accepting = true;
        loop {
            match incoming.try_recv() {
                Ok(stream) => match Conn::adopt(stream) {
                    Ok(conn) => conns.push(conn),
                    Err(e) => ner_obs::warn(format!("could not adopt connection: {e}")),
                },
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    accepting = false;
                    break;
                }
            }
        }
        let mut progress = false;
        conns.retain_mut(|conn| {
            let step = conn.step(state, batcher);
            progress |= step.progress;
            !step.done
        });
        if !accepting && conns.is_empty() {
            return;
        }
        if !progress {
            let waiting = conns.iter().any(Conn::has_pending_extracts);
            std::thread::sleep(if waiting { INFLIGHT_POLL } else { IDLE_POLL });
        }
    }
}

/// One response slot, kept in request order for pipelining. A `Waiting`
/// slot blocks everything behind it from being written — responses go out
/// in the order their requests arrived — but later slots still poll, so a
/// batch that scores out of order loses no time once the head resolves.
enum Slot {
    /// Serialized and ready to write.
    Ready { bytes: Vec<u8>, close: bool },
    /// An extraction the batcher has not answered yet.
    Waiting { pending: PendingExtract, close: bool },
}

/// What one connection tick concluded.
struct Step {
    progress: bool,
    done: bool,
}

/// One live connection owned by a poll shard.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Responses (ready or pending) in request order.
    slots: VecDeque<Slot>,
    /// Bytes waiting for the socket to accept them.
    out: Vec<u8>,
    /// When the currently-in-progress request's first byte arrived; the
    /// per-request read deadline (slowloris/dribble bound) counts from
    /// here. `None` whenever the parser is idle.
    request_started: Option<Instant>,
    idle_since: Instant,
    /// No further reads or parses: the peer hit EOF, erred, asked to
    /// close, or sent something unparseable.
    stop_reading: bool,
    /// A `Connection: close` response has been queued; once `out` drains
    /// the connection is done.
    closing: bool,
}

impl Conn {
    fn adopt(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            parser: RequestParser::new(),
            slots: VecDeque::new(),
            out: Vec::new(),
            request_started: None,
            idle_since: Instant::now(),
            stop_reading: false,
            closing: false,
        })
    }

    /// True while any extraction is awaiting the batcher — the shard polls
    /// faster when so.
    fn has_pending_extracts(&self) -> bool {
        self.slots.iter().any(|s| matches!(s, Slot::Waiting { .. }))
    }

    /// Queues a response, stopping the read side when it will close the
    /// connection (no later pipelined request could be answered).
    fn enqueue(&mut self, slot: Slot) {
        if matches!(slot, Slot::Ready { close: true, .. } | Slot::Waiting { close: true, .. }) {
            self.stop_reading = true;
        }
        self.slots.push_back(slot);
    }

    /// One nonblocking tick: read, parse + dispatch, poll in-flight
    /// extractions, write, then judge timeouts and lifetime.
    fn step(&mut self, state: &ServeState, batcher: &Batcher) -> Step {
        let mut progress = false;

        // Read whatever the socket has.
        if !self.stop_reading {
            let mut chunk = [0u8; 4096];
            loop {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        self.stop_reading = true;
                        // EOF mid-request can never complete; EOF between
                        // requests is the normal end of keep-alive.
                        if !self.parser.is_idle() {
                            self.enqueue(Slot::Ready {
                                bytes: Response::text(400, "truncated request").to_bytes(true),
                                close: true,
                            });
                        }
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        self.parser.feed(&chunk[..n]);
                        self.request_started.get_or_insert_with(Instant::now);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return Step { progress, done: true },
                }
            }
        }

        // Parse and dispatch every complete request that arrived.
        while !self.stop_reading {
            match self.parser.poll() {
                Ok(Some(req)) => {
                    progress = true;
                    // The trace clock starts the moment the request is
                    // fully read, so queue wait, batch formation, scoring,
                    // and the response tail share one monotonic origin.
                    let trace = ner_obs::trace::TraceCtx::new(req.route_path());
                    let routed = router::dispatch(&req, state, batcher, &trace);
                    // Evaluated after dispatch, so the response to
                    // `POST /admin/shutdown` itself says close.
                    let close = req.wants_close() || state.is_shutting_down();
                    match routed {
                        Routed::Done(resp) => {
                            self.enqueue(Slot::Ready { bytes: resp.to_bytes(close), close });
                        }
                        Routed::Pending(pending) => {
                            self.enqueue(Slot::Waiting { pending, close });
                        }
                    }
                    self.request_started =
                        if self.parser.is_idle() { None } else { Some(Instant::now()) };
                }
                Ok(None) => break,
                Err(resp) => {
                    self.enqueue(Slot::Ready { bytes: resp.to_bytes(true), close: true });
                    break;
                }
            }
        }

        // The per-request read deadline: a head or body still dribbling in
        // past `read_timeout` is answered 408 and the connection closed —
        // this bounds slowloris without dropping merely-slow clients,
        // which the old fixed 250 ms read poll used to kill mid-body.
        if let Some(t0) = self.request_started {
            if t0.elapsed() > state.config.read_timeout {
                self.request_started = None;
                self.enqueue(Slot::Ready {
                    bytes: Response::text(408, "request read deadline expired").to_bytes(true),
                    close: true,
                });
            }
        }

        // Poll every in-flight extraction (not just the head, so the head
        // resolving releases already-finished followers the same tick).
        for slot in self.slots.iter_mut() {
            let Slot::Waiting { pending, close } = slot else { continue };
            let close = *close;
            if let Some(resp) = pending.poll() {
                progress = true;
                *slot = Slot::Ready { bytes: resp.to_bytes(close), close };
            }
        }

        // Move ready head-of-line responses into the write buffer.
        while let Some(Slot::Ready { .. }) = self.slots.front() {
            let Some(Slot::Ready { bytes, close }) = self.slots.pop_front() else {
                unreachable!("front checked")
            };
            self.out.extend_from_slice(&bytes);
            self.idle_since = Instant::now();
            if close {
                self.closing = true;
                // Anything pipelined behind a close is dropped; its reply
                // receivers drop with it and the dispatcher's sends fail
                // harmlessly.
                self.slots.clear();
                break;
            }
        }

        // Write as much as the socket accepts.
        while !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(0) => return Step { progress, done: true },
                Ok(n) => {
                    progress = true;
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Step { progress, done: true },
            }
        }

        let flushed = self.out.is_empty() && self.slots.is_empty();
        let done = (self.closing && self.out.is_empty())
            // Peer finished sending and everything owed is written.
            || (self.stop_reading && flushed)
            // Server draining and this connection is between requests.
            || (state.is_shutting_down() && self.parser.is_idle() && flushed)
            // Idle keep-alive expiry.
            || (self.parser.is_idle() && flushed && self.idle_since.elapsed() >= IDLE_TIMEOUT);
        Step { progress, done }
    }
}

/// A minimal blocking HTTP client — just enough for the integration tests
/// and the `exp_serving` load generator to drive a real socket without an
/// external dependency.
pub mod client {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    /// A keep-alive connection to the server.
    pub struct Conn {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    /// A response as the client sees it.
    #[derive(Debug)]
    pub struct ClientResponse {
        /// HTTP status code.
        pub status: u16,
        /// Lowercased headers.
        pub headers: Vec<(String, String)>,
        /// Body bytes as a string (all served bodies are UTF-8).
        pub body: String,
    }

    impl ClientResponse {
        /// First value of a header, by case-insensitive name.
        pub fn header(&self, name: &str) -> Option<&str> {
            let name = name.to_ascii_lowercase();
            self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
        }
    }

    impl Conn {
        /// Connects with a generous I/O timeout.
        pub fn connect(addr: SocketAddr) -> std::io::Result<Conn> {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(60)))?;
            stream.set_nodelay(true)?;
            let writer = stream.try_clone()?;
            Ok(Conn { reader: BufReader::new(stream), writer })
        }

        /// Sends `GET path`.
        pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
            self.request("GET", path, None)
        }

        /// Sends `POST path` with a JSON body.
        pub fn post(&mut self, path: &str, json: &str) -> std::io::Result<ClientResponse> {
            self.request("POST", path, Some(json))
        }

        fn request(
            &mut self,
            method: &str,
            path: &str,
            body: Option<&str>,
        ) -> std::io::Result<ClientResponse> {
            let body = body.unwrap_or("");
            let head = format!(
                "{method} {path} HTTP/1.1\r\nhost: ner-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
                body.len()
            );
            self.writer.write_all(head.as_bytes())?;
            self.writer.write_all(body.as_bytes())?;
            self.writer.flush()?;
            self.read_response()
        }

        fn read_response(&mut self) -> std::io::Result<ClientResponse> {
            let bad =
                |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
            let mut status_line = String::new();
            if self.reader.read_line(&mut status_line)? == 0 {
                return Err(bad("connection closed before status line"));
            }
            let status: u16 = status_line
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("malformed status line"))?;
            let mut headers = Vec::new();
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                if self.reader.read_line(&mut line)? == 0 {
                    return Err(bad("connection closed mid-headers"));
                }
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some((name, value)) = line.split_once(':') {
                    let name = name.trim().to_ascii_lowercase();
                    let value = value.trim().to_string();
                    if name == "content-length" {
                        content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                    }
                    headers.push((name, value));
                }
            }
            let mut body = vec![0u8; content_length];
            self.reader.read_exact(&mut body)?;
            let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
            Ok(ClientResponse { status, headers, body })
        }
    }

    /// One-shot POST on a fresh connection.
    pub fn post(addr: SocketAddr, path: &str, json: &str) -> std::io::Result<ClientResponse> {
        Conn::connect(addr)?.post(path, json)
    }

    /// One-shot GET on a fresh connection.
    pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
        Conn::connect(addr)?.get(path)
    }
}
