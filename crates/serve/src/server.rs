//! The accept loop: binds a `TcpListener`, hands each connection to a
//! thread that parses requests and routes them, and coordinates graceful
//! shutdown — stop accepting, finish every connection's in-flight request,
//! drain the batcher, then return.

use crate::batcher::Batcher;
use crate::http::{read_request, ReadError};
use crate::router;
use crate::state::ServeState;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// How long an idle keep-alive connection may sit between requests.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Socket read timeout: each expiry is one poll of the shutdown flag, so
/// idle connections notice a drain quickly instead of holding it open.
const READ_POLL: Duration = Duration::from_millis(250);

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A bound, not-yet-running server. [`run`](Server::run) blocks until a
/// graceful shutdown completes (via `POST /admin/shutdown` or
/// [`ServeState::begin_shutdown`] from another thread).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8080`; port 0 picks an ephemeral
    /// port) over the given state.
    pub fn bind(addr: impl ToSocketAddrs, state: Arc<ServeState>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server { listener, state, addr })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for triggering shutdown or reloads in-process.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Serves until shutdown is requested, then drains and returns.
    ///
    /// The shutdown sequence loses no accepted work: the accept loop
    /// closes first, connection threads finish the request they are on
    /// (new requests on live connections are refused with 503 by the
    /// batcher), and the batcher scores everything it already queued
    /// before its dispatcher exits.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut batcher = Batcher::start(Arc::clone(&self.state));
        let batcher_ref: &Batcher = &batcher;
        ner_obs::info(format!("serving on http://{}", self.addr));

        std::thread::scope(|scope| {
            let mut connections = Vec::new();
            loop {
                if self.state.is_shutting_down() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let state = Arc::clone(&self.state);
                        connections.push(scope.spawn(move || {
                            handle_connection(stream, &state, batcher_ref);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) => {
                        ner_obs::warn(format!("accept error: {e}"));
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
                // Reap finished connection threads so long-running servers
                // don't accumulate handles.
                connections.retain(|h| !h.is_finished());
            }
            for handle in connections {
                let _ = handle.join();
            }
        });
        // All connections done: drain whatever the batcher still holds.
        batcher.shutdown();
        ner_obs::info("drained; server stopped");
        Ok(())
    }
}

/// Serves one keep-alive connection until the peer closes, errors, asks to
/// close, idles past [`IDLE_TIMEOUT`], or the server drains.
fn handle_connection(stream: TcpStream, state: &ServeState, batcher: &Batcher) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut idle_since = std::time::Instant::now();
    loop {
        let req = match read_request(&mut reader) {
            Ok(req) => req,
            Err(ReadError::Idle) => {
                // No request in flight: safe moment to notice a drain or
                // hang up on a long-idle peer.
                if state.is_shutting_down() || idle_since.elapsed() >= IDLE_TIMEOUT {
                    return;
                }
                continue;
            }
            Err(ReadError::Closed) => return,
            Err(ReadError::Bad(resp)) => {
                let _ = resp.write_to(&mut writer, true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        // The trace clock starts at ingress, the moment the request is
        // fully read — so queue wait, batch formation, scoring, and the
        // response tail are all measured against one monotonic origin.
        let trace = ner_obs::trace::TraceCtx::new(req.route_path());
        let resp = router::route(&req, state, batcher, &trace);
        // Responses during drain tell clients to stop reusing the socket.
        let close = req.wants_close() || state.is_shutting_down();
        if resp.write_to(&mut writer, close).is_err() || close {
            return;
        }
        idle_since = std::time::Instant::now();
    }
}

/// A minimal blocking HTTP client — just enough for the integration tests
/// and the `exp_serving` load generator to drive a real socket without an
/// external dependency.
pub mod client {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    /// A keep-alive connection to the server.
    pub struct Conn {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    /// A response as the client sees it.
    #[derive(Debug)]
    pub struct ClientResponse {
        /// HTTP status code.
        pub status: u16,
        /// Lowercased headers.
        pub headers: Vec<(String, String)>,
        /// Body bytes as a string (all served bodies are UTF-8).
        pub body: String,
    }

    impl ClientResponse {
        /// First value of a header, by case-insensitive name.
        pub fn header(&self, name: &str) -> Option<&str> {
            let name = name.to_ascii_lowercase();
            self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
        }
    }

    impl Conn {
        /// Connects with a generous I/O timeout.
        pub fn connect(addr: SocketAddr) -> std::io::Result<Conn> {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(60)))?;
            stream.set_nodelay(true)?;
            let writer = stream.try_clone()?;
            Ok(Conn { reader: BufReader::new(stream), writer })
        }

        /// Sends `GET path`.
        pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
            self.request("GET", path, None)
        }

        /// Sends `POST path` with a JSON body.
        pub fn post(&mut self, path: &str, json: &str) -> std::io::Result<ClientResponse> {
            self.request("POST", path, Some(json))
        }

        fn request(
            &mut self,
            method: &str,
            path: &str,
            body: Option<&str>,
        ) -> std::io::Result<ClientResponse> {
            let body = body.unwrap_or("");
            let head = format!(
                "{method} {path} HTTP/1.1\r\nhost: ner-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
                body.len()
            );
            self.writer.write_all(head.as_bytes())?;
            self.writer.write_all(body.as_bytes())?;
            self.writer.flush()?;
            self.read_response()
        }

        fn read_response(&mut self) -> std::io::Result<ClientResponse> {
            let bad =
                |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
            let mut status_line = String::new();
            if self.reader.read_line(&mut status_line)? == 0 {
                return Err(bad("connection closed before status line"));
            }
            let status: u16 = status_line
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("malformed status line"))?;
            let mut headers = Vec::new();
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                if self.reader.read_line(&mut line)? == 0 {
                    return Err(bad("connection closed mid-headers"));
                }
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some((name, value)) = line.split_once(':') {
                    let name = name.trim().to_ascii_lowercase();
                    let value = value.trim().to_string();
                    if name == "content-length" {
                        content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                    }
                    headers.push((name, value));
                }
            }
            let mut body = vec![0u8; content_length];
            self.reader.read_exact(&mut body)?;
            let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
            Ok(ClientResponse { status, headers, body })
        }
    }

    /// One-shot POST on a fresh connection.
    pub fn post(addr: SocketAddr, path: &str, json: &str) -> std::io::Result<ClientResponse> {
        Conn::connect(addr)?.post(path, json)
    }

    /// One-shot GET on a fresh connection.
    pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
        Conn::connect(addr)?.get(path)
    }
}
