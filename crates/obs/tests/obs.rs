//! Integration and property tests for `ner-obs`: histogram percentiles
//! against a sorted-vector oracle, span nesting/ordering through the global
//! registry, and JSONL round trips for every event type.

use ner_obs::{Event, Histogram, HistogramSummary, LogLine, RunManifest};
use proptest::prelude::*;
use serde::{Serialize, Value};
use std::sync::Mutex;

/// The global registry is process-wide; tests that touch it serialize here.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// Exact order statistic matching the histogram's rank convention:
/// smallest value whose cumulative count reaches `ceil(q·n)`.
fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The interpolated estimate must land in the same bucket as the exact
    /// order statistic and inside the observed value range.
    #[test]
    fn histogram_quantiles_agree_with_sorted_oracle(
        values in prop::collection::vec(0.1f64..5e6, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let mut h = Histogram::latency_micros();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for &q in &qs {
            let est = h.quantile(q);
            let exact = oracle_quantile(&sorted, q);
            prop_assert!(est >= sorted[0] && est <= sorted[sorted.len() - 1],
                "q={q}: estimate {est} outside observed range");
            prop_assert_eq!(h.bucket_index(est), h.bucket_index(exact),
                "q={}: estimate {} and exact {} in different buckets", q, est, exact);
        }
    }

    /// Mean/min/max/count come straight from the stream, bucketing aside.
    #[test]
    fn histogram_moments_are_exact(
        values in prop::collection::vec(0.1f64..1e6, 1..100),
    ) {
        let mut h = Histogram::exponential(0.5, 3.0, 10);
        for &v in &values {
            h.record(v);
        }
        let s = h.summary("m");
        prop_assert_eq!(s.count, values.len() as u64);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert_eq!(s.min, values.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max, values.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Quantiles are monotone in q.
    #[test]
    fn histogram_quantiles_are_monotone(
        values in prop::collection::vec(0.1f64..1e5, 2..150),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let mut h = Histogram::latency_micros();
        for &v in &values {
            h.record(v);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
    }
}

fn round_trip(event: Event) {
    let line = LogLine { t_ms: 1234, event };
    let json = serde_json::to_string(&line).expect("serialize");
    let back: LogLine = serde_json::from_str(&json).expect("parse own output");
    assert_eq!(line, back, "JSONL round trip changed the event");
}

#[test]
fn every_event_type_round_trips_through_jsonl() {
    round_trip(Event::Message { level: "warn".into(), text: "loss went non-finite".into() });
    round_trip(Event::Counter { name: "infer.tokens".into(), value: 48213.0 });
    round_trip(Event::Gauge { name: "params.scalars".into(), value: 91344.0 });
    round_trip(Event::SpanEnd { path: "train/epoch".into(), micros: 15321.25, depth: 2 });
    round_trip(Event::SpanSummary {
        path: "train/epoch/eval".into(),
        count: 12,
        total_ms: 93.5,
        max_ms: 11.25,
    });
    round_trip(Event::Histogram(HistogramSummary {
        name: "infer.sentence_us".into(),
        count: 150,
        mean: 812.5,
        min: 90.0,
        max: 4096.0,
        p50: 700.0,
        p90: 1900.0,
        p99: 3800.0,
    }));
    round_trip(Event::Record {
        kind: "epoch".into(),
        body: Value::Object(vec![
            ("epoch".into(), Value::Num(3.0)),
            ("train_loss".into(), Value::Num(1.25)),
            ("dev_f1".into(), Value::Null),
        ]),
    });
    round_trip(Event::Manifest(RunManifest {
        name: "fig6".into(),
        version: "0.1.0".into(),
        seed: 42,
        config_signature: "fig6:seed=42:Full".into(),
        wall_clock_secs: 123.75,
        peak_tape_nodes: 15000,
        kernel_backend: "avx2 (cpu: sse2+avx2+fma)".into(),
        final_metrics: vec![("f1_bilstm".into(), 0.82), ("f1_idcnn".into(), 0.81)],
    }));
}

#[test]
fn jsonl_lines_parse_as_generic_json_too() {
    // The `report` subcommand walks lines generically; the externally
    // tagged layout must expose the variant name as the single object key.
    let line = LogLine { t_ms: 7, event: Event::Counter { name: "c".into(), value: 2.0 } };
    let json = serde_json::to_string(&line).unwrap();
    let v: Value = serde_json::from_str(&json).unwrap();
    let event = v.get("event").expect("event field");
    let fields = event.as_object().expect("tagged object");
    assert_eq!(fields.len(), 1);
    assert_eq!(fields[0].0, "Counter");
}

#[test]
fn spans_nest_paths_and_aggregate_in_order() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    ner_obs::reset();

    {
        let _outer = ner_obs::span("outer");
        for _ in 0..3 {
            let inner = ner_obs::span("inner");
            assert_eq!(inner.path(), "outer/inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    {
        let _other = ner_obs::span("other");
    }

    let report = ner_obs::span_report();
    let paths: Vec<&str> = report.iter().map(|(p, _)| p.as_str()).collect();
    assert!(paths.contains(&"outer"), "paths: {paths:?}");
    assert!(paths.contains(&"outer/inner"), "paths: {paths:?}");
    assert!(paths.contains(&"other"), "paths: {paths:?}");

    let inner = report.iter().find(|(p, _)| p == "outer/inner").unwrap();
    assert_eq!(inner.1.count, 3);
    assert!(inner.1.max_micros <= inner.1.total_micros);
    let outer = report.iter().find(|(p, _)| p == "outer").unwrap();
    assert_eq!(outer.1.count, 1);
    // The parent encloses its children, so it must dominate their total,
    // and the report is sorted by total time descending.
    assert!(outer.1.total_micros >= inner.1.total_micros);
    let totals: Vec<f64> = report.iter().map(|(_, s)| s.total_micros).collect();
    assert!(totals.windows(2).all(|w| w[0] >= w[1]), "not sorted: {totals:?}");

    ner_obs::reset();
}

#[test]
fn metrics_accumulate_without_sinks_and_jsonl_sink_records_a_run() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    ner_obs::reset();

    // Passive mode: metrics accumulate, nothing is emitted.
    assert!(!ner_obs::enabled());
    ner_obs::counter("c", 2.0);
    ner_obs::counter("c", 3.0);
    ner_obs::gauge_max("g", 10.0);
    ner_obs::gauge_max("g", 4.0);
    ner_obs::observe("h", 100.0);
    assert_eq!(ner_obs::counter_value("c"), Some(5.0));
    assert_eq!(ner_obs::gauge_value("g"), Some(10.0));
    assert_eq!(ner_obs::histogram_summary("h").unwrap().count, 1);

    // Now attach a JSONL sink and drain everything through finish().
    let dir = std::env::temp_dir().join("ner-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("run-{}.jsonl", std::process::id()));
    ner_obs::init(ner_obs::ObsConfig {
        verbosity: ner_obs::Verbosity::Quiet,
        jsonl_path: Some(path.clone()),
        stderr: false,
    })
    .unwrap();
    ner_obs::warn("synthetic warning");
    ner_obs::emit_record("epoch", &ExampleRecord { epoch: 1, loss: 0.5 });
    ner_obs::finish();

    let text = std::fs::read_to_string(&path).unwrap();
    let events: Vec<Event> = text
        .lines()
        .map(|l| serde_json::from_str::<LogLine>(l).expect("valid JSONL line").event)
        .collect();
    assert!(events.iter().any(|e| matches!(e, Event::Message { level, .. } if level == "warn")));
    assert!(events.iter().any(|e| matches!(e, Event::Record { kind, .. } if kind == "epoch")));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Counter { name, value } if name == "c" && *value == 5.0)));
    assert!(events.iter().any(|e| matches!(e, Event::Histogram(h) if h.name == "h")));

    std::fs::remove_file(&path).ok();
    ner_obs::reset();
}

#[derive(Serialize)]
struct ExampleRecord {
    epoch: usize,
    loss: f64,
}
