//! Per-request tracing: [`TraceCtx`] spans one request end to end, and a
//! global **flight recorder** keeps the last completed traces (slowest
//! pinned) for post-hoc inspection via `GET /admin/trace` or the JSONL
//! run log.
//!
//! The design is allocation-light and lock-cheap on the request path:
//!
//! * a trace is an `Arc` around a small `Mutex`-protected event vector —
//!   cloning it across the batcher thread boundary is one refcount bump;
//! * stage events are appended by whichever thread currently owns the
//!   request (connection thread, dispatcher, scoring worker) — the mutex
//!   is only ever contended for nanosecond-scale pushes;
//! * instrumented library code (e.g. the per-stage timers in
//!   `ner-core`) does not take a `TraceCtx` parameter. Instead the
//!   serving layer [`install`](TraceCtx::install)s the trace into a
//!   thread-local before scoring, and [`observe_stage`] tees each stage
//!   observation into both the global histogram and the active trace.
//!   Code running outside any trace pays one thread-local read.
//!
//! A trace is sealed exactly once by [`finish`](TraceCtx::finish), which
//! appends a final `respond` stage covering the tail (result hand-off and
//! serialization), pushes the completed [`TraceRecord`] into the flight
//! recorder, and — when a sink is installed — emits it as a `"trace"`
//! record on the JSONL run log.

use crate::{emit_record, observe};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Records (the serializable wire/log form)
// ---------------------------------------------------------------------------

/// One timed stage inside a trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceStage {
    /// Stage label, e.g. `queue_wait`, `embed`, `decode`.
    pub stage: String,
    /// Stage duration in microseconds.
    pub us: f64,
    /// Offset from the trace start (microseconds) at which the stage was
    /// recorded — i.e. when the stage *ended*.
    pub at_us: f64,
}

/// A completed trace: what `?trace=1` inlines, `GET /admin/trace` dumps,
/// and the JSONL sink logs under kind `"trace"`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Process-unique trace id (16 hex digits), also sent as the
    /// `x-trace-id` response header.
    pub id: String,
    /// What the request hit, e.g. `/v1/extract`.
    pub endpoint: String,
    /// HTTP status the request was answered with.
    pub status: u64,
    /// End-to-end duration in microseconds (ingress to seal).
    pub total_us: f64,
    /// Id of the scoring batch this request rode in (0 = never batched,
    /// e.g. a 4xx before scoring).
    pub batch_id: u64,
    /// How many requests shared that batch.
    pub batch_size: u64,
    /// Timed stages in completion order.
    pub stages: Vec<TraceStage>,
}

impl TraceRecord {
    /// Sum of all stage durations — for batch requests whose items score
    /// in parallel this can exceed [`total_us`](TraceRecord::total_us).
    pub fn stage_sum_us(&self) -> f64 {
        self.stages.iter().map(|s| s.us).sum()
    }

    /// Total microseconds attributed to `stage` (a label may repeat, e.g.
    /// once per item of a batch request).
    pub fn stage_us(&self, stage: &str) -> f64 {
        self.stages.iter().filter(|s| s.stage == stage).map(|s| s.us).sum()
    }
}

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

/// Finalizer of splitmix64 — a bijection on `u64`, so distinct inputs give
/// distinct ids without any coordination.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Process-unique 64-bit trace id: a per-boot random-ish seed (clock ⊕
/// pid) mixed with an atomic counter through a bijective finalizer.
fn next_trace_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        nanos ^ (u64::from(std::process::id()) << 32)
    });
    splitmix64(seed ^ COUNTER.fetch_add(1, Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// TraceCtx
// ---------------------------------------------------------------------------

/// Mutable trace state behind the shared mutex.
#[derive(Default)]
struct Data {
    endpoint: String,
    stages: Vec<TraceStage>,
    /// Named time marks (`at_us` offsets); last write wins per name.
    marks: Vec<(&'static str, f64)>,
    batch_id: u64,
    batch_size: u64,
    status: u64,
    total_us: f64,
}

struct Shared {
    id: u64,
    start: Instant,
    finished: AtomicBool,
    data: Mutex<Data>,
}

/// A live per-request trace. Clones share state (`Arc`), so the serving
/// layer can hand one clone to the batcher while the connection thread
/// keeps another; whoever finishes last still appends to the same record.
#[derive(Clone)]
pub struct TraceCtx {
    shared: Arc<Shared>,
}

impl TraceCtx {
    /// Opens a trace for one request against `endpoint`. The clock starts
    /// now; every stage offset is relative to this instant.
    pub fn new(endpoint: &str) -> TraceCtx {
        TraceCtx {
            shared: Arc::new(Shared {
                id: next_trace_id(),
                start: Instant::now(),
                finished: AtomicBool::new(false),
                data: Mutex::new(Data { endpoint: endpoint.to_string(), ..Data::default() }),
            }),
        }
    }

    /// The trace id as 16 lowercase hex digits.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.shared.id)
    }

    /// Microseconds since the trace opened.
    pub fn elapsed_us(&self) -> f64 {
        self.shared.start.elapsed().as_secs_f64() * 1e6
    }

    fn data(&self) -> std::sync::MutexGuard<'_, Data> {
        self.shared.data.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends a stage with an explicit duration, stamped at the current
    /// offset.
    pub fn stage(&self, name: &str, us: f64) {
        let at_us = self.elapsed_us();
        self.data().stages.push(TraceStage { stage: name.to_string(), us, at_us });
    }

    /// Sets (or moves) a named time mark to *now* — a lightweight anchor
    /// for [`stage_since_mark`](TraceCtx::stage_since_mark). Marks are not
    /// serialized into the record.
    pub fn mark(&self, name: &'static str) {
        let at_us = self.elapsed_us();
        let mut data = self.data();
        match data.marks.iter_mut().find(|(n, _)| *n == name) {
            Some((_, at)) => *at = at_us,
            None => data.marks.push((name, at_us)),
        }
    }

    /// Appends a stage whose duration is measured from the named mark (or
    /// from the trace start when the mark was never set) to now.
    pub fn stage_since_mark(&self, name: &str, mark: &str) {
        let at_us = self.elapsed_us();
        let mut data = self.data();
        let from = data.marks.iter().find(|(n, _)| *n == mark).map_or(0.0, |(_, at)| *at);
        let us = (at_us - from).max(0.0);
        data.stages.push(TraceStage { stage: name.to_string(), us, at_us });
    }

    /// Records which scoring batch carried this request.
    pub fn set_batch(&self, batch_id: u64, batch_size: u64) {
        let mut data = self.data();
        data.batch_id = batch_id;
        data.batch_size = batch_size;
    }

    /// Makes this trace the thread's active trace until the guard drops;
    /// [`observe_stage`] calls on this thread tee into it. Nests: the
    /// previous active trace is restored on drop.
    #[must_use = "the trace is only active while the guard lives"]
    pub fn install(&self) -> ActiveGuard {
        ACTIVE.with(|stack| stack.borrow_mut().push(self.clone()));
        ActiveGuard { _not_send: std::marker::PhantomData }
    }

    /// Seals the trace: stamps the total and HTTP status, appends a final
    /// `respond` stage covering the unattributed tail, pushes the record
    /// into the flight recorder, and emits it to any JSONL sink. Exactly
    /// one call seals; later calls just return the sealed record.
    pub fn finish(&self, status: u64) -> TraceRecord {
        let first = !self.shared.finished.swap(true, Ordering::AcqRel);
        let record = {
            let mut data = self.data();
            if first {
                let total_us = self.elapsed_us();
                data.total_us = total_us;
                data.status = status;
                let covered = data.stages.last().map_or(0.0, |s| s.at_us);
                let tail = total_us - covered;
                if tail > 0.0 {
                    data.stages.push(TraceStage {
                        stage: "respond".to_string(),
                        us: tail,
                        at_us: total_us,
                    });
                }
            }
            TraceRecord {
                id: self.id_hex(),
                endpoint: data.endpoint.clone(),
                status: data.status,
                total_us: data.total_us,
                batch_id: data.batch_id,
                batch_size: data.batch_size,
                stages: data.stages.clone(),
            }
        };
        if first {
            recorder().lock().unwrap_or_else(|e| e.into_inner()).push(record.clone());
            emit_record("trace", &record);
        }
        record
    }
}

thread_local! {
    static ACTIVE: RefCell<Vec<TraceCtx>> = const { RefCell::new(Vec::new()) };
}

/// Keeps a trace installed as the thread's active trace; restores the
/// previous one when dropped.
pub struct ActiveGuard {
    /// The guard must drop on the thread that created it.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Records `us` into the named global histogram **and** appends it as a
/// `stage` event on the thread's active trace, if one is installed. This
/// is how per-stage instrumentation deep inside the model attributes its
/// timings to the owning request without threading a context through
/// every call signature.
pub fn observe_stage(metric: &str, stage: &'static str, us: f64) {
    observe(metric, us);
    ACTIVE.with(|stack| {
        if let Some(trace) = stack.borrow().last() {
            trace.stage(stage, us);
        }
    });
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Default size of the recent-traces ring.
pub const DEFAULT_RECENT_CAP: usize = 64;
/// Default number of slowest traces pinned alongside the ring.
pub const DEFAULT_SLOWEST_CAP: usize = 8;

/// The always-on ring of completed traces: the last `recent_cap` in
/// completion order, plus the `slowest_cap` largest-`total_us` traces
/// pinned so a burst of fast requests cannot evict the outlier you are
/// hunting.
struct FlightRecorder {
    recent: VecDeque<TraceRecord>,
    recent_cap: usize,
    slowest: Vec<TraceRecord>,
    slowest_cap: usize,
}

impl FlightRecorder {
    fn push(&mut self, record: TraceRecord) {
        while self.recent.len() >= self.recent_cap.max(1) {
            self.recent.pop_front();
        }
        self.recent.push_back(record.clone());
        let pos = self
            .slowest
            .iter()
            .position(|r| r.total_us < record.total_us)
            .unwrap_or(self.slowest.len());
        self.slowest.insert(pos, record);
        self.slowest.truncate(self.slowest_cap);
    }
}

fn recorder() -> &'static Mutex<FlightRecorder> {
    static RECORDER: OnceLock<Mutex<FlightRecorder>> = OnceLock::new();
    RECORDER.get_or_init(|| {
        Mutex::new(FlightRecorder {
            recent: VecDeque::new(),
            recent_cap: DEFAULT_RECENT_CAP,
            slowest: Vec::new(),
            slowest_cap: DEFAULT_SLOWEST_CAP,
        })
    })
}

/// Point-in-time dump of the flight recorder (the `GET /admin/trace`
/// payload).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightSnapshot {
    /// Last completed traces, oldest first.
    pub recent: Vec<TraceRecord>,
    /// Slowest completed traces, slowest first.
    pub slowest: Vec<TraceRecord>,
}

/// Resizes the flight recorder (existing entries beyond the new caps are
/// dropped). Zero caps are clamped to 1.
pub fn configure_flight_recorder(recent_cap: usize, slowest_cap: usize) {
    let mut rec = recorder().lock().unwrap_or_else(|e| e.into_inner());
    rec.recent_cap = recent_cap.max(1);
    rec.slowest_cap = slowest_cap.max(1);
    while rec.recent.len() > rec.recent_cap {
        rec.recent.pop_front();
    }
    let cap = rec.slowest_cap;
    rec.slowest.truncate(cap);
}

/// Snapshot of the flight recorder.
pub fn flight_snapshot() -> FlightSnapshot {
    let rec = recorder().lock().unwrap_or_else(|e| e.into_inner());
    FlightSnapshot { recent: rec.recent.iter().cloned().collect(), slowest: rec.slowest.clone() }
}

/// Empties the flight recorder — test helper.
pub fn reset_flight_recorder() {
    let mut rec = recorder().lock().unwrap_or_else(|e| e.into_inner());
    rec.recent.clear();
    rec.slowest.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_hex() {
        let a = TraceCtx::new("/x");
        let b = TraceCtx::new("/x");
        assert_ne!(a.id_hex(), b.id_hex());
        assert_eq!(a.id_hex().len(), 16);
        assert!(a.id_hex().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn stages_accumulate_and_finish_seals_once() {
        let t = TraceCtx::new("/v1/extract");
        t.stage("queue_wait", 120.0);
        t.mark("dequeue");
        t.stage_since_mark("batch_form", "dequeue");
        t.set_batch(3, 4);
        let rec = t.finish(200);
        assert_eq!(rec.endpoint, "/v1/extract");
        assert_eq!(rec.status, 200);
        assert_eq!((rec.batch_id, rec.batch_size), (3, 4));
        assert_eq!(rec.stages.first().unwrap().stage, "queue_wait");
        // A `respond` tail stage covers total − last stage offset.
        assert_eq!(rec.stages.last().unwrap().stage, "respond");
        assert!(rec.total_us > 0.0);
        // Second finish returns the same sealed record, ignoring the new
        // status.
        let again = t.finish(500);
        assert_eq!(again.status, 200);
        assert_eq!(again.total_us, rec.total_us);
    }

    #[test]
    fn observe_stage_tees_into_the_installed_trace() {
        let t = TraceCtx::new("/v1/extract");
        {
            let _active = t.install();
            observe_stage("infer.test_stage_us", "embed", 42.0);
        }
        // After the guard drops the tee is inert.
        observe_stage("infer.test_stage_us", "embed", 7.0);
        let rec = t.finish(200);
        assert_eq!(rec.stage_us("embed"), 42.0);
    }

    #[test]
    fn flight_recorder_evicts_recent_but_pins_slowest() {
        // The recorder is process-global; distinct endpoint tags keep this
        // test's records identifiable next to other tests' traffic.
        let tag = "/test/flight_pins";
        let mk = |us: f64| {
            let t = TraceCtx::new(tag);
            t.stage("queue_wait", us); // irrelevant to total
            let rec = t.finish(200);
            (rec.id.clone(), us)
        };
        let mut slow = Vec::new();
        for i in 0..(DEFAULT_RECENT_CAP + 8) {
            slow.push(mk(i as f64));
        }
        let snap = flight_snapshot();
        assert!(snap.recent.len() <= DEFAULT_RECENT_CAP);
        assert!(snap.slowest.len() <= DEFAULT_SLOWEST_CAP);
        // The most recent of ours must still be in the ring.
        let last_id = &slow.last().unwrap().0;
        assert!(snap.recent.iter().any(|r| &r.id == last_id));
        // Slowest list is ordered.
        for pair in snap.slowest.windows(2) {
            assert!(pair[0].total_us >= pair[1].total_us);
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let t = TraceCtx::new("/v1/extract");
        t.stage("embed", 10.0);
        let rec = t.finish(200);
        let json = serde_json::to_string(&rec).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }
}
