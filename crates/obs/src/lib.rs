//! # ner-obs — observability for the `neural-ner` toolkit
//!
//! A dependency-light tracing/metrics layer (only `serde`/`serde_json`)
//! giving every crate in the workspace a uniform way to answer *how a run
//! unfolded*: per-epoch training trajectories, inference latency
//! distributions, tape growth, and a run manifest tying a reported number
//! back to its seed and configuration.
//!
//! Three pieces:
//!
//! * **Spans** — [`span`] returns an RAII guard that measures a scoped,
//!   monotonic duration; nesting builds `parent/child` paths and per-path
//!   aggregate statistics (count, total, max) feed the "slowest spans"
//!   report.
//! * **Metrics** — [`counter`], [`gauge`], [`gauge_max`] and [`observe`]
//!   (fixed-bucket exponential histograms with p50/p90/p99 summaries)
//!   accumulate in a thread-safe global registry whether or not any sink is
//!   installed, so a harness can always assemble a [`RunManifest`].
//! * **Sinks** — [`StderrSink`] renders human-readable lines filtered by
//!   [`Verbosity`]; [`JsonlSink`] writes every [`Event`] as one JSON line
//!   for machine-readable run logs (`neural-ner report` consumes these).
//!
//! Until [`init`] installs a sink the layer is passive: emission is gated
//! by one relaxed atomic load, so instrumented library code costs nothing
//! measurable in tests and benches that never opt in.

#![warn(missing_docs)]

pub mod trace;

use serde::{Deserialize, Serialize, Value};
use std::cell::RefCell;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Verbosity
// ---------------------------------------------------------------------------

/// How much the human-readable sink prints. JSONL sinks ignore this and
/// always record everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Warnings only.
    Quiet,
    /// Progress messages, manifests (default).
    Normal,
    /// Plus metric summaries and structured records.
    Verbose,
    /// Plus every span end and debug message.
    Trace,
}

impl std::str::FromStr for Verbosity {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "quiet" | "0" => Ok(Verbosity::Quiet),
            "normal" | "1" => Ok(Verbosity::Normal),
            "verbose" | "2" => Ok(Verbosity::Verbose),
            "trace" | "3" => Ok(Verbosity::Trace),
            other => Err(format!("unknown verbosity {other:?} (quiet|normal|verbose|trace)")),
        }
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Everything the observability layer can report, in one serializable type.
/// A JSONL run log is a sequence of [`LogLine`]s wrapping these.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A free-text message at a level (`"info"`, `"warn"`, `"debug"`).
    Message {
        /// Severity label.
        level: String,
        /// Message text.
        text: String,
    },
    /// A monotonically accumulated count.
    Counter {
        /// Metric name.
        name: String,
        /// Accumulated value.
        value: f64,
    },
    /// A last-value (or max-tracked) measurement.
    Gauge {
        /// Metric name.
        name: String,
        /// Current value.
        value: f64,
    },
    /// A completed span with its measured duration.
    SpanEnd {
        /// Slash-joined nesting path, e.g. `train/epoch/eval`.
        path: String,
        /// Monotonic duration in microseconds.
        micros: f64,
        /// Nesting depth (1 = top level).
        depth: u64,
    },
    /// Aggregate statistics for one span path over the whole run.
    SpanSummary {
        /// Slash-joined nesting path.
        path: String,
        /// Number of completed spans at this path.
        count: u64,
        /// Total time spent, milliseconds.
        total_ms: f64,
        /// Longest single span, milliseconds.
        max_ms: f64,
    },
    /// Percentile summary of a histogram metric.
    Histogram(HistogramSummary),
    /// A structured record from an instrumented subsystem (e.g. the
    /// trainer's per-epoch record), carried as a generic JSON value.
    Record {
        /// Record kind tag, e.g. `"epoch"`.
        kind: String,
        /// The record payload.
        body: Value,
    },
    /// The run manifest.
    Manifest(RunManifest),
}

/// One line of a JSONL run log: an event stamped with milliseconds since
/// observability initialization.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogLine {
    /// Milliseconds since the observability layer first woke up.
    pub t_ms: u64,
    /// The event.
    pub event: Event,
}

/// Everything needed to tie a reported number back to the run that
/// produced it — written alongside experiment results and into the JSONL
/// log.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Run/experiment name (e.g. `"fig6"`).
    pub name: String,
    /// Toolkit version (crate version of the harness).
    pub version: String,
    /// Master RNG seed.
    pub seed: u64,
    /// Configuration signature (architecture string, scale, flags).
    pub config_signature: String,
    /// Wall-clock duration of the run in seconds.
    pub wall_clock_secs: f64,
    /// Largest autodiff tape observed during the run (0 if untracked).
    pub peak_tape_nodes: u64,
    /// Active kernel backend: the SIMD variant plus the CPU features it
    /// was chosen from (e.g. `"avx2 (cpu: sse2+avx2+fma)"`).
    pub kernel_backend: String,
    /// Flattened final metrics (name → value).
    pub final_metrics: Vec<(String, f64)>,
}

/// The minimum stderr verbosity at which an event is rendered.
fn event_level(e: &Event) -> Verbosity {
    match e {
        Event::Message { level, .. } if level == "warn" => Verbosity::Quiet,
        Event::Message { level, .. } if level == "debug" => Verbosity::Trace,
        Event::Message { .. } | Event::Manifest(_) => Verbosity::Normal,
        Event::Counter { .. }
        | Event::Gauge { .. }
        | Event::Histogram(_)
        | Event::SpanSummary { .. }
        | Event::Record { .. } => Verbosity::Verbose,
        Event::SpanEnd { .. } => Verbosity::Trace,
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with one implicit overflow bucket at the end. Percentiles are estimated
/// by linear interpolation inside the bucket containing the target rank and
/// clamped to the observed `[min, max]`, so the estimate always lands in
/// the same bucket as the exact order statistic.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with exponentially growing buckets:
    /// `(-∞, first], (first, first·factor], …` plus an overflow bucket.
    ///
    /// # Panics
    /// Panics unless `first > 0`, `factor > 1` and `buckets ≥ 1`.
    pub fn exponential(first: f64, factor: f64, buckets: usize) -> Histogram {
        assert!(first > 0.0 && factor > 1.0 && buckets >= 1, "bad histogram shape");
        let mut bounds = Vec::with_capacity(buckets);
        let mut b = first;
        for _ in 0..buckets {
            bounds.push(b);
            b *= factor;
        }
        let counts = vec![0; buckets + 1];
        Histogram { bounds, counts, count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// The default shape for microsecond latencies: 1 µs to ~17 s, ×2.
    pub fn latency_micros() -> Histogram {
        Histogram::exponential(1.0, 2.0, 24)
    }

    /// Index of the bucket a value falls into (last bucket = overflow).
    pub fn bucket_index(&self, v: f64) -> usize {
        self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len())
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let i = self.bucket_index(v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`); `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 && cum + c >= rank {
                let lo = if i == 0 { f64::NEG_INFINITY } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() { self.bounds[i] } else { f64::INFINITY };
                let (lo, hi) = (lo.max(self.min), hi.min(self.max));
                if hi <= lo {
                    return lo;
                }
                // Continuity correction: the rank-th observation is treated
                // as sitting at the *middle* of its 1/c slice of the bucket,
                // not at its upper edge. Without the -0.5 a rank landing on
                // the last in-bucket observation returns exactly `hi`, so
                // low-count stages report quantiles frozen at bucket
                // boundaries (e.g. a p99 of exactly 32 from two samples).
                return lo + (hi - lo) * (((rank - cum) as f64 - 0.5) / c as f64);
            }
            cum += c;
        }
        self.max
    }

    /// Percentile summary under a metric name; zeros when empty.
    pub fn summary(&self, name: &str) -> HistogramSummary {
        if self.count == 0 {
            return HistogramSummary {
                name: name.to_string(),
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
        }
        HistogramSummary {
            name: name.to_string(),
            count: self.count,
            mean: self.sum / self.count as f64,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }

    /// Full bucket contents under a metric name, with *cumulative* bucket
    /// counts — the shape Prometheus text exposition wants (`le`-labeled
    /// bucket series are counts of observations ≤ the bound). The implicit
    /// overflow bucket is folded into `count` (the `+Inf` series).
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut cumulative = 0u64;
        let buckets = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(&le, &c)| {
                cumulative += c;
                (le, cumulative)
            })
            .collect();
        HistogramSnapshot { name: name.to_string(), buckets, count: self.count, sum: self.sum }
    }
}

/// Point-in-time bucket dump of a [`Histogram`] with cumulative counts,
/// ready for Prometheus-style exposition.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// `(upper_bound, observations ≤ upper_bound)`, ascending. Does not
    /// include the `+Inf` bucket — that is [`count`](HistogramSnapshot::count).
    pub buckets: Vec<(f64, u64)>,
    /// Total observation count (the `+Inf` cumulative bucket).
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th percentile estimate.
    pub p90: f64,
    /// 99th percentile estimate.
    pub p99: f64,
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// A destination for emitted events.
pub trait Sink: Send {
    /// Handles one event. `verbosity` is the current global verbosity;
    /// sinks may use it to filter (the stderr sink does, JSONL does not).
    fn emit(&mut self, t_ms: u64, verbosity: Verbosity, event: &Event);

    /// Flushes buffered output.
    fn flush(&mut self) {}
}

/// Human-readable rendering to stderr, filtered by [`Verbosity`].
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&mut self, t_ms: u64, verbosity: Verbosity, event: &Event) {
        if verbosity < event_level(event) {
            return;
        }
        let t = t_ms as f64 / 1000.0;
        let line = match event {
            Event::Message { level, text } => format!("{level:<5} {text}"),
            Event::Counter { name, value } => format!("count {name} = {value}"),
            Event::Gauge { name, value } => format!("gauge {name} = {value}"),
            Event::SpanEnd { path, micros, depth } => {
                let indent = "  ".repeat(depth.saturating_sub(1) as usize);
                format!("span  {indent}{path} {:.2} ms", micros / 1e3)
            }
            Event::SpanSummary { path, count, total_ms, max_ms } => {
                format!("span  {path}: n={count} total={total_ms:.1}ms max={max_ms:.1}ms")
            }
            Event::Histogram(h) => format!(
                "hist  {}: n={} mean={:.1} p50={:.1} p90={:.1} p99={:.1} max={:.1}",
                h.name, h.count, h.mean, h.p50, h.p90, h.p99, h.max
            ),
            Event::Record { kind, body } => {
                format!("{kind} {}", serde_json::to_string(body).unwrap_or_default())
            }
            Event::Manifest(m) => format!(
                "manifest {} v{} seed={} cfg={} wall={:.1}s",
                m.name, m.version, m.seed, m.config_signature, m.wall_clock_secs
            ),
        };
        eprintln!("[{t:>8.2}s] {line}");
    }
}

/// Machine-readable JSONL: one [`LogLine`] per event, flushed per line.
#[derive(Debug)]
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Creates (truncating) the log file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink { out: std::io::BufWriter::new(std::fs::File::create(path)?) })
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, t_ms: u64, _verbosity: Verbosity, event: &Event) {
        let line = LogLine { t_ms, event: event.clone() };
        if let Ok(json) = serde_json::to_string(&line) {
            let _ = writeln!(self.out, "{json}");
            let _ = self.out.flush();
        }
    }
}

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Inner {
    sinks: Vec<Box<dyn Sink>>,
    counters: Vec<(String, f64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
    spans: Vec<(String, SpanStat)>,
}

/// Aggregate statistics for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStat {
    /// Completed spans at this path.
    pub count: u64,
    /// Total microseconds.
    pub total_micros: f64,
    /// Longest single span, microseconds.
    pub max_micros: f64,
}

struct Global {
    start: Instant,
    verbosity: AtomicU8,
    active: AtomicBool,
    inner: Mutex<Inner>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        start: Instant::now(),
        verbosity: AtomicU8::new(Verbosity::Normal as u8),
        active: AtomicBool::new(false),
        inner: Mutex::new(Inner::default()),
    })
}

fn lock() -> std::sync::MutexGuard<'static, Inner> {
    global().inner.lock().unwrap_or_else(|e| e.into_inner())
}

/// Configuration for [`init`].
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Stderr verbosity.
    pub verbosity: Verbosity,
    /// Optional JSONL run-log path.
    pub jsonl_path: Option<std::path::PathBuf>,
    /// Install the human-readable stderr sink.
    pub stderr: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { verbosity: Verbosity::Normal, jsonl_path: None, stderr: true }
    }
}

impl ObsConfig {
    /// Reads `NER_VERBOSITY` and `NER_LOG_JSON` from the environment.
    pub fn from_env() -> ObsConfig {
        let mut cfg = ObsConfig::default();
        if let Ok(v) = std::env::var("NER_VERBOSITY") {
            if let Ok(v) = v.parse() {
                cfg.verbosity = v;
            }
        }
        if let Ok(p) = std::env::var("NER_LOG_JSON") {
            if !p.is_empty() {
                cfg.jsonl_path = Some(p.into());
            }
        }
        cfg
    }

    /// Overrides from `--verbosity <level>` / `--log-json <path>` anywhere
    /// in `args` (other arguments are ignored).
    pub fn apply_args(mut self, args: &[String]) -> Result<ObsConfig, String> {
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--verbosity" => {
                    let v = it.next().ok_or("--verbosity requires a value")?;
                    self.verbosity = v.parse()?;
                }
                "--log-json" => {
                    let p = it.next().ok_or("--log-json requires a value")?;
                    self.jsonl_path = Some(p.into());
                }
                _ => {}
            }
        }
        Ok(self)
    }

    /// Like [`ObsConfig::apply_args`], but *removes* the recognized flags
    /// and their values from `args` — for CLIs whose subcommand parsers
    /// reject unknown options.
    pub fn take_args(mut self, args: &mut Vec<String>) -> Result<ObsConfig, String> {
        let mut kept = Vec::with_capacity(args.len());
        let mut it = std::mem::take(args).into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--verbosity" => {
                    let v = it.next().ok_or("--verbosity requires a value")?;
                    self.verbosity = v.parse()?;
                }
                "--log-json" => {
                    let p = it.next().ok_or("--log-json requires a value")?;
                    self.jsonl_path = Some(p.into());
                }
                _ => kept.push(a),
            }
        }
        *args = kept;
        Ok(self)
    }
}

/// Installs sinks and sets the verbosity; before this call the layer is
/// passive (metrics accumulate, nothing is emitted).
pub fn init(cfg: ObsConfig) -> std::io::Result<()> {
    let g = global();
    g.verbosity.store(cfg.verbosity as u8, Ordering::Relaxed);
    let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
    if cfg.stderr {
        sinks.push(Box::new(StderrSink));
    }
    if let Some(path) = &cfg.jsonl_path {
        sinks.push(Box::new(JsonlSink::create(path)?));
    }
    let mut inner = lock();
    inner.sinks = sinks;
    g.active.store(!inner.sinks.is_empty(), Ordering::Relaxed);
    Ok(())
}

/// Convenience for harness binaries: env + process args, exiting on a
/// malformed flag.
pub fn init_from_process_args() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = ObsConfig::from_env().apply_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    init(cfg).unwrap_or_else(|e| {
        eprintln!("error: cannot open run log: {e}");
        std::process::exit(2);
    });
}

/// Current stderr verbosity.
pub fn verbosity() -> Verbosity {
    match global().verbosity.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        2 => Verbosity::Verbose,
        _ => Verbosity::Trace,
    }
}

/// Overrides the stderr verbosity after `init` (e.g. for a `--quiet` flag).
pub fn set_verbosity(v: Verbosity) {
    global().verbosity.store(v as u8, Ordering::Relaxed);
}

/// True when at least one sink is installed (i.e. emission does work).
pub fn enabled() -> bool {
    global().active.load(Ordering::Relaxed)
}

/// Seconds since the observability layer first woke up.
pub fn elapsed_secs() -> f64 {
    global().start.elapsed().as_secs_f64()
}

fn dispatch(event: Event) {
    let g = global();
    if !g.active.load(Ordering::Relaxed) {
        return;
    }
    let t_ms = g.start.elapsed().as_millis() as u64;
    let v = verbosity();
    // Sinks are taken out of the registry while emitting so sink I/O never
    // holds the metrics lock.
    let mut sinks = std::mem::take(&mut lock().sinks);
    for s in &mut sinks {
        s.emit(t_ms, v, &event);
    }
    lock().sinks = sinks;
}

// ---------------------------------------------------------------------------
// Emission API
// ---------------------------------------------------------------------------

/// Emits an informational message.
pub fn info(text: impl Into<String>) {
    dispatch(Event::Message { level: "info".into(), text: text.into() });
}

/// Emits a warning (shown even at quiet verbosity).
pub fn warn(text: impl Into<String>) {
    dispatch(Event::Message { level: "warn".into(), text: text.into() });
}

/// Emits a debug message (trace verbosity only on stderr).
pub fn debug(text: impl Into<String>) {
    dispatch(Event::Message { level: "debug".into(), text: text.into() });
}

/// Adds `delta` to a named counter (registry always; emitted on [`finish`]).
pub fn counter(name: &str, delta: f64) {
    let mut inner = lock();
    match inner.counters.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => *v += delta,
        None => inner.counters.push((name.to_string(), delta)),
    }
}

/// Sets a named gauge to `value`.
pub fn gauge(name: &str, value: f64) {
    let mut inner = lock();
    match inner.gauges.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => *v = value,
        None => inner.gauges.push((name.to_string(), value)),
    }
}

/// Raises a named gauge to `value` if larger (peak tracking).
pub fn gauge_max(name: &str, value: f64) {
    let mut inner = lock();
    match inner.gauges.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => *v = v.max(value),
        None => inner.gauges.push((name.to_string(), value)),
    }
}

/// Records `value` into the named histogram (created on first use with
/// [`Histogram::latency_micros`] buckets).
pub fn observe(name: &str, value: f64) {
    let mut inner = lock();
    match inner.histograms.iter_mut().find(|(n, _)| n == name) {
        Some((_, h)) => h.record(value),
        None => {
            let mut h = Histogram::latency_micros();
            h.record(value);
            inner.histograms.push((name.to_string(), h));
        }
    }
}

/// Emits a structured record event of the given kind.
pub fn emit_record(kind: &str, payload: &impl Serialize) {
    if !enabled() {
        return;
    }
    dispatch(Event::Record { kind: kind.to_string(), body: payload.serialize() });
}

/// Emits the run manifest event.
pub fn emit_manifest(manifest: &RunManifest) {
    dispatch(Event::Manifest(manifest.clone()));
}

/// Current value of a counter, if any.
pub fn counter_value(name: &str) -> Option<f64> {
    lock().counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

/// Snapshot of every counter, in registration order. Metric exporters
/// (e.g. the serving `/metrics` endpoint) render this live, without
/// waiting for [`finish`].
pub fn counters() -> Vec<(String, f64)> {
    lock().counters.clone()
}

/// Snapshot of every gauge, in registration order.
pub fn gauges() -> Vec<(String, f64)> {
    lock().gauges.clone()
}

/// Summaries of every non-empty histogram, in registration order.
pub fn histogram_summaries() -> Vec<HistogramSummary> {
    lock().histograms.iter().filter(|(_, h)| !h.is_empty()).map(|(n, h)| h.summary(n)).collect()
}

/// Cumulative-bucket snapshots of every non-empty histogram, in
/// registration order — the raw material for Prometheus exposition.
pub fn histogram_snapshots() -> Vec<HistogramSnapshot> {
    lock().histograms.iter().filter(|(_, h)| !h.is_empty()).map(|(n, h)| h.snapshot(n)).collect()
}

/// Current value of a gauge, if any.
pub fn gauge_value(name: &str) -> Option<f64> {
    lock().gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

/// Summary of a named histogram, if it exists and is non-empty.
pub fn histogram_summary(name: &str) -> Option<HistogramSummary> {
    let inner = lock();
    let (n, h) = inner.histograms.iter().find(|(n, _)| n == name)?;
    if h.is_empty() {
        return None;
    }
    Some(h.summary(n))
}

/// All span statistics, largest total time first.
pub fn span_report() -> Vec<(String, SpanStat)> {
    let mut spans = lock().spans.clone();
    spans.sort_by(|a, b| b.1.total_micros.total_cmp(&a.1.total_micros));
    spans
}

/// Emits all counters/gauges, summaries of every non-empty histogram, and
/// per-path span statistics, then flushes all sinks. Harnesses call this
/// once before exiting.
pub fn finish() {
    let events: Vec<Event> = {
        let inner = lock();
        let mut ev = Vec::new();
        for (n, v) in &inner.counters {
            ev.push(Event::Counter { name: n.clone(), value: *v });
        }
        for (n, v) in &inner.gauges {
            ev.push(Event::Gauge { name: n.clone(), value: *v });
        }
        for (n, h) in &inner.histograms {
            if !h.is_empty() {
                ev.push(Event::Histogram(h.summary(n)));
            }
        }
        let mut spans: Vec<_> = inner.spans.clone();
        spans.sort_by(|a, b| b.1.total_micros.total_cmp(&a.1.total_micros));
        for (path, s) in spans {
            ev.push(Event::SpanSummary {
                path,
                count: s.count,
                total_ms: s.total_micros / 1e3,
                max_ms: s.max_micros / 1e3,
            });
        }
        ev
    };
    for e in events {
        dispatch(e);
    }
    for s in &mut lock().sinks {
        s.flush();
    }
}

/// Clears all metrics, spans and sinks and restores defaults — test helper.
pub fn reset() {
    let g = global();
    g.verbosity.store(Verbosity::Normal as u8, Ordering::Relaxed);
    g.active.store(false, Ordering::Relaxed);
    *lock() = Inner::default();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An in-flight scoped measurement; records on drop.
#[must_use = "a span measures until dropped"]
pub struct SpanGuard {
    path: String,
    depth: u64,
    start: Instant,
}

/// Opens a scoped span. Nested spans build `parent/child` paths per thread.
pub fn span(name: &'static str) -> SpanGuard {
    let (path, depth) = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        (s.join("/"), s.len() as u64)
    });
    SpanGuard { path, depth, start: Instant::now() }
}

impl SpanGuard {
    /// The span's full nesting path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let micros = self.start.elapsed().as_secs_f64() * 1e6;
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        {
            let mut inner = lock();
            match inner.spans.iter_mut().find(|(p, _)| *p == self.path) {
                Some((_, st)) => {
                    st.count += 1;
                    st.total_micros += micros;
                    st.max_micros = st.max_micros.max(micros);
                }
                None => inner.spans.push((
                    self.path.clone(),
                    SpanStat { count: 1, total_micros: micros, max_micros: micros },
                )),
            }
        }
        if enabled() && verbosity() >= Verbosity::Trace {
            dispatch(Event::SpanEnd {
                path: std::mem::take(&mut self.path),
                micros,
                depth: self.depth,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_parses_and_orders() {
        assert!(Verbosity::Quiet < Verbosity::Trace);
        assert_eq!("verbose".parse::<Verbosity>().unwrap(), Verbosity::Verbose);
        assert_eq!("2".parse::<Verbosity>().unwrap(), Verbosity::Verbose);
        assert!("loud".parse::<Verbosity>().is_err());
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::exponential(1.0, 2.0, 4); // 1,2,4,8,+inf
        assert_eq!(h.bucket_index(0.5), 0);
        assert_eq!(h.bucket_index(1.0), 0); // inclusive upper bound
        assert_eq!(h.bucket_index(1.5), 1);
        assert_eq!(h.bucket_index(100.0), 4);
        assert!(h.quantile(0.5).is_nan());
        h.record(f64::NAN); // ignored
        h.record(f64::INFINITY); // ignored
        assert!(h.is_empty());
        h.record(3.0);
        assert_eq!(h.count(), 1);
        // Single observation: every quantile collapses to it.
        assert_eq!(h.quantile(0.0), 3.0);
        assert_eq!(h.quantile(1.0), 3.0);
        let s = h.summary("x");
        assert_eq!((s.min, s.max, s.mean), (3.0, 3.0, 3.0));
    }

    #[test]
    fn quantiles_interpolate_within_buckets_on_a_known_distribution() {
        // Uniform 1..=1000 through the standard latency buckets. The true
        // percentiles fall mid-bucket; the estimate must land near them
        // instead of snapping to a power-of-two boundary.
        let mut h = Histogram::latency_micros();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        assert!((h.quantile(0.50) - 500.0).abs() <= 2.0, "p50 = {}", h.quantile(0.50));
        assert!((h.quantile(0.90) - 900.0).abs() <= 2.0, "p90 = {}", h.quantile(0.90));
        assert!((h.quantile(0.99) - 990.0).abs() <= 2.0, "p99 = {}", h.quantile(0.99));
    }

    #[test]
    fn low_count_quantiles_are_not_truncated_to_bucket_boundaries() {
        // Regression: with {20, 100} every quantile up to p50 used to come
        // back as exactly 32.0 — the upper edge of 20's (16, 32] bucket —
        // because the in-bucket fraction hit 1.0. The corrected estimate
        // stays strictly inside the bucket.
        let mut h = Histogram::latency_micros();
        h.record(20.0);
        h.record(100.0);
        let p50 = h.quantile(0.50);
        assert!(p50 > 20.0 && p50 < 32.0, "p50 = {p50} snapped to a bucket edge");
        // And the top quantile is still clamped to the observed max, never
        // the overflow bound of 100's bucket.
        assert!(h.quantile(0.99) <= 100.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Histogram::latency_micros().summary("empty");
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn config_takes_flags_out_of_args() {
        let mut args: Vec<String> =
            ["--train", "a.conll", "--verbosity", "trace", "--log-json", "run.jsonl", "--quiet"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let cfg = ObsConfig::default().take_args(&mut args).unwrap();
        assert_eq!(cfg.verbosity, Verbosity::Trace);
        assert_eq!(cfg.jsonl_path.as_deref(), Some(std::path::Path::new("run.jsonl")));
        assert_eq!(args, vec!["--train", "a.conll", "--quiet"]);
        let bad = ObsConfig::default().take_args(&mut vec!["--verbosity".into()]);
        assert!(bad.is_err());
    }

    #[test]
    fn event_levels_route_warnings_through_quiet() {
        let warn = Event::Message { level: "warn".into(), text: "x".into() };
        let info = Event::Message { level: "info".into(), text: "x".into() };
        assert_eq!(event_level(&warn), Verbosity::Quiet);
        assert_eq!(event_level(&info), Verbosity::Normal);
        assert_eq!(
            event_level(&Event::SpanEnd { path: "a".into(), micros: 1.0, depth: 1 }),
            Verbosity::Trace
        );
    }
}
