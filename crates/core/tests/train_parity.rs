//! Bit-identity of the batched trainer (`TrainerKind::Batched`, packed
//! autograd through `BatchedTapeExec`) against the per-sentence oracle
//! under the *same* bucketed schedule: identical per-epoch loss curves
//! (compared as f64 bits), identical final weights (f32 bits) and
//! identical final F1, for every zoo preset, at several thread counts.
//! CI reruns this suite under `NER_THREADS=1/4` × `NER_SIMD=off/default`,
//! so the packed gradient path is pinned against the oracle on every
//! kernel dispatch configuration.
//!
//! Also covers the gradient scatter through odd bucket shapes (adjacent
//! empty sentences, all-equal lengths, single-sentence buckets) and the
//! non-finite guard's whole-bucket rollback.

use ner_core::prelude::*;
use ner_core::zoo;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes tests that touch the global thread pool: `set_global_threads`
/// swaps a process-wide pool, so these tests must not interleave.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ner_par::set_global_threads(threads);
    let out = f();
    ner_par::set_global_threads(1);
    out
}

/// Zoo presets with pretrained embeddings swapped for random ones (as the
/// CLI does when no embedding file is supplied).
fn materialized_zoo() -> Vec<(String, NerConfig)> {
    zoo::zoo()
        .into_iter()
        .map(|e| {
            let mut cfg = e.config;
            if matches!(cfg.word, WordRepr::Pretrained { .. }) {
                cfg.word = WordRepr::Random { dim: 32 };
            }
            (e.name.to_string(), cfg)
        })
        .collect()
}

/// Everything a training run pins: the loss curve, the final parameters
/// and the resulting test F1.
struct Run {
    losses: Vec<f64>,
    weights: Vec<(String, Vec<f32>)>,
    f1: f64,
}

fn run_of(
    model: NerModel,
    report: &ner_core::trainer::TrainReport,
    test: &[EncodedSentence],
) -> Run {
    let losses = report.epochs.iter().map(|e| e.train_loss).collect();
    let weights = model
        .store
        .ids()
        .map(|id| (model.store.name(id).to_string(), model.store.value(id).data().to_vec()))
        .collect();
    let f1 = evaluate_model(&model, test).micro.f1;
    Run { losses, weights, f1 }
}

/// Trains one preset from a fixed init with a fixed schedule rng.
fn train_run(
    cfg: &NerConfig,
    kind: TrainerKind,
    batch: usize,
    train_enc: &[EncodedSentence],
    test_enc: &[EncodedSentence],
    encoder: &SentenceEncoder,
    epochs: usize,
) -> Run {
    let mut model = NerModel::new(cfg.clone(), encoder, None, &mut StdRng::seed_from_u64(5));
    let tcfg =
        TrainConfig { epochs, patience: None, trainer: kind, batch, ..TrainConfig::default() };
    let report = train(&mut model, train_enc, None, &tcfg, &mut StdRng::seed_from_u64(77));
    run_of(model, &report, test_enc)
}

fn assert_runs_bit_identical(got: &Run, want: &Run, ctx: &str) {
    assert_eq!(got.losses.len(), want.losses.len(), "{ctx}: epoch count");
    for (e, (g, w)) in got.losses.iter().zip(&want.losses).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: loss curve diverges at epoch {e}: batched {g} vs oracle {w}"
        );
    }
    assert_eq!(got.weights.len(), want.weights.len(), "{ctx}: param count");
    for ((gn, gw), (wn, ww)) in got.weights.iter().zip(&want.weights) {
        assert_eq!(gn, wn, "{ctx}: param order");
        assert_eq!(gw.len(), ww.len(), "{ctx}: {gn}: param size");
        for (i, (a, b)) in gw.iter().zip(ww).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{ctx}: final weight diverges at {gn}[{i}]: batched {a} vs oracle {b}"
            );
        }
    }
    assert_eq!(got.f1.to_bits(), want.f1.to_bits(), "{ctx}: final F1");
}

fn parity_data(n_train: usize) -> (Vec<EncodedSentence>, Vec<EncodedSentence>, SentenceEncoder) {
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let mut rng = StdRng::seed_from_u64(33);
    let train_ds = gen.dataset(&mut rng, n_train);
    let test_ds = gen.dataset(&mut rng, 10);
    let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
    let train_enc = encoder.encode_dataset(&train_ds, None);
    let test_enc = encoder.encode_dataset(&test_ds, None);
    (train_enc, test_enc, encoder)
}

#[test]
fn batched_trainer_is_bit_identical_to_per_sentence_oracle_for_every_zoo_preset() {
    let (train_enc, test_enc, encoder) = parity_data(18);
    for (name, mut cfg) in materialized_zoo() {
        // The parity data is encoded under BIO; train each preset under
        // the scheme the data was encoded with.
        cfg.scheme = TagScheme::Bio;
        for threads in [1usize, 4] {
            let (got, want) = with_threads(threads, || {
                let got =
                    train_run(&cfg, TrainerKind::Batched, 3, &train_enc, &test_enc, &encoder, 2);
                let want = train_run(
                    &cfg,
                    TrainerKind::PerSentence,
                    3,
                    &train_enc,
                    &test_enc,
                    &encoder,
                    2,
                );
                (got, want)
            });
            assert_runs_bit_identical(&got, &want, &format!("{name} @ {threads} threads"));
        }
    }
}

/// Odd bucket shapes: adjacent empty sentences, buckets of all-equal
/// lengths, a single-sentence tail bucket, and a one-sentence epoch — the
/// gradient scatter must stay bit-identical through every packing.
#[test]
fn gradient_scatter_survives_odd_length_mixes() {
    let (base, test_enc, encoder) = parity_data(9);
    let empty = encoder.encode(&Sentence::new::<&str>(&[], vec![]));
    // Equal lengths: duplicate one sentence so a bucket packs
    // all-equal-length segments (no live-prefix shrink until the end).
    let equal = base[0].clone();

    let mixes: Vec<Vec<EncodedSentence>> = vec![
        // empty-adjacent: two empties in a row inside a bucket
        vec![
            base[0].clone(),
            empty.clone(),
            empty.clone(),
            base[1].clone(),
            base[2].clone(),
            empty.clone(),
            base[3].clone(),
        ],
        // all-equal lengths in every bucket
        vec![equal.clone(), equal.clone(), equal.clone(), equal.clone()],
        // single sentence: one one-bucket epoch
        vec![base[4].clone()],
        // ragged tail: last bucket has a single sentence
        base.iter().take(7).cloned().collect(),
    ];

    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 12 },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Lstm { hidden: 10, bidirectional: true, layers: 1 },
        decoder: DecoderKind::Crf,
        dropout: 0.2,
        ..NerConfig::default()
    };
    for (m, train_enc) in mixes.iter().enumerate() {
        for threads in [1usize, 2] {
            let (got, want) = with_threads(threads, || {
                let got =
                    train_run(&cfg, TrainerKind::Batched, 3, train_enc, &test_enc, &encoder, 2);
                let want =
                    train_run(&cfg, TrainerKind::PerSentence, 3, train_enc, &test_enc, &encoder, 2);
                (got, want)
            });
            assert_runs_bit_identical(&got, &want, &format!("mix {m} @ {threads} threads"));
        }
    }
}

/// One poisoned sentence must roll back its *whole* bucket in batched
/// mode: innocent bucket-mates contribute nothing (their finite losses are
/// discarded), sentences in other buckets still update. The per-sentence
/// oracle, by contrast, skips only the poisoned sentence.
#[test]
fn non_finite_loss_rolls_back_the_whole_batched_bucket() {
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let mut rng = StdRng::seed_from_u64(41);
    let train_ds = gen.dataset(&mut rng, 6);
    let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1).with_features(true);
    let mut train_enc = encoder.encode_dataset(&train_ds, None);

    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 12 },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Lstm { hidden: 8, bidirectional: false, layers: 1 },
        decoder: DecoderKind::Crf,
        dropout: 0.0,
        use_features: true,
        ..NerConfig::default()
    };
    // Poison exactly one sentence through its feature row: its loss — and
    // only its — comes out NaN.
    assert!(!train_enc[1].feats.is_empty(), "use_features should produce feature rows");
    train_enc[1].feats[0][0] = f32::NAN;

    with_threads(1, || {
        // Batch of 3, shuffle off: bucket 0 = sentences {0 poisoned-mate,
        // 1 poisoned, 2}, bucket 1 = sentences {3, 4, 5}.
        let tcfg = TrainConfig {
            epochs: 1,
            shuffle: false,
            patience: None,
            trainer: TrainerKind::Batched,
            batch: 3,
            ..TrainConfig::default()
        };
        let mut model = NerModel::new(cfg.clone(), &encoder, None, &mut StdRng::seed_from_u64(5));
        let report = train(&mut model, &train_enc, None, &tcfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(
            report.epochs[0].skipped_updates, 3,
            "the poisoned bucket's three sentences must all be rolled back"
        );

        // The oracle under the same schedule skips only the poisoned one.
        let tcfg = TrainConfig { trainer: TrainerKind::PerSentence, ..tcfg };
        let mut model = NerModel::new(cfg.clone(), &encoder, None, &mut StdRng::seed_from_u64(5));
        let report = train(&mut model, &train_enc, None, &tcfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(
            report.epochs[0].skipped_updates, 1,
            "the per-sentence oracle skips just the poisoned sentence"
        );
    });
}
