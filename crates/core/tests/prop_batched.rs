//! Parity of the packed batched execution path (`extract_batch` /
//! `annotate_batch` over `BatchedExec`) with the per-sentence fused plan,
//! across every zoo architecture, thread counts 1/2/4, and ragged batch
//! shapes including empty and single-token sentences. The batched backend
//! is built to be bit-identical per row, so the gate here is exact
//! prediction equality — tags and spans, not tolerances.

use ner_core::prelude::*;
use ner_core::zoo;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_tensor::simd::{self, SimdLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes tests that touch the global thread pool: `set_global_threads`
/// swaps a process-wide pool, so these tests must not interleave.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ner_par::set_global_threads(threads);
    let out = f();
    ner_par::set_global_threads(1);
    out
}

/// Zoo presets with pretrained embeddings swapped for random ones (as the
/// CLI does when no embedding file is supplied).
fn materialized_zoo() -> Vec<(String, NerConfig)> {
    zoo::zoo()
        .into_iter()
        .map(|e| {
            let mut cfg = e.config;
            if matches!(cfg.word, WordRepr::Pretrained { .. }) {
                cfg.word = WordRepr::Random { dim: 32 };
            }
            (e.name.to_string(), cfg)
        })
        .collect()
}

/// A ragged batch: empty text, single-token sentences, duplicates (to
/// exercise miss-dedup in the batched cache path), and mixed lengths so
/// length-sorted bucketing actually reorders.
fn ragged_texts() -> Vec<&'static str> {
    vec![
        "Michael Jordan was born in Brooklyn.",
        "",
        "Hi",
        "The European Commission met in Brussels on Tuesday to discuss the annual budget.",
        "Prices rose 4.2 percent, Reuters reported.",
        "Hi",
        "   ",
        "No",
        "Michael Jordan was born in Brooklyn.",
        "Analysts at Goldman Sachs expect the Federal Reserve to hold rates steady this year.",
    ]
}

fn pipeline_for(cfg: NerConfig, seed: u64) -> NerPipeline {
    let ds =
        NewsGenerator::new(GeneratorConfig::default()).dataset(&mut StdRng::seed_from_u64(11), 30);
    let encoder = SentenceEncoder::from_dataset(&ds, cfg.scheme, 1);
    let model = NerModel::new(cfg, &encoder, None, &mut StdRng::seed_from_u64(seed));
    NerPipeline::new(encoder, model)
}

fn assert_sentences_eq(got: &[Sentence], want: &[Sentence], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: batch size mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.texts(), w.texts(), "{ctx}: token divergence on sentence {i}");
        assert_eq!(g.entities, w.entities, "{ctx}: tag divergence on sentence {i}");
    }
}

#[test]
fn batched_extraction_matches_per_sentence_for_every_zoo_model() {
    let texts = ragged_texts();
    for (name, cfg) in materialized_zoo() {
        let pipeline = pipeline_for(cfg, 7);
        // Per-sentence oracle (also warms the token cache).
        let want: Vec<Sentence> = texts.iter().map(|t| pipeline.extract(t)).collect();
        for threads in [1, 2, 4] {
            // Pass 0 scores with whatever the oracle left cached; a fresh
            // plan in between gives the batched path a cold cache too.
            for pass in 0..2 {
                let got = with_threads(threads, || pipeline.extract_batch(&texts));
                assert_sentences_eq(&got, &want, &format!("{name} threads={threads} pass={pass}"));
            }
        }
    }
}

#[test]
fn batched_extraction_matches_with_a_cold_cache_and_without_one() {
    let texts = ragged_texts();
    for capacity in [0, ner_core::plan::DEFAULT_TOKEN_CACHE] {
        let pipeline = pipeline_for(NerConfig::default(), 13).with_token_cache_capacity(capacity);
        // Batched goes FIRST: the batch itself is the cold-cache pass.
        let got = with_threads(4, || pipeline.extract_batch(&texts));
        let want: Vec<Sentence> = texts.iter().map(|t| pipeline.extract(t)).collect();
        assert_sentences_eq(&got, &want, &format!("cold-cache capacity={capacity}"));
    }
}

#[test]
fn annotate_batch_matches_annotate_on_pretokenized_ragged_input() {
    let pipeline = pipeline_for(NerConfig::default(), 17);
    let mut sentences: Vec<Sentence> = NewsGenerator::new(GeneratorConfig::default())
        .dataset(&mut StdRng::seed_from_u64(29), 8)
        .sentences;
    sentences.insert(3, Sentence::default()); // empty sentence mid-batch
    sentences.insert(5, Sentence::unlabeled(&["Solo".to_string()]));
    // `annotate` rejects empty sentences; the batch path returns them
    // untouched, so the oracle mirrors that.
    let want: Vec<Sentence> = sentences
        .iter()
        .map(|s| if s.is_empty() { s.clone() } else { pipeline.annotate(s) })
        .collect();
    for threads in [1, 2, 4] {
        let got = with_threads(threads, || pipeline.annotate_batch(&sentences));
        assert_sentences_eq(&got, &want, &format!("annotate_batch threads={threads}"));
    }
}

/// Batched-vs-per-sentence parity must hold at every SIMD level the CPU
/// supports, not just the configured one: the per-sentence oracle runs
/// forced-scalar, the batch runs forced to each level at 1/2/4 threads.
/// Exercises a representative slice of the zoo (first, middle, last
/// preset) to keep the runtime bounded.
#[test]
fn batched_extraction_is_identical_at_every_simd_level() {
    let texts = ragged_texts();
    let levels: Vec<SimdLevel> = [SimdLevel::Off, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| simd::is_supported(l))
        .collect();
    let zoo = materialized_zoo();
    let picks = [0, zoo.len() / 2, zoo.len() - 1];
    for (i, (name, cfg)) in zoo.into_iter().enumerate() {
        if !picks.contains(&i) {
            continue;
        }
        let pipeline = pipeline_for(cfg, 23);
        let want: Vec<Sentence> = simd::with_level(SimdLevel::Off, || {
            texts.iter().map(|t| pipeline.extract(t)).collect()
        });
        for &lvl in &levels {
            for threads in [1, 2, 4] {
                let got = with_threads(threads, || {
                    simd::with_level(lvl, || pipeline.extract_batch(&texts))
                });
                assert_sentences_eq(
                    &got,
                    &want,
                    &format!("{name} simd={} threads={threads}", lvl.name()),
                );
            }
        }
    }
}

#[test]
fn batched_cache_path_reports_whole_batch_lookups() {
    let texts = ragged_texts();
    let pipeline = pipeline_for(NerConfig::default(), 19);
    // Hold the pool lock across the whole measurement: every other test's
    // batched scoring happens under it, so the counter can't move under us.
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ner_par::set_global_threads(1);
    let before = ner_obs::counter_value("infer.cache.batch_lookups").unwrap_or(0.0);
    pipeline.extract_batch(&texts);
    let after = ner_obs::counter_value("infer.cache.batch_lookups").unwrap_or(0.0);
    // One lock acquisition per compute bucket — far fewer than one per
    // token/sentence. With 8 non-empty sentences at 1 thread there is
    // exactly one bucket.
    assert_eq!(after - before, 1.0, "expected exactly one whole-batch cache lookup");
}
