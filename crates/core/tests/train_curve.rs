//! Seed-fixed training-curve regression: the unified Exec-backend forward
//! must reproduce the loss curve of the historical per-layer tape forwards.
//!
//! The expected values below were recorded from the pre-unification
//! trainer (dual tape/eval forwards) at `NER_THREADS=1` with the seeds
//! fixed here. The unified code may reassociate a handful of gradient
//! accumulations (e.g. per-token embedding scatter-adds), so the
//! comparison is within f32 tolerance, not bit-exact — but any behavioural
//! change in the forward/backward math blows far past it.

use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
use ner_core::model::NerModel;
use ner_core::repr::SentenceEncoder;
use ner_core::trainer::{train, TrainConfig};
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_text::TagScheme;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Relative tolerance on per-epoch mean loss. Gradient-accumulation
/// reassociation drifts ~1e-6 after one step; three epochs of Adam
/// amplify that to at most ~1e-4 on these problems.
const REL_TOL: f64 = 5e-3;

fn curve(cfg: NerConfig, seed: u64, epochs: usize) -> Vec<f64> {
    // The serial loop is the historical reference; pin it regardless of
    // the host's core count.
    ner_par::set_global_threads(1);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = gen.dataset(&mut rng, 40);
    let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
    let train_enc = enc.encode_dataset(&ds, None);
    let mut model = NerModel::new(cfg, &enc, None, &mut rng);
    let tcfg = TrainConfig { epochs, patience: None, ..TrainConfig::default() };
    let report = train(&mut model, &train_enc, None, &tcfg, &mut rng);
    report.epochs.iter().map(|e| e.train_loss).collect()
}

fn assert_curve_matches(got: &[f64], expect: &[f64]) {
    assert_eq!(got.len(), expect.len(), "epoch count changed: {got:?}");
    for (epoch, (g, e)) in got.iter().zip(expect).enumerate() {
        let rel = (g - e).abs() / e.abs().max(1e-9);
        assert!(
            rel < REL_TOL,
            "epoch {epoch}: loss {g} diverged from the recorded curve value {e} \
             (relative error {rel:.2e}); got {got:?}, expected {expect:?}"
        );
    }
}

#[test]
fn bilstm_crf_training_reproduces_the_recorded_curve() {
    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 16 },
        char_repr: CharRepr::Cnn { dim: 8, filters: 8 },
        encoder: EncoderKind::Lstm { hidden: 12, bidirectional: true, layers: 1 },
        decoder: DecoderKind::Crf,
        dropout: 0.1,
        ..NerConfig::default()
    };
    let got = curve(cfg, 41, 3);
    println!("bilstm-crf curve: {got:?}");
    let expect = [15.945031464099884, 8.646252202987672, 4.1466882392764095];
    assert_curve_matches(&got, &expect);
}

#[test]
fn transformer_softmax_training_reproduces_the_recorded_curve() {
    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: WordRepr::Random { dim: 16 },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Transformer { d_model: 32, heads: 4, layers: 1, d_ff: 48 },
        decoder: DecoderKind::Softmax,
        dropout: 0.1,
        ..NerConfig::default()
    };
    let got = curve(cfg, 42, 3);
    println!("transformer-softmax curve: {got:?}");
    let expect = [19.80513572692871, 10.716610515117646, 6.774382211267948];
    assert_curve_matches(&got, &expect);
}
