//! Parity of the compiled tape-free inference path with the autograd-tape
//! path, across every zoo architecture: identical predicted tag sequences
//! on every sentence, with the token cache cold and warm. This is the
//! integration-level counterpart of `ner-tensor/tests/prop_fused.rs` —
//! the fused kernels are bit-identical op by op, so the assembled plan
//! must be prediction-identical end to end.

use ner_core::prelude::*;
use ner_core::zoo;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SENTENCES: usize = 12;

/// Zoo presets with pretrained embeddings swapped for random ones (as the
/// CLI does when no embedding file is supplied).
fn materialized_zoo() -> Vec<(String, NerConfig)> {
    zoo::zoo()
        .into_iter()
        .map(|e| {
            let mut cfg = e.config;
            if matches!(cfg.word, WordRepr::Pretrained { .. }) {
                cfg.word = WordRepr::Random { dim: 32 };
            }
            (e.name.to_string(), cfg)
        })
        .collect()
}

#[test]
fn planned_predictions_match_tape_predictions_for_every_zoo_model() {
    let ds = NewsGenerator::new(GeneratorConfig::default())
        .dataset(&mut StdRng::seed_from_u64(11), SENTENCES);
    for (name, cfg) in materialized_zoo() {
        let encoder = SentenceEncoder::from_dataset(&ds, cfg.scheme, 1);
        let encoded = encoder.encode_dataset(&ds, None);
        let model = NerModel::new(cfg, &encoder, None, &mut StdRng::seed_from_u64(7));
        let plan = model.compile_plan(256);
        // Two passes: the first runs with a cold token cache, the second
        // must reproduce the same tags entirely from cached base rows.
        for pass in 0..2 {
            for (i, enc) in encoded.iter().enumerate() {
                let tape_tags = model.predict_tags(enc);
                let plan_tags = model.predict_tags_planned(&plan, enc);
                assert_eq!(
                    plan_tags, tape_tags,
                    "{name}: divergence on sentence {i} (pass {pass})"
                );
            }
        }
        let (hits, misses) = plan.token_cache_stats();
        assert!(hits > 0, "{name}: second pass should hit the token cache");
        assert!(misses > 0, "{name}: first pass should miss the token cache");
    }
}

#[test]
fn parity_survives_a_training_step_and_plan_refresh_for_every_zoo_model() {
    // A stale plan is the classic failure mode: training mutates the CRF
    // parameters the plan snapshotted at compile time. After one optimizer
    // step plus `refresh_plan`, the planned path must agree with the tape
    // path again on every preset.
    let ds = NewsGenerator::new(GeneratorConfig::default())
        .dataset(&mut StdRng::seed_from_u64(19), SENTENCES);
    for (name, cfg) in materialized_zoo() {
        let encoder = SentenceEncoder::from_dataset(&ds, cfg.scheme, 1);
        let encoded = encoder.encode_dataset(&ds, None);
        let mut rng = StdRng::seed_from_u64(23);
        let model = NerModel::new(cfg, &encoder, None, &mut rng);
        let mut pipeline = NerPipeline::new(encoder, model);

        let train_cfg =
            TrainConfig { epochs: 1, patience: None, shuffle: false, ..Default::default() };
        ner_core::trainer::train(&mut pipeline.model, &encoded[..1], None, &train_cfg, &mut rng);
        pipeline.refresh_plan();

        for (i, enc) in encoded.iter().enumerate() {
            let tape_tags = pipeline.model.predict_tags(enc);
            let plan_tags = pipeline.model.predict_tags_planned(pipeline.plan(), enc);
            assert_eq!(plan_tags, tape_tags, "{name}: post-training divergence on sentence {i}");
        }
    }
}

#[test]
fn plan_without_cache_also_matches() {
    let ds = NewsGenerator::new(GeneratorConfig::default())
        .dataset(&mut StdRng::seed_from_u64(13), SENTENCES);
    let cfg = NerConfig::default();
    let encoder = SentenceEncoder::from_dataset(&ds, cfg.scheme, 1);
    let encoded = encoder.encode_dataset(&ds, None);
    let model = NerModel::new(cfg, &encoder, None, &mut StdRng::seed_from_u64(3));
    let plan = model.compile_plan(0);
    assert_eq!(plan.token_cache_stats(), (0, 0));
    for enc in &encoded {
        assert_eq!(model.predict_tags_planned(&plan, enc), model.predict_tags(enc));
    }
}

#[test]
fn pipeline_tape_and_planned_paths_agree_on_raw_text() {
    let ds =
        NewsGenerator::new(GeneratorConfig::default()).dataset(&mut StdRng::seed_from_u64(17), 40);
    let cfg = NerConfig::default();
    let encoder = SentenceEncoder::from_dataset(&ds, cfg.scheme, 1);
    let model = NerModel::new(cfg, &encoder, None, &mut StdRng::seed_from_u64(5));
    let pipeline = NerPipeline::new(encoder, model);
    for text in [
        "Michael Jordan was born in Brooklyn.",
        "The European Commission met in Brussels on Tuesday.",
        "Prices rose 4.2 percent, Reuters reported.",
    ] {
        let planned = pipeline.extract(text);
        let tape = pipeline.extract_tape(text);
        assert_eq!(planned.entities, tape.entities, "divergence on {text:?}");
    }
}
