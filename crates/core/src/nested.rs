//! Layered nested NER (paper §3.3.2; Ju et al. 2018, §5.1's nested-entity
//! challenge).
//!
//! Two flat models are stacked: one trained on *outermost* entities, one on
//! *innermost* (nested) entities. At inference their predictions are merged,
//! recovering mentions a single flat model structurally cannot (a flat tag
//! sequence admits no overlapping spans).

use crate::config::NerConfig;
use crate::model::NerModel;
use crate::repr::{EncodedSentence, SentenceEncoder};
use crate::trainer::{self, TrainConfig, TrainReport};
use ner_embed::WordEmbeddings;
use ner_text::{Dataset, EntitySpan, Sentence};
use rand::Rng;

/// Projects a dataset onto its outermost-entity layer.
pub fn outer_layer(ds: &Dataset) -> Dataset {
    Dataset::new(
        ds.sentences
            .iter()
            .map(|s| Sentence { tokens: s.tokens.clone(), entities: s.outermost_entities() })
            .collect(),
    )
}

/// Projects a dataset onto its inner (nested) entity layer; sentences
/// without nesting keep empty annotations, teaching the inner model to
/// stay silent.
pub fn inner_layer(ds: &Dataset) -> Dataset {
    Dataset::new(
        ds.sentences
            .iter()
            .map(|s| Sentence { tokens: s.tokens.clone(), entities: s.nested_entities() })
            .collect(),
    )
}

/// A two-layer nested NER system.
pub struct LayeredNer {
    /// Flat model for outermost entities.
    pub outer: NerModel,
    /// Flat model for nested (inner) entities.
    pub inner: NerModel,
    outer_encoder: SentenceEncoder,
    inner_encoder: SentenceEncoder,
}

impl LayeredNer {
    /// Builds and trains both layers on a nested-annotated dataset.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        cfg: &NerConfig,
        train_ds: &Dataset,
        pretrained: Option<&WordEmbeddings>,
        train_cfg: &TrainConfig,
        rng: &mut impl Rng,
    ) -> (Self, TrainReport, TrainReport) {
        let outer_ds = outer_layer(train_ds);
        let inner_ds = inner_layer(train_ds);
        // The inner encoder may see no entity types at all if the corpus has
        // no nesting; fall back to the outer inventory so the model builds.
        let outer_encoder = SentenceEncoder::from_dataset(&outer_ds, cfg.scheme, 1);
        let inner_encoder = if inner_ds.entity_types().is_empty() {
            SentenceEncoder::from_dataset(&outer_ds, cfg.scheme, 1)
        } else {
            SentenceEncoder::from_dataset(&inner_ds, cfg.scheme, 1)
        };

        let mut outer = NerModel::new(cfg.clone(), &outer_encoder, pretrained, rng);
        let mut inner = NerModel::new(cfg.clone(), &inner_encoder, pretrained, rng);

        let outer_enc = outer_encoder.encode_dataset(&outer_ds, None);
        let report_outer = trainer::train(&mut outer, &outer_enc, None, train_cfg, rng);
        let inner_enc = inner_encoder.encode_dataset(&inner_ds, None);
        let report_inner = trainer::train(&mut inner, &inner_enc, None, train_cfg, rng);

        (LayeredNer { outer, inner, outer_encoder, inner_encoder }, report_outer, report_inner)
    }

    /// Predicts the union of both layers' entities for one sentence. Inner
    /// predictions are kept only when properly nested inside an outer one
    /// (Ju et al.'s layered constraint).
    pub fn predict(&self, s: &Sentence) -> Vec<EntitySpan> {
        let outer_spans = self.outer.predict_spans(&self.outer_encoder.encode(s));
        let inner_spans = self.inner.predict_spans(&self.inner_encoder.encode(s));
        let mut all = outer_spans.clone();
        for i in inner_spans {
            if outer_spans.iter().any(|o| o.strictly_contains(&i)) && !all.contains(&i) {
                all.push(i);
            }
        }
        all
    }

    /// Predicts for a dataset, returning per-sentence span lists.
    pub fn predict_dataset(&self, ds: &Dataset) -> Vec<Vec<EntitySpan>> {
        ds.sentences.iter().map(|s| self.predict(s)).collect()
    }
}

/// Evaluates predictions against *all* gold layers (outer + nested).
pub fn evaluate_nested(ds: &Dataset, preds: &[Vec<EntitySpan>]) -> crate::metrics::EvalResult {
    let golds: Vec<Vec<EntitySpan>> = ds.sentences.iter().map(|s| s.entities.clone()).collect();
    crate::metrics::evaluate(&golds, preds)
}

/// Encodes and predicts with a single flat model trained on the outer
/// layer only — the baseline the layered model is compared against.
pub fn flat_predictions(
    model: &NerModel,
    encoder: &SentenceEncoder,
    ds: &Dataset,
) -> Vec<Vec<EntitySpan>> {
    ds.sentences
        .iter()
        .map(|s| {
            let enc: EncodedSentence = encoder.encode(s);
            model.predict_spans(&enc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CharRepr, DecoderKind, EncoderKind, WordRepr};
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nested_gen() -> NewsGenerator {
        NewsGenerator::new(GeneratorConfig {
            annotate_nested: true,
            institution_rate: 0.5,
            ..Default::default()
        })
    }

    fn quick_cfg() -> NerConfig {
        NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.1,
            ..NerConfig::default()
        }
    }

    #[test]
    fn layer_projection_partitions_entities() {
        let ds = nested_gen().dataset(&mut StdRng::seed_from_u64(1), 50);
        let outer = outer_layer(&ds);
        let inner = inner_layer(&ds);
        for ((full, o), i) in ds.sentences.iter().zip(&outer.sentences).zip(&inner.sentences) {
            assert_eq!(o.entities.len() + i.entities.len(), full.entities.len());
            assert!(!o.has_nesting());
        }
    }

    #[test]
    fn layered_model_recovers_nested_entities_flat_model_cannot() {
        let gen = nested_gen();
        let mut rng = StdRng::seed_from_u64(2);
        let train_ds = gen.dataset(&mut rng, 120);
        let test_ds = gen.dataset(&mut rng, 40);
        let tc = TrainConfig { epochs: 5, patience: None, ..Default::default() };

        let (layered, _, _) = LayeredNer::train(&quick_cfg(), &train_ds, None, &tc, &mut rng);
        let layered_preds = layered.predict_dataset(&test_ds);
        let layered_eval = evaluate_nested(&test_ds, &layered_preds);

        // Flat baseline: same architecture, outer annotations only.
        let outer_ds = outer_layer(&train_ds);
        let enc = SentenceEncoder::from_dataset(&outer_ds, TagScheme::Bio, 1);
        let mut flat = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let outer_enc = enc.encode_dataset(&outer_ds, None);
        trainer::train(&mut flat, &outer_enc, None, &tc, &mut rng);
        let flat_preds = flat_predictions(&flat, &enc, &test_ds);
        let flat_eval = evaluate_nested(&test_ds, &flat_preds);

        assert!(
            layered_eval.micro.recall > flat_eval.micro.recall,
            "layered recall {} should beat flat recall {} on nested gold",
            layered_eval.micro.recall,
            flat_eval.micro.recall
        );
    }
}
