//! NER evaluation (paper §2.3): exact-match precision/recall/F1 with micro
//! and macro averaging, the MUC-style relaxed match, token accuracy and the
//! seen/unseen entity recall split used by the §5.1 experiments.

use ner_text::EntitySpan;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Precision / recall / F1 triple.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct Prf {
    /// Precision = TP / (TP + FP).
    pub precision: f64,
    /// Recall = TP / (TP + FN).
    pub recall: f64,
    /// Balanced F-score.
    pub f1: f64,
}

impl Prf {
    fn from_counts(tp: usize, fp: usize, fn_: usize) -> Prf {
        let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
        let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Prf { precision, recall, f1 }
    }
}

/// Full evaluation result over a test set.
#[derive(Clone, Debug, Serialize)]
pub struct EvalResult {
    /// Micro-averaged exact-match scores (every entity counts equally).
    pub micro: Prf,
    /// Macro-averaged F1 (every entity *type* counts equally).
    pub macro_f1: f64,
    /// Per-type exact-match scores.
    pub per_type: BTreeMap<String, Prf>,
    /// MUC-style relaxed *type* match: credit when the type is right and the
    /// spans overlap (§2.3.2).
    pub relaxed_type: Prf,
    /// MUC-style relaxed *boundary* match: credit when boundaries are exact,
    /// regardless of type.
    pub boundary: Prf,
    /// Numbers of gold and predicted entities.
    pub gold_entities: usize,
    /// Number of predicted entities.
    pub pred_entities: usize,
}

/// Evaluates predicted spans against gold spans, sentence-aligned.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn evaluate(golds: &[Vec<EntitySpan>], preds: &[Vec<EntitySpan>]) -> EvalResult {
    assert_eq!(golds.len(), preds.len(), "one prediction list per gold sentence");

    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    let mut by_type: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    let mut relaxed_tp = 0usize;
    let mut relaxed_fp = 0usize;
    let mut relaxed_fn = 0usize;
    let mut bound_tp = 0usize;
    let mut bound_fp = 0usize;
    let mut bound_fn = 0usize;
    let mut gold_total = 0usize;
    let mut pred_total = 0usize;

    for (gold, pred) in golds.iter().zip(preds) {
        gold_total += gold.len();
        pred_total += pred.len();

        // Exact match (boundaries + type), set semantics.
        let gold_set: BTreeSet<&EntitySpan> = gold.iter().collect();
        let pred_set: BTreeSet<&EntitySpan> = pred.iter().collect();
        for p in &pred_set {
            let e = by_type.entry(p.label.clone()).or_default();
            if gold_set.contains(p) {
                tp += 1;
                e.0 += 1;
            } else {
                fp += 1;
                e.1 += 1;
            }
        }
        for g in &gold_set {
            if !pred_set.contains(g) {
                fn_ += 1;
                by_type.entry(g.label.clone()).or_default().2 += 1;
            }
        }

        // Relaxed type: a prediction is credited if some gold of the same
        // type overlaps it; a gold is missed if no same-type prediction
        // overlaps it.
        for p in pred {
            if gold.iter().any(|g| g.label == p.label && g.overlaps(p)) {
                relaxed_tp += 1;
            } else {
                relaxed_fp += 1;
            }
        }
        for g in gold {
            if !pred.iter().any(|p| p.label == g.label && p.overlaps(g)) {
                relaxed_fn += 1;
            }
        }

        // Boundary-only: exact boundaries, type ignored.
        for p in pred {
            if gold.iter().any(|g| g.same_boundaries(p)) {
                bound_tp += 1;
            } else {
                bound_fp += 1;
            }
        }
        for g in gold {
            if !pred.iter().any(|p| p.same_boundaries(g)) {
                bound_fn += 1;
            }
        }
    }

    let per_type: BTreeMap<String, Prf> = by_type
        .into_iter()
        .map(|(ty, (tp, fp, fn_))| (ty, Prf::from_counts(tp, fp, fn_)))
        .collect();
    let macro_f1 = if per_type.is_empty() {
        0.0
    } else {
        per_type.values().map(|p| p.f1).sum::<f64>() / per_type.len() as f64
    };

    EvalResult {
        micro: Prf::from_counts(tp, fp, fn_),
        macro_f1,
        per_type,
        relaxed_type: Prf::from_counts(relaxed_tp, relaxed_fp, relaxed_fn),
        boundary: Prf::from_counts(bound_tp, bound_fp, bound_fn),
        gold_entities: gold_total,
        pred_entities: pred_total,
    }
}

/// Recall split by whether a gold entity's surface was seen as a training
/// entity (paper §5.1's "previously-unseen entities" axis).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SeenUnseenRecall {
    /// Recall over test entities whose lowercased surface occurs among
    /// training entity surfaces.
    pub seen_recall: f64,
    /// Recall over test entities with novel surfaces.
    pub unseen_recall: f64,
    /// Number of seen gold entities.
    pub seen_count: usize,
    /// Number of unseen gold entities.
    pub unseen_count: usize,
}

/// Computes the seen/unseen recall split. `surfaces[i]` must hold the
/// lowercased surface string of `golds[i]`'s entities, aligned 1:1.
pub fn seen_unseen_recall(
    golds: &[Vec<EntitySpan>],
    preds: &[Vec<EntitySpan>],
    surfaces: &[Vec<String>],
    train_surfaces: &BTreeSet<String>,
) -> SeenUnseenRecall {
    let mut seen_tp = 0usize;
    let mut seen_total = 0usize;
    let mut unseen_tp = 0usize;
    let mut unseen_total = 0usize;
    for ((gold, pred), surf) in golds.iter().zip(preds).zip(surfaces) {
        assert_eq!(gold.len(), surf.len(), "one surface per gold entity");
        for (g, s) in gold.iter().zip(surf) {
            let hit = pred.contains(g);
            if train_surfaces.contains(s) {
                seen_total += 1;
                seen_tp += hit as usize;
            } else {
                unseen_total += 1;
                unseen_tp += hit as usize;
            }
        }
    }
    SeenUnseenRecall {
        seen_recall: if seen_total == 0 { 0.0 } else { seen_tp as f64 / seen_total as f64 },
        unseen_recall: if unseen_total == 0 { 0.0 } else { unseen_tp as f64 / unseen_total as f64 },
        seen_count: seen_total,
        unseen_count: unseen_total,
    }
}

/// Fraction of identical positions between two tag sequences, micro-averaged
/// over the dataset.
pub fn token_accuracy<S: AsRef<str>>(golds: &[Vec<S>], preds: &[Vec<S>]) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for (g, p) in golds.iter().zip(preds) {
        assert_eq!(g.len(), p.len(), "tag sequences must align");
        total += g.len();
        hits += g.iter().zip(p).filter(|(a, b)| a.as_ref() == b.as_ref()).count();
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(s: usize, e: usize, l: &str) -> EntitySpan {
        EntitySpan::new(s, e, l)
    }

    #[test]
    fn perfect_predictions_score_one() {
        let gold = vec![vec![span(0, 2, "PER"), span(4, 5, "LOC")]];
        let r = evaluate(&gold, &gold);
        assert_eq!(r.micro.f1, 1.0);
        assert_eq!(r.macro_f1, 1.0);
        assert_eq!(r.relaxed_type.f1, 1.0);
        assert_eq!(r.boundary.f1, 1.0);
    }

    #[test]
    fn empty_predictions_have_zero_recall() {
        let gold = vec![vec![span(0, 2, "PER")]];
        let pred = vec![vec![]];
        let r = evaluate(&gold, &pred);
        assert_eq!(r.micro.recall, 0.0);
        assert_eq!(r.micro.f1, 0.0);
        assert_eq!(r.gold_entities, 1);
        assert_eq!(r.pred_entities, 0);
    }

    #[test]
    fn exact_vs_relaxed_distinction() {
        // Prediction overlaps gold with the right type but wrong boundary:
        // exact-match says wrong, relaxed-type says right.
        let gold = vec![vec![span(0, 3, "PER")]];
        let pred = vec![vec![span(1, 3, "PER")]];
        let r = evaluate(&gold, &pred);
        assert_eq!(r.micro.f1, 0.0);
        assert_eq!(r.relaxed_type.f1, 1.0);
        assert_eq!(r.boundary.f1, 0.0);

        // Right boundary, wrong type: boundary credit only.
        let pred = vec![vec![span(0, 3, "LOC")]];
        let r = evaluate(&gold, &pred);
        assert_eq!(r.micro.f1, 0.0);
        assert_eq!(r.relaxed_type.f1, 0.0);
        assert_eq!(r.boundary.f1, 1.0);
    }

    #[test]
    fn micro_vs_macro_weighting() {
        // PER: 9 correct + 1 missed (f1 high); LOC: 0/1 (f1 zero).
        let mut golds = Vec::new();
        let mut preds = Vec::new();
        for _ in 0..9 {
            golds.push(vec![span(0, 1, "PER")]);
            preds.push(vec![span(0, 1, "PER")]);
        }
        golds.push(vec![span(0, 1, "PER"), span(2, 3, "LOC")]);
        preds.push(vec![]);
        let r = evaluate(&golds, &preds);
        // micro over 11 golds: tp=9, fn=2, fp=0 → R=9/11
        assert!((r.micro.recall - 9.0 / 11.0).abs() < 1e-9);
        // macro: mean of PER f1 (9/9 prec, 9/10 rec) and LOC f1 (0)
        let per_f1 = r.per_type["PER"].f1;
        assert!((r.macro_f1 - per_f1 / 2.0).abs() < 1e-9);
        assert!(r.macro_f1 < r.micro.f1, "macro punishes the small failed class");
    }

    #[test]
    fn seen_unseen_split() {
        let golds = vec![vec![span(0, 1, "PER"), span(2, 3, "LOC")]];
        let preds = vec![vec![span(0, 1, "PER")]];
        let surfaces = vec![vec!["jordan".to_string(), "atlantis".to_string()]];
        let train: BTreeSet<String> = ["jordan".to_string()].into_iter().collect();
        let r = seen_unseen_recall(&golds, &preds, &surfaces, &train);
        assert_eq!(r.seen_recall, 1.0);
        assert_eq!(r.unseen_recall, 0.0);
        assert_eq!(r.seen_count, 1);
        assert_eq!(r.unseen_count, 1);
    }

    #[test]
    fn token_accuracy_counts_positions() {
        let gold = vec![vec!["O", "B-PER", "O"]];
        let pred = vec![vec!["O", "O", "O"]];
        assert!((token_accuracy(&gold, &pred) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn from_counts_never_divides_by_zero() {
        // All-zero counts: both denominators are 0 → everything 0, no NaN.
        let r = Prf::from_counts(0, 0, 0);
        assert_eq!(r, Prf { precision: 0.0, recall: 0.0, f1: 0.0 });
        // Only false positives: recall denominator is 0.
        let r = Prf::from_counts(0, 3, 0);
        assert_eq!((r.precision, r.recall, r.f1), (0.0, 0.0, 0.0));
        // Only false negatives: precision denominator is 0.
        let r = Prf::from_counts(0, 0, 3);
        assert_eq!((r.precision, r.recall, r.f1), (0.0, 0.0, 0.0));
        assert!(r.f1.is_finite());
    }

    #[test]
    fn fully_empty_evaluation_is_all_zeros() {
        // No sentences at all.
        let r = evaluate(&[], &[]);
        assert_eq!(r.micro, Prf::default());
        assert_eq!(r.macro_f1, 0.0);
        assert!(r.per_type.is_empty());
        assert_eq!((r.gold_entities, r.pred_entities), (0, 0));
        // Sentences with no entities on either side.
        let r = evaluate(&[vec![], vec![]], &[vec![], vec![]]);
        assert_eq!(r.micro.f1, 0.0);
        assert!(r.macro_f1.is_finite());
        // Empty tag sequences: accuracy must not divide by zero.
        assert_eq!(token_accuracy::<&str>(&[vec![]], &[vec![]]), 0.0);
    }

    #[test]
    fn macro_f1_counts_types_absent_from_predictions() {
        // ORG exists only in gold (never predicted): it still contributes a
        // zero F1 term to the macro average instead of being dropped.
        let golds = vec![vec![span(0, 1, "PER"), span(2, 3, "ORG")]];
        let preds = vec![vec![span(0, 1, "PER")]];
        let r = evaluate(&golds, &preds);
        assert_eq!(r.per_type.len(), 2);
        assert_eq!(r.per_type["ORG"], Prf::default());
        assert!((r.macro_f1 - 0.5).abs() < 1e-9);

        // Conversely a hallucinated type (prediction only) also drags macro.
        let golds = vec![vec![span(0, 1, "PER")]];
        let preds = vec![vec![span(0, 1, "PER"), span(2, 3, "MISC")]];
        let r = evaluate(&golds, &preds);
        assert_eq!(r.per_type["MISC"], Prf::default());
        assert!((r.macro_f1 - 0.5 * r.per_type["PER"].f1).abs() < 1e-9);
    }

    #[test]
    fn seen_unseen_split_with_no_unseen_entities() {
        // Every gold surface was seen in training: the unseen bucket is
        // empty and its recall reports 0 instead of NaN.
        let golds = vec![vec![span(0, 1, "PER")]];
        let preds = vec![vec![span(0, 1, "PER")]];
        let surfaces = vec![vec!["jordan".to_string()]];
        let train: BTreeSet<String> = ["jordan".to_string()].into_iter().collect();
        let r = seen_unseen_recall(&golds, &preds, &surfaces, &train);
        assert_eq!((r.seen_count, r.unseen_count), (1, 0));
        assert_eq!(r.seen_recall, 1.0);
        assert_eq!(r.unseen_recall, 0.0);
        assert!(r.unseen_recall.is_finite());
    }
}
