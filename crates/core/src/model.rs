//! The assembled NER model: input representation → context encoder → tag
//! decoder, exactly the pipeline of the survey's Fig. 2 taxonomy.

use crate::config::{DecoderKind, NerConfig};
use crate::decoder::crf::CrfDecodeTables;
use crate::decoder::{Crf, PointerDecoder, RnnDecoder, Segment, SemiCrf};
use crate::encoder::Encoder;
use crate::plan::ForwardPlan;
use crate::repr::{EncodedSentence, InputLayer, SentenceEncoder};
use ner_embed::WordEmbeddings;
use ner_tensor::nn::Linear;
use ner_tensor::{
    BatchedExec, BatchedTapeExec, Exec, FusedExec, FusedVal, PackedExec, ParamStore, Tape, Tensor,
    Var,
};
use ner_text::{EntitySpan, TagSet};
use rand::{Rng, RngCore};

enum Head {
    Softmax { proj: Linear },
    Crf { proj: Linear, crf: Crf },
    SemiCrf { proj: Linear, crf: SemiCrf },
    Rnn { dec: RnnDecoder },
    Pointer { dec: PointerDecoder },
}

/// Wall-clock split of one batched forward
/// ([`NerModel::predict_spans_batch`]) across the inference stages, in
/// microseconds. These cover the *whole batch*; the caller amortizes or
/// attributes them per sentence.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStageMicros {
    /// Input-layer time (embeddings + char composition + cache traffic).
    pub embed_us: f64,
    /// Context-encoder time.
    pub encode_us: f64,
    /// Decode time (emission projection + per-sentence search).
    pub decode_us: f64,
}

/// A complete neural NER model.
pub struct NerModel {
    /// The architecture this model was built from.
    pub cfg: NerConfig,
    /// All trainable parameters.
    pub store: ParamStore,
    /// Tag inventory.
    pub tag_set: TagSet,
    /// Entity-type names (sorted) for segment-level decoders.
    pub entity_types: Vec<String>,
    input: InputLayer,
    encoder: Encoder,
    head: Head,
}

impl NerModel {
    /// Builds a model for the vocabularies of `encoder`; `pretrained` is
    /// required iff the config selects pretrained word embeddings.
    pub fn new(
        cfg: NerConfig,
        encoder: &SentenceEncoder,
        pretrained: Option<&WordEmbeddings>,
        rng: &mut impl Rng,
    ) -> Self {
        let mut store = ParamStore::new();
        let input = InputLayer::new(
            &mut store,
            rng,
            &cfg,
            encoder.word_vocab.len(),
            encoder.char_vocab.len(),
            encoder.feat_dim(),
            pretrained,
        );
        let ctx_encoder = Encoder::new(&mut store, rng, "encoder", input.out_dim(), &cfg.encoder);
        let enc_dim = ctx_encoder.out_dim();
        let k = encoder.tag_set.len();
        let types = encoder.entity_types.len();
        let head = match &cfg.decoder {
            DecoderKind::Softmax => {
                Head::Softmax { proj: Linear::new(&mut store, rng, "head.proj", enc_dim, k) }
            }
            DecoderKind::Crf => Head::Crf {
                proj: Linear::new(&mut store, rng, "head.proj", enc_dim, k),
                crf: Crf::new(&mut store, rng, "head.crf", k),
            },
            DecoderKind::SemiCrf { max_len } => Head::SemiCrf {
                proj: Linear::new(&mut store, rng, "head.proj", enc_dim, types + 1),
                crf: SemiCrf::new(&mut store, rng, "head.semicrf", types, *max_len),
            },
            DecoderKind::Rnn { tag_dim, hidden } => Head::Rnn {
                dec: RnnDecoder::new(&mut store, rng, "head.rnn", enc_dim, *tag_dim, *hidden, k),
            },
            DecoderKind::Pointer { att, max_len } => Head::Pointer {
                dec: PointerDecoder::new(
                    &mut store, rng, "head.ptr", enc_dim, *att, types, *max_len,
                ),
            },
        };
        NerModel {
            cfg,
            store,
            tag_set: encoder.tag_set.clone(),
            entity_types: encoder.entity_types.clone(),
            input,
            encoder: ctx_encoder,
            head,
        }
    }

    /// Total number of scalar weights.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Runs representation + context encoding on a tape; dropout only when
    /// `train`. The layer forwards themselves are backend-generic — this
    /// seam adds the tape-only dropout between them.
    fn encode(
        &self,
        tape: &mut Tape,
        enc: &EncodedSentence,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let x0 = self.input.forward(tape, &self.store, enc, None);
        let x = if train && self.cfg.dropout > 0.0 {
            tape.dropout(x0, self.cfg.dropout, rng)
        } else {
            x0
        };
        let h = self.encoder.forward(tape, &self.store, x);
        if train && self.cfg.dropout > 0.0 {
            tape.dropout(h, self.cfg.dropout, rng)
        } else {
            h
        }
    }

    /// Maps gold spans to segment-decoder segments (labels `1..=Y`), with
    /// spans of unknown type or excess length degraded gracefully.
    fn gold_entity_segments(&self, enc: &EncodedSentence, max_len: usize) -> Vec<Segment> {
        let mut segs: Vec<Segment> = enc
            .gold
            .iter()
            .filter_map(|e| {
                let label = self.entity_types.iter().position(|t| *t == e.label)? + 1;
                let end = e.end.min(e.start + max_len);
                Some(Segment { start: e.start, end, label })
            })
            .collect();
        segs.sort_by_key(|s| s.start);
        segs
    }

    /// Differentiable training loss for one sentence.
    pub fn loss(&self, tape: &mut Tape, enc: &EncodedSentence, rng: &mut impl Rng) -> Var {
        let h = self.encode(tape, enc, true, rng);
        match &self.head {
            Head::Softmax { proj } => {
                let logits = proj.forward(tape, &self.store, h);
                tape.cross_entropy_sum(logits, &enc.tag_ids)
            }
            Head::Crf { proj, crf } => {
                let emissions = proj.forward(tape, &self.store, h);
                crf.nll(tape, &self.store, emissions, &enc.tag_ids)
            }
            Head::SemiCrf { proj, crf } => {
                let emissions = proj.forward(tape, &self.store, h);
                let ents = self.gold_entity_segments(enc, crf.max_len());
                let gold = SemiCrf::gold_segments(enc.len(), &ents);
                crf.nll(tape, &self.store, emissions, &gold)
            }
            Head::Rnn { dec } => dec.nll(tape, &self.store, h, &enc.tag_ids),
            Head::Pointer { dec } => {
                let ents = self.gold_entity_segments(enc, dec.max_len());
                let gold = SemiCrf::gold_segments(enc.len(), &ents);
                dec.nll(tape, &self.store, h, &gold)
            }
        }
    }

    /// Differentiable training loss for a packed bucket of (non-empty)
    /// sentences, recorded through [`BatchedTapeExec`]: the input layer,
    /// the encoder and the head's emission projection run as batch-wide
    /// packed operations, while each sentence's structured loss (CRF /
    /// semi-CRF partition, decoder steps) is recorded in that sentence's
    /// segment scope so its parameter gradients land in the owning
    /// [`ner_tensor::GradBuffer`] of a segmented backward.
    ///
    /// `rngs[s]` drives sentence `s`'s dropout masks; passing the same
    /// streams the per-sentence oracle would use makes every loss value —
    /// and, through `Tape::backward_into_segmented`, every applied
    /// gradient — bit-identical to one tape per sentence.
    ///
    /// Returns the summed loss (each sentence's term receives exactly the
    /// oracle's 1.0 gradient seed) plus the per-sentence loss values in
    /// caller order.
    pub fn loss_batch(
        &self,
        tape: &mut Tape,
        encs: &[&EncodedSentence],
        rngs: &mut [&mut dyn RngCore],
    ) -> (Var, Vec<f64>) {
        assert_eq!(encs.len(), rngs.len(), "one dropout stream per sentence");
        let lens: Vec<usize> = encs.iter().map(|e| e.len()).collect();
        let mut bx = BatchedTapeExec::new(tape, &lens);
        let x0 = self.input.forward_batch(&mut bx, &self.store, encs);
        let x =
            if self.cfg.dropout > 0.0 { bx.dropout_packed(x0, self.cfg.dropout, rngs) } else { x0 };
        let h0 = self.encoder.forward_batch(&mut bx, &self.store, x);
        let h =
            if self.cfg.dropout > 0.0 { bx.dropout_packed(h0, self.cfg.dropout, rngs) } else { h0 };

        let mut losses: Vec<Var> = Vec::with_capacity(encs.len());
        match &self.head {
            Head::Softmax { proj } => {
                let logits = proj.forward(&mut bx, &self.store, h);
                for (s, enc) in encs.iter().enumerate() {
                    let ls = bx.slice_segment(logits, s);
                    losses
                        .push(bx.scoped(s, |ex| ex.tape_mut().cross_entropy_sum(ls, &enc.tag_ids)));
                }
            }
            Head::Crf { proj, crf } => {
                let emissions = proj.forward(&mut bx, &self.store, h);
                for (s, enc) in encs.iter().enumerate() {
                    let es = bx.slice_segment(emissions, s);
                    losses.push(
                        bx.scoped(s, |ex| crf.nll(ex.tape_mut(), &self.store, es, &enc.tag_ids)),
                    );
                }
            }
            Head::SemiCrf { proj, crf } => {
                let emissions = proj.forward(&mut bx, &self.store, h);
                for (s, enc) in encs.iter().enumerate() {
                    let es = bx.slice_segment(emissions, s);
                    let ents = self.gold_entity_segments(enc, crf.max_len());
                    let gold = SemiCrf::gold_segments(enc.len(), &ents);
                    losses.push(bx.scoped(s, |ex| crf.nll(ex.tape_mut(), &self.store, es, &gold)));
                }
            }
            Head::Rnn { dec } => {
                for (s, enc) in encs.iter().enumerate() {
                    let hs = bx.slice_segment(h, s);
                    losses.push(
                        bx.scoped(s, |ex| dec.nll(ex.tape_mut(), &self.store, hs, &enc.tag_ids)),
                    );
                }
            }
            Head::Pointer { dec } => {
                for (s, enc) in encs.iter().enumerate() {
                    let hs = bx.slice_segment(h, s);
                    let ents = self.gold_entity_segments(enc, dec.max_len());
                    let gold = SemiCrf::gold_segments(enc.len(), &ents);
                    losses.push(bx.scoped(s, |ex| dec.nll(ex.tape_mut(), &self.store, hs, &gold)));
                }
            }
        }

        let mut total = losses[0];
        for &l in &losses[1..] {
            total = Exec::add(&mut bx, total, l);
        }
        drop(bx);
        let per_sentence = losses.iter().map(|&l| tape.value(l).item() as f64).collect();
        (total, per_sentence)
    }

    /// Predicted entity spans for one sentence (evaluation mode).
    pub fn predict_spans(&self, enc: &EncodedSentence) -> Vec<EntitySpan> {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut tape = Tape::new();
        let h = self.encode(&mut tape, enc, false, &mut rng);
        self.decode_from_states(&mut tape, h, None)
    }

    /// Predicts from an externally supplied input-representation matrix
    /// (evaluation mode) — used by test-time adversarial-attack evaluation
    /// (§4.5), which perturbs the representation directly.
    pub fn predict_spans_from_input(
        &self,
        enc: &EncodedSentence,
        input: Tensor,
    ) -> Vec<EntitySpan> {
        debug_assert_eq!(input.rows(), enc.len());
        let mut tape = Tape::new();
        let x = tape.constant(input);
        let h = self.encoder.forward(&mut tape, &self.store, x);
        self.decode_from_states(&mut tape, h, None)
    }

    /// Decodes entity spans from encoder states `h` on any backend. When
    /// `tables` is given (the planned path), CRF Viterbi runs on the
    /// precompiled log-space tables instead of re-deriving them — the
    /// floats are identical either way.
    fn decode_from_states<E: Exec>(
        &self,
        ex: &mut E,
        h: E::V,
        tables: Option<&CrfDecodeTables>,
    ) -> Vec<EntitySpan> {
        match &self.head {
            Head::Softmax { proj } => {
                let logits = proj.forward(ex, &self.store, h);
                let v = ex.value(logits);
                let tags: Vec<usize> = (0..v.rows()).map(|r| v.argmax_row(r)).collect();
                self.tags_to_spans(&tags)
            }
            Head::Crf { proj, crf } => {
                let emissions = proj.forward(ex, &self.store, h);
                let tags = match tables {
                    Some(t) => t.viterbi(ex.value(emissions)).0,
                    None => {
                        let constraints = self.cfg.constrained_decoding.then_some(&self.tag_set);
                        crf.viterbi(&self.store, ex.value(emissions), constraints).0
                    }
                };
                self.tags_to_spans(&tags)
            }
            Head::SemiCrf { proj, crf } => {
                let emissions = proj.forward(ex, &self.store, h);
                let segs = crf.decode(&self.store, ex.value(emissions));
                SemiCrf::segments_to_spans(&segs, &self.entity_types)
            }
            Head::Rnn { dec } => {
                let tags = dec.decode(ex, &self.store, h);
                self.tags_to_spans(&tags)
            }
            Head::Pointer { dec } => {
                let segs = dec.decode(ex, &self.store, h);
                SemiCrf::segments_to_spans(&segs, &self.entity_types)
            }
        }
    }

    /// Predicted per-token tag strings (all decoders; segment decoders are
    /// rendered through the tag scheme).
    pub fn predict_tags(&self, enc: &EncodedSentence) -> Vec<String> {
        let spans = self.predict_spans(enc);
        self.tag_set.scheme().spans_to_tags(enc.len(), &spans)
    }

    /// Compiles the tape-free inference plan for this model: precomputed
    /// CRF decode tables plus an LRU token-feature cache of the given
    /// capacity (`0` disables caching). The plan snapshots the CRF
    /// parameters — recompile after any parameter update.
    pub fn compile_plan(&self, token_cache_capacity: usize) -> ForwardPlan {
        let crf_tables = match &self.head {
            Head::Crf { crf, .. } => {
                let constraints = self.cfg.constrained_decoding.then_some(&self.tag_set);
                Some(crf.decode_tables(&self.store, constraints))
            }
            _ => None,
        };
        ForwardPlan::new(crf_tables, token_cache_capacity)
    }

    /// Planned (tape-free) [`predict_spans`](Self::predict_spans) — the
    /// SAME layer forwards as the tape path, driven by the `FusedExec`
    /// backend (fused kernels, pooled buffers, plan caches), so the
    /// predictions are bit-identical. Feeds the `infer.embed_us` /
    /// `infer.encode_us` / `infer.decode_us` per-stage latency histograms —
    /// and, when a [`ner_obs::trace::TraceCtx`] is installed on this
    /// thread, attributes the same stage timings to the owning request.
    pub fn predict_spans_planned(
        &self,
        plan: &ForwardPlan,
        enc: &EncodedSentence,
    ) -> Vec<EntitySpan> {
        use crate::plan::stage;
        let mut ex = FusedExec::new(&self.store).with_pe_cache(plan.pe_cache());
        let t0 = std::time::Instant::now();
        let x = self.input.forward(&mut ex, &self.store, enc, plan.token_cache());
        let t1 = std::time::Instant::now();
        let h = self.encoder.forward(&mut ex, &self.store, x);
        let t2 = std::time::Instant::now();
        let spans = self.decode_from_states(&mut ex, h, plan.crf_tables());
        let tee = ner_obs::trace::observe_stage;
        tee(stage::EMBED_US, stage::EMBED, (t1 - t0).as_secs_f64() * 1e6);
        tee(stage::ENCODE_US, stage::ENCODE, (t2 - t1).as_secs_f64() * 1e6);
        tee(stage::DECODE_US, stage::DECODE, t2.elapsed().as_secs_f64() * 1e6);
        spans
    }

    /// Planned (tape-free) [`predict_tags`](Self::predict_tags).
    pub fn predict_tags_planned(&self, plan: &ForwardPlan, enc: &EncodedSentence) -> Vec<String> {
        let spans = self.predict_spans_planned(plan, enc);
        self.tag_set.scheme().spans_to_tags(enc.len(), &spans)
    }

    /// Scores a whole batch of (non-empty) sentences as one packed
    /// [`BatchedExec`] forward: the input layer, the encoder and the
    /// decoder's emission projection each run as single batch-wide
    /// operations; only the structured decode (Viterbi / segment DP /
    /// greedy steps) runs per sentence, over that sentence's slice of the
    /// batched emissions. Predictions are bit-identical to
    /// [`Self::predict_spans_planned`] on each sentence alone.
    ///
    /// Returns one span list per input (same order) plus the wall-clock
    /// split across the embed/encode/decode stages — the caller decides
    /// how to attribute those to histograms and traces, since one batch
    /// serves many requests.
    pub fn predict_spans_batch(
        &self,
        plan: &ForwardPlan,
        encs: &[&EncodedSentence],
    ) -> (Vec<Vec<EntitySpan>>, BatchStageMicros) {
        assert!(!encs.is_empty(), "predict_spans_batch needs at least one sentence");
        let lens: Vec<usize> = encs.iter().map(|e| e.len()).collect();
        let mut bx = BatchedExec::new(&self.store, &lens).with_pe_cache(plan.pe_cache());
        let t0 = std::time::Instant::now();
        let x = self.input.forward_batch_cached(&mut bx, &self.store, encs, plan.token_cache());
        let t1 = std::time::Instant::now();
        let h = self.encoder.forward_batch(&mut bx, &self.store, x);
        let t2 = std::time::Instant::now();
        let spans = self.decode_from_states_batch(&mut bx, h, plan.crf_tables());
        let stages = BatchStageMicros {
            embed_us: (t1 - t0).as_secs_f64() * 1e6,
            encode_us: (t2 - t1).as_secs_f64() * 1e6,
            decode_us: t2.elapsed().as_secs_f64() * 1e6,
        };
        (spans, stages)
    }

    /// Batched decode: the emission projection runs as one GEMM over the
    /// packed encoder states wherever the head has one (softmax, CRF,
    /// semi-CRF); the structured search itself stays per sentence.
    fn decode_from_states_batch(
        &self,
        bx: &mut BatchedExec<'_>,
        h: FusedVal,
        tables: Option<&CrfDecodeTables>,
    ) -> Vec<Vec<EntitySpan>> {
        let nseg = bx.segments();
        let mut out = Vec::with_capacity(nseg);
        match &self.head {
            Head::Softmax { proj } => {
                let logits = proj.forward(bx, &self.store, h);
                let v = bx.value(logits);
                for s in 0..nseg {
                    let (off, len) = (bx.offset_of(s), bx.len_of(s));
                    let tags: Vec<usize> = (off..off + len).map(|r| v.argmax_row(r)).collect();
                    out.push(self.tags_to_spans(&tags));
                }
            }
            Head::Crf { proj, crf } => {
                let emissions = proj.forward(bx, &self.store, h);
                for s in 0..nseg {
                    let es = bx.slice_segment(emissions, s);
                    let tags = match tables {
                        Some(t) => t.viterbi(bx.value(es)).0,
                        None => {
                            let constraints =
                                self.cfg.constrained_decoding.then_some(&self.tag_set);
                            crf.viterbi(&self.store, bx.value(es), constraints).0
                        }
                    };
                    out.push(self.tags_to_spans(&tags));
                }
            }
            Head::SemiCrf { proj, crf } => {
                let emissions = proj.forward(bx, &self.store, h);
                for s in 0..nseg {
                    let es = bx.slice_segment(emissions, s);
                    let segs = crf.decode(&self.store, bx.value(es));
                    out.push(SemiCrf::segments_to_spans(&segs, &self.entity_types));
                }
            }
            Head::Rnn { dec } => {
                for s in 0..nseg {
                    let hs = bx.slice_segment(h, s);
                    let tags = dec.decode(bx.inner_mut(), &self.store, hs);
                    out.push(self.tags_to_spans(&tags));
                }
            }
            Head::Pointer { dec } => {
                for s in 0..nseg {
                    let hs = bx.slice_segment(h, s);
                    let segs = dec.decode(bx.inner_mut(), &self.store, hs);
                    out.push(SemiCrf::segments_to_spans(&segs, &self.entity_types));
                }
            }
        }
        out
    }

    /// The decoder's *raw* tag sequence for token-level decoders (softmax,
    /// CRF, RNN) — may be structurally ill-formed for greedy decoders, which
    /// is exactly what the Fig. 12 analysis measures. Segment-level decoders
    /// (semi-CRF, pointer) return `None`: their output is well-formed by
    /// construction.
    pub fn predict_raw_tags(&self, enc: &EncodedSentence) -> Option<Vec<String>> {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut tape = Tape::new();
        let h = self.encode(&mut tape, enc, false, &mut rng);
        let ids = match &self.head {
            Head::Softmax { proj } => {
                let logits = proj.forward(&mut tape, &self.store, h);
                let v = tape.value(logits);
                (0..v.rows()).map(|r| v.argmax_row(r)).collect()
            }
            Head::Crf { proj, crf } => {
                let emissions = proj.forward(&mut tape, &self.store, h);
                let constraints = self.cfg.constrained_decoding.then_some(&self.tag_set);
                crf.viterbi(&self.store, tape.value(emissions), constraints).0
            }
            Head::Rnn { dec } => dec.decode(&mut tape, &self.store, h),
            Head::SemiCrf { .. } | Head::Pointer { .. } => return None,
        };
        Some(self.tag_set.decode(&ids))
    }

    fn tags_to_spans(&self, tags: &[usize]) -> Vec<EntitySpan> {
        let labels = self.tag_set.decode(tags);
        self.tag_set.scheme().tags_to_spans(&labels)
    }

    /// Sentence-level confidence: length-normalized log-probability of the
    /// decoded analysis — the MNLP criterion of Shen et al. (paper §4.3).
    /// Lower = less confident = more informative to annotate.
    pub fn confidence(&self, enc: &EncodedSentence) -> f64 {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut tape = Tape::new();
        let h = self.encode(&mut tape, enc, false, &mut rng);
        let n = enc.len() as f64;
        match &self.head {
            Head::Crf { proj, crf } => {
                let emissions = proj.forward(&mut tape, &self.store, h);
                let v = tape.value(emissions);
                let (_, best) = crf.viterbi(&self.store, v, None);
                (best - crf.log_partition(&self.store, v)) / n
            }
            Head::Softmax { proj } => {
                let logits = proj.forward(&mut tape, &self.store, h);
                let ls = tape.log_softmax_rows(logits);
                let v = tape.value(ls);
                (0..v.rows())
                    .map(|r| v.row(r).iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64)
                    .sum::<f64>()
                    / n
            }
            // Segment-level decoder: emission-softmax proxy.
            Head::SemiCrf { proj, .. } => self.softmax_proxy_confidence(&mut tape, proj, h, n),
            // Greedy decoders expose no tractable sequence probability;
            // report the neutral value (uncertainty sampling degrades to
            // random selection, which the caller can detect via 0.0).
            Head::Pointer { .. } | Head::Rnn { .. } => 0.0,
        }
    }

    fn softmax_proxy_confidence(&self, tape: &mut Tape, proj: &Linear, h: Var, n: f64) -> f64 {
        let logits = proj.forward(tape, &self.store, h);
        let ls = tape.log_softmax_rows(logits);
        let v = tape.value(ls);
        (0..v.rows())
            .map(|r| v.row(r).iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64)
            .sum::<f64>()
            / n
    }

    /// Per-token posterior entropies (nats) — the token-entropy acquisition
    /// signal for active learning. Supported for softmax and CRF heads;
    /// other decoders fall back to the emission-softmax entropy.
    pub fn token_entropies(&self, enc: &EncodedSentence) -> Vec<f64> {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut tape = Tape::new();
        let h = self.encode(&mut tape, enc, false, &mut rng);
        let probs: Tensor = match &self.head {
            Head::Crf { proj, crf } => {
                let emissions = proj.forward(&mut tape, &self.store, h);
                crf.marginals(&self.store, tape.value(emissions))
            }
            Head::Softmax { proj } | Head::SemiCrf { proj, .. } => {
                let logits = proj.forward(&mut tape, &self.store, h);
                let sm = tape.softmax_rows(logits);
                tape.value(sm).clone()
            }
            Head::Rnn { .. } | Head::Pointer { .. } => {
                let v = tape.value(h);
                return vec![0.0; v.rows()];
            }
        };
        (0..probs.rows())
            .map(|r| {
                probs
                    .row(r)
                    .iter()
                    .filter(|&&p| p > 1e-12)
                    .map(|&p| -(p as f64) * (p as f64).ln())
                    .sum()
            })
            .collect()
    }

    /// The raw input-representation node alongside the loss — the hook
    /// adversarial (FGM) training needs to read ∂loss/∂input (paper §4.5).
    /// Evaluation-mode negative log-likelihood of the sentence's *given*
    /// labels, normalized per token. High values flag annotations the model
    /// finds implausible — the standard noisy-label signal used by the
    /// §4.4 instance selector.
    pub fn nll_of_labels(&self, enc: &EncodedSentence) -> f64 {
        let mut tape = Tape::new();
        let x = self.input.forward(&mut tape, &self.store, enc, None);
        let h = self.encoder.forward(&mut tape, &self.store, x);
        let loss = self.loss_from_states(&mut tape, h, enc);
        tape.value(loss).item() as f64 / enc.len().max(1) as f64
    }

    /// `train` toggles dropout: `true` for FGM training passes, `false`
    /// when computing test-time attacks (robustness evaluation).
    pub fn loss_with_input(
        &self,
        tape: &mut Tape,
        enc: &EncodedSentence,
        train: bool,
        rng: &mut impl Rng,
    ) -> (Var, Var) {
        let x0 = self.input.forward(tape, &self.store, enc, None);
        let x = if train && self.cfg.dropout > 0.0 {
            tape.dropout(x0, self.cfg.dropout, rng)
        } else {
            x0
        };
        let h0 = self.encoder.forward(tape, &self.store, x);
        let h = if train && self.cfg.dropout > 0.0 {
            tape.dropout(h0, self.cfg.dropout, rng)
        } else {
            h0
        };
        let loss = self.loss_from_states(tape, h, enc);
        (loss, x)
    }

    /// Training loss computed from an externally supplied input matrix
    /// (used for the FGM second pass on perturbed inputs).
    pub fn loss_from_input_override(
        &self,
        tape: &mut Tape,
        enc: &EncodedSentence,
        input: Tensor,
        rng: &mut impl Rng,
    ) -> Var {
        let x = tape.constant(input);
        let h0 = self.encoder.forward(tape, &self.store, x);
        let h = if self.cfg.dropout > 0.0 { tape.dropout(h0, self.cfg.dropout, rng) } else { h0 };
        self.loss_from_states(tape, h, enc)
    }

    fn loss_from_states(&self, tape: &mut Tape, h: Var, enc: &EncodedSentence) -> Var {
        match &self.head {
            Head::Softmax { proj } => {
                let logits = proj.forward(tape, &self.store, h);
                tape.cross_entropy_sum(logits, &enc.tag_ids)
            }
            Head::Crf { proj, crf } => {
                let emissions = proj.forward(tape, &self.store, h);
                crf.nll(tape, &self.store, emissions, &enc.tag_ids)
            }
            Head::SemiCrf { proj, crf } => {
                let emissions = proj.forward(tape, &self.store, h);
                let ents = self.gold_entity_segments(enc, crf.max_len());
                let gold = SemiCrf::gold_segments(enc.len(), &ents);
                crf.nll(tape, &self.store, emissions, &gold)
            }
            Head::Rnn { dec } => dec.nll(tape, &self.store, h, &enc.tag_ids),
            Head::Pointer { dec } => {
                let ents = self.gold_entity_segments(enc, dec.max_len());
                let gold = SemiCrf::gold_segments(enc.len(), &ents);
                dec.nll(tape, &self.store, h, &gold)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CharRepr, EncoderKind, WordRepr};
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::{Dataset, TagScheme};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(cfg: NerConfig) -> (NerModel, Vec<EncodedSentence>) {
        let ds: Dataset = NewsGenerator::new(GeneratorConfig::default())
            .dataset(&mut StdRng::seed_from_u64(1), 25);
        let enc = SentenceEncoder::from_dataset(&ds, cfg.scheme, 1);
        let encoded = enc.encode_dataset(&ds, None);
        let model = NerModel::new(cfg, &enc, None, &mut StdRng::seed_from_u64(2));
        (model, encoded)
    }

    fn small(decoder: DecoderKind) -> NerConfig {
        NerConfig {
            word: WordRepr::Random { dim: 12 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 10, bidirectional: true, layers: 1 },
            decoder,
            dropout: 0.0,
            scheme: TagScheme::Bio,
            ..NerConfig::default()
        }
    }

    #[test]
    fn every_decoder_produces_finite_loss_and_valid_predictions() {
        for decoder in [
            DecoderKind::Softmax,
            DecoderKind::Crf,
            DecoderKind::SemiCrf { max_len: 4 },
            DecoderKind::Rnn { tag_dim: 6, hidden: 10 },
            DecoderKind::Pointer { att: 8, max_len: 4 },
        ] {
            let (mut model, encoded) = setup(small(decoder.clone()));
            let mut rng = StdRng::seed_from_u64(3);
            let mut tape = Tape::new();
            let loss = model.loss(&mut tape, &encoded[0], &mut rng);
            let v = tape.value(loss).item();
            assert!(v.is_finite() && v > 0.0, "{decoder:?} loss was {v}");
            tape.backward(loss, &mut model.store);
            assert!(model.store.grad_global_norm() > 0.0, "{decoder:?} produced no gradient");

            let spans = model.predict_spans(&encoded[0]);
            for s in &spans {
                assert!(s.end <= encoded[0].len());
            }
            let tags = model.predict_tags(&encoded[0]);
            assert_eq!(tags.len(), encoded[0].len());
        }
    }

    #[test]
    fn constrained_crf_predictions_are_well_formed() {
        let mut cfg = small(DecoderKind::Crf);
        cfg.scheme = TagScheme::Bioes;
        cfg.constrained_decoding = true;
        let (model, encoded) = setup(cfg);
        for e in encoded.iter().take(10) {
            let tags = model.predict_tags(e);
            assert!(TagScheme::Bioes.is_valid(&tags), "invalid: {tags:?}");
        }
    }

    #[test]
    fn confidence_and_entropy_are_finite() {
        for decoder in [DecoderKind::Softmax, DecoderKind::Crf] {
            let (model, encoded) = setup(small(decoder));
            let c = model.confidence(&encoded[0]);
            assert!(c.is_finite() && c <= 0.0, "confidence (log prob) should be <= 0, got {c}");
            let ent = model.token_entropies(&encoded[0]);
            assert_eq!(ent.len(), encoded[0].len());
            assert!(ent.iter().all(|e| e.is_finite() && *e >= 0.0));
        }
    }

    #[test]
    fn loss_with_input_exposes_gradient_on_representation() {
        let (mut model, encoded) = setup(small(DecoderKind::Crf));
        let mut rng = StdRng::seed_from_u64(4);
        let mut tape = Tape::new();
        let (loss, x) = model.loss_with_input(&mut tape, &encoded[0], true, &mut rng);
        tape.backward(loss, &mut model.store);
        let g = tape.grad(x).expect("input grad must exist");
        assert!(g.sq_norm() > 0.0);
        // Second pass on a perturbed copy also yields a finite loss.
        let perturbed = {
            let mut t = tape.value(x).clone();
            t.add_scaled(g, 0.01);
            t
        };
        let mut tape2 = Tape::new();
        let loss2 = model.loss_from_input_override(&mut tape2, &encoded[0], perturbed, &mut rng);
        assert!(tape2.value(loss2).item().is_finite());
    }

    #[test]
    fn param_count_is_positive_and_reported() {
        let (model, _) = setup(small(DecoderKind::Crf));
        assert!(model.num_params() > 1000);
    }
}
