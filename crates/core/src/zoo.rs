//! The model zoo: named, ready-to-train configurations for the
//! architectures the survey's Table 3 surveys — this library's analog of
//! the "off-the-shelf NER tools" inventory of Table 2.

use crate::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
use ner_text::TagScheme;
use serde::Serialize;

/// A named preset with its provenance in the survey.
#[derive(Clone, Debug, Serialize)]
pub struct ZooEntry {
    /// Short preset name (CLI-friendly).
    pub name: &'static str,
    /// The survey reference the preset reproduces.
    pub reference: &'static str,
    /// The configuration.
    pub config: NerConfig,
}

/// All presets.
pub fn zoo() -> Vec<ZooEntry> {
    let base = NerConfig::default();
    vec![
        ZooEntry {
            name: "bilstm-crf",
            reference: "Huang et al. 2015 [18] — the field's workhorse",
            config: NerConfig {
                char_repr: CharRepr::None,
                word: WordRepr::Pretrained { fine_tune: true },
                ..base.clone()
            },
        },
        ZooEntry {
            name: "charcnn-bilstm-crf",
            reference: "Ma & Hovy 2016 [96]",
            config: NerConfig { word: WordRepr::Pretrained { fine_tune: true }, ..base.clone() },
        },
        ZooEntry {
            name: "charlstm-bilstm-crf",
            reference: "Lample et al. 2016 [19]",
            config: NerConfig {
                char_repr: CharRepr::Lstm { dim: 16, hidden: 12 },
                word: WordRepr::Pretrained { fine_tune: true },
                ..base.clone()
            },
        },
        ZooEntry {
            name: "idcnn-crf",
            reference: "Strubell et al. 2017 [90]",
            config: NerConfig {
                char_repr: CharRepr::None,
                word: WordRepr::Pretrained { fine_tune: true },
                encoder: EncoderKind::IdCnn {
                    filters: 48,
                    width: 3,
                    dilations: vec![1, 2, 4],
                    iterations: 2,
                },
                ..base.clone()
            },
        },
        ZooEntry {
            name: "cnn-crf",
            reference: "Collobert et al. 2011 [17] sentence approach",
            config: NerConfig {
                char_repr: CharRepr::None,
                encoder: EncoderKind::Cnn { filters: 48, layers: 2, width: 3, global: true },
                ..base.clone()
            },
        },
        ZooEntry {
            name: "bigru-crf",
            reference: "Yang et al. 2016 [105]",
            config: NerConfig {
                char_repr: CharRepr::Lstm { dim: 16, hidden: 12 },
                encoder: EncoderKind::Gru { hidden: 48, bidirectional: true },
                ..base.clone()
            },
        },
        ZooEntry {
            name: "transformer-softmax",
            reference: "Devlin et al. 2019 [118] fine-tuning style head",
            config: NerConfig {
                char_repr: CharRepr::None,
                encoder: EncoderKind::Transformer { d_model: 48, heads: 4, layers: 2, d_ff: 96 },
                decoder: DecoderKind::Softmax,
                ..base.clone()
            },
        },
        ZooEntry {
            name: "bilstm-semicrf",
            reference: "Ye & Ling 2018 [142]",
            config: NerConfig { decoder: DecoderKind::SemiCrf { max_len: 4 }, ..base.clone() },
        },
        ZooEntry {
            name: "bilstm-rnn",
            reference: "Shen et al. 2017 [87] greedy decoder",
            config: NerConfig {
                decoder: DecoderKind::Rnn { tag_dim: 8, hidden: 32 },
                ..base.clone()
            },
        },
        ZooEntry {
            name: "lstm-pointer",
            reference: "Zhai et al. 2017 [94]",
            config: NerConfig {
                decoder: DecoderKind::Pointer { att: 24, max_len: 4 },
                ..base.clone()
            },
        },
        ZooEntry {
            name: "window-mlp",
            reference: "Collobert window approach baseline",
            config: NerConfig {
                char_repr: CharRepr::None,
                encoder: EncoderKind::WindowMlp { window: 2, hidden: 48 },
                decoder: DecoderKind::Softmax,
                scheme: TagScheme::Bio,
                ..base.clone()
            },
        },
    ]
}

/// Looks a preset up by name.
pub fn preset(name: &str) -> Option<NerConfig> {
    zoo().into_iter().find(|e| e.name == name).map(|e| e.config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_names_are_unique() {
        let entries = zoo();
        let mut names: Vec<_> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len());
        assert!(entries.len() >= 10, "the zoo should cover the survey's main families");
    }

    #[test]
    fn preset_lookup() {
        assert!(preset("bilstm-crf").is_some());
        assert!(preset("charcnn-bilstm-crf").is_some());
        assert!(preset("nope").is_none());
    }

    #[test]
    fn presets_have_distinct_signatures() {
        let entries = zoo();
        let mut sigs: Vec<String> = entries.iter().map(|e| e.config.signature()).collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), entries.len(), "each preset must be a distinct architecture");
    }
}
