//! Bidirectional recursive network over phrase structure (paper §3.3.3,
//! Fig. 8; Li et al. 2017).
//!
//! The survey's point is that entities align with linguistic constituents,
//! so composing representations along a *tree* rather than the token
//! sequence is a viable context encoder. Lacking a constituency parser, we
//! build the tree with a deterministic rule chunker over the POS-lite tags
//! (DESIGN.md substitution: the encoder only needs a topology correlated
//! with phrase structure). The bottom-up pass composes each subtree's
//! semantics; the top-down pass propagates the enclosing structure back to
//! the leaves; a token is classified from both (Fig. 8's two directions).

use ner_tensor::nn::{Embedding, Linear};
use ner_tensor::optim::{Adam, Optimizer};
use ner_tensor::{ParamStore, Tape, Var};
use ner_text::pos::{tag_sentence, PosTag};
use ner_text::{EntitySpan, Sentence, TagScheme, TagSet, Vocab};
use rand::Rng;

/// A binary tree over token indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tree {
    /// A single token.
    Leaf(usize),
    /// An internal node with two children.
    Node(Box<Tree>, Box<Tree>),
}

impl Tree {
    /// Number of leaves.
    pub fn len(&self) -> usize {
        match self {
            Tree::Leaf(_) => 1,
            Tree::Node(l, r) => l.len() + r.len(),
        }
    }

    /// Trees are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Depth of the tree (leaf = 1).
    pub fn depth(&self) -> usize {
        match self {
            Tree::Leaf(_) => 1,
            Tree::Node(l, r) => 1 + l.depth().max(r.depth()),
        }
    }
}

fn right_branching(indices: &[usize]) -> Tree {
    match indices {
        [] => unreachable!("chunks are non-empty"),
        [i] => Tree::Leaf(*i),
        [i, rest @ ..] => Tree::Node(Box::new(Tree::Leaf(*i)), Box::new(right_branching(rest))),
    }
}

fn chunk_class(tag: PosTag) -> u8 {
    match tag {
        PosTag::Det | PosTag::Adj | PosTag::Noun | PosTag::PropN | PosTag::Num => 0, // noun group
        PosTag::Verb | PosTag::Adv => 1,                                             // verb group
        PosTag::Adp | PosTag::Conj | PosTag::Pron => 2,                              // function
        PosTag::Punct | PosTag::Other => 3,
    }
}

/// Builds a binarized phrase tree: tokens are grouped into contiguous
/// POS-class chunks (noun groups, verb groups, …), each chunk becomes a
/// right-branching subtree, and chunks combine right-branching at the top.
pub fn chunk_tree(tokens: &[&str]) -> Tree {
    assert!(!tokens.is_empty(), "cannot build a tree over no tokens");
    let tags = tag_sentence(tokens);
    let mut chunks: Vec<Vec<usize>> = Vec::new();
    for (i, tag) in tags.iter().enumerate() {
        let class = chunk_class(*tag);
        match chunks.last_mut() {
            Some(chunk) if chunk_class(tags[*chunk.last().expect("non-empty")]) == class => {
                chunk.push(i)
            }
            _ => chunks.push(vec![i]),
        }
    }
    let subtrees: Vec<Tree> = chunks.iter().map(|c| right_branching(c)).collect();
    subtrees
        .into_iter()
        .rev()
        .reduce(|right, left| Tree::Node(Box::new(left), Box::new(right)))
        .expect("at least one chunk")
}

/// A recursive-network NER model (softmax decoded, as in Table 3 row \[97\]).
pub struct RecursiveNer {
    /// Trainable parameters.
    pub store: ParamStore,
    /// Tag inventory (IO scheme keeps per-token classification simple).
    pub tag_set: TagSet,
    vocab: Vocab,
    emb: Embedding,
    compose_up: Linear,
    compose_down: Linear,
    out: Linear,
    dim: usize,
}

impl RecursiveNer {
    /// Builds the model over the given training vocabulary and entity types.
    pub fn new(vocab: Vocab, entity_types: &[String], dim: usize, rng: &mut impl Rng) -> Self {
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, rng, "rec.emb", vocab.len(), dim);
        let compose_up = Linear::new(&mut store, rng, "rec.up", 2 * dim, dim);
        let compose_down = Linear::new(&mut store, rng, "rec.down", 2 * dim, dim);
        let tag_set = TagSet::new(TagScheme::Io, entity_types);
        let out = Linear::new(&mut store, rng, "rec.out", 2 * dim, tag_set.len());
        RecursiveNer { store, tag_set, vocab, emb, compose_up, compose_down, out, dim }
    }

    /// Top-down pass: distributes the enclosing-structure state to leaves.
    fn down(
        &self,
        tape: &mut Tape,
        tree: &Tree,
        parent_down: Var,
        up_states: &UpStates,
        acc: &mut Vec<(usize, Var)>,
    ) {
        match tree {
            Tree::Leaf(i) => acc.push((*i, parent_down)),
            Tree::Node(l, r) => {
                // Each child's down state combines the parent's down state
                // with the *sibling's* bottom-up state (the structure that
                // contains the child but not the child itself).
                let ul = up_states.of(l);
                let ur = up_states.of(r);
                let cat_l = tape.concat_cols(&[parent_down, ur]);
                let lin_l = self.compose_down.forward(tape, &self.store, cat_l);
                let down_l = tape.tanh(lin_l);
                let cat_r = tape.concat_cols(&[parent_down, ul]);
                let lin_r = self.compose_down.forward(tape, &self.store, cat_r);
                let down_r = tape.tanh(lin_r);
                self.down(tape, l, down_l, up_states, acc);
                self.down(tape, r, down_r, up_states, acc);
            }
        }
    }

    fn logits(&self, tape: &mut Tape, tokens: &[String]) -> Var {
        let ids: Vec<usize> =
            tokens.iter().map(|t| self.vocab.get_or_unk(&t.to_lowercase())).collect();
        let leaves = self.emb.lookup(tape, &self.store, &ids);
        let tree = chunk_tree(&tokens.iter().map(String::as_str).collect::<Vec<_>>());

        let mut up_acc = Vec::new();
        let mut ups = UpStates::default();
        let root_up = self.up_memo(tape, &tree, leaves, &mut up_acc, &mut ups);
        let _ = root_up;
        let root_down = tape.constant(ner_tensor::Tensor::zeros(1, self.dim));
        let mut down_acc = Vec::new();
        self.down(tape, &tree, root_down, &ups, &mut down_acc);

        up_acc.sort_by_key(|(i, _)| *i);
        down_acc.sort_by_key(|(i, _)| *i);
        let rows: Vec<Var> = up_acc
            .iter()
            .zip(&down_acc)
            .map(|((_, u), (_, d))| tape.concat_cols(&[*u, *d]))
            .collect();
        let reps = tape.concat_rows(&rows);
        self.out.forward(tape, &self.store, reps)
    }

    /// Bottom-up with memoized subtree states (needed by the top-down pass).
    fn up_memo(
        &self,
        tape: &mut Tape,
        tree: &Tree,
        leaves: Var,
        acc: &mut Vec<(usize, Var)>,
        memo: &mut UpStates,
    ) -> Var {
        let state = match tree {
            Tree::Leaf(i) => {
                let h = tape.row(leaves, *i);
                acc.push((*i, h));
                h
            }
            Tree::Node(l, r) => {
                let hl = self.up_memo(tape, l, leaves, acc, memo);
                let hr = self.up_memo(tape, r, leaves, acc, memo);
                let cat = tape.concat_cols(&[hl, hr]);
                let lin = self.compose_up.forward(tape, &self.store, cat);
                tape.tanh(lin)
            }
        };
        memo.insert(tree, state);
        state
    }

    /// Summed cross-entropy against IO tags.
    pub fn loss(&self, tape: &mut Tape, tokens: &[String], tag_ids: &[usize]) -> Var {
        let logits = self.logits(tape, tokens);
        tape.cross_entropy_sum(logits, tag_ids)
    }

    /// Predicts entity spans for a sentence.
    pub fn predict(&self, tokens: &[String]) -> Vec<EntitySpan> {
        let mut tape = Tape::new();
        let logits = self.logits(&mut tape, tokens);
        let v = tape.value(logits);
        let ids: Vec<usize> = (0..v.rows()).map(|r| v.argmax_row(r)).collect();
        let tags = self.tag_set.decode(&ids);
        TagScheme::Io.tags_to_spans(&tags)
    }

    /// Trains on (sentence, IO-tag) pairs for `epochs`; returns mean losses.
    pub fn fit(
        &mut self,
        data: &[Sentence],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        let _ = rng;
        let mut opt = Adam::new(lr);
        let mut losses = Vec::with_capacity(epochs);
        let prepared: Vec<(Vec<String>, Vec<usize>)> = data
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| {
                let tokens: Vec<String> = s.tokens.iter().map(|t| t.text.clone()).collect();
                let tags = self.tag_set.encode(&s.tags(TagScheme::Io));
                (tokens, tags)
            })
            .collect();
        for _ in 0..epochs {
            let mut total = 0.0;
            for (tokens, tags) in &prepared {
                let mut tape = Tape::new();
                let loss = self.loss(&mut tape, tokens, tags);
                total += tape.value(loss).item() as f64;
                tape.backward(loss, &mut self.store);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
            losses.push(total / prepared.len().max(1) as f64);
        }
        losses
    }
}

/// Memo of bottom-up states keyed by subtree identity (pointer address is
/// unstable across recursion, so key on the leaf range instead — unique in
/// any tree over distinct indices).
#[derive(Default)]
struct UpStates {
    map: std::collections::HashMap<(usize, usize), Var>,
}

impl UpStates {
    fn span(tree: &Tree) -> (usize, usize) {
        match tree {
            Tree::Leaf(i) => (*i, *i + 1),
            Tree::Node(l, r) => (Self::span(l).0, Self::span(r).1),
        }
    }

    fn insert(&mut self, tree: &Tree, v: Var) {
        self.map.insert(Self::span(tree), v);
    }

    fn of(&self, tree: &Tree) -> Var {
        self.map[&Self::span(tree)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chunk_tree_covers_all_tokens_in_order() {
        let toks = ["the", "old", "man", "quickly", "visited", "Brooklyn", "."];
        let tree = chunk_tree(&toks);
        assert_eq!(tree.len(), toks.len());
        // In-order traversal yields 0..n.
        fn leaves(t: &Tree, out: &mut Vec<usize>) {
            match t {
                Tree::Leaf(i) => out.push(*i),
                Tree::Node(l, r) => {
                    leaves(l, out);
                    leaves(r, out);
                }
            }
        }
        let mut order = Vec::new();
        leaves(&tree, &mut order);
        assert_eq!(order, (0..toks.len()).collect::<Vec<_>>());
        assert!(tree.depth() >= 3, "chunking should give non-trivial structure");
    }

    #[test]
    fn single_token_tree() {
        assert_eq!(chunk_tree(&["Hello"]), Tree::Leaf(0));
    }

    #[test]
    fn recursive_model_learns_synthetic_ner() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let train = gen.dataset(&mut rng, 80);
        let types = train.entity_types();
        let mut model = RecursiveNer::new(train.word_vocab(1), &types, 24, &mut rng);
        let losses = model.fit(&train.sentences, 5, 0.01, &mut rng);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "recursive training should reduce loss: {losses:?}"
        );
        // Prediction produces in-bounds spans.
        let tokens: Vec<String> =
            train.sentences[0].tokens.iter().map(|t| t.text.clone()).collect();
        for s in model.predict(&tokens) {
            assert!(s.end <= tokens.len());
        }
    }
}
