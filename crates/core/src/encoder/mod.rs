//! Context encoder architectures — the middle axis of the survey's taxonomy
//! (paper §3.3): CNN (Fig. 5), Iterated Dilated CNN (Fig. 6), LSTM/BiLSTM
//! (Fig. 7), GRU, Transformer, a windowed MLP (Collobert's window approach),
//! and the identity (for decoder-only models over contextual embeddings).

pub mod recursive;

use crate::config::EncoderKind;
use ner_tensor::fused::Activation;
use ner_tensor::nn::{GruCell, Linear, LstmCell, TransformerBlock};
use ner_tensor::{init, nn, Exec, PackedExec, ParamId, ParamStore, Tensor};
use rand::Rng;

/// A built context encoder: maps `[n, in_dim] → [n, out_dim]`.
pub struct Encoder {
    imp: EncoderImpl,
    out_dim: usize,
}

enum EncoderImpl {
    Identity,
    WindowMlp {
        lin: Linear,
        window: usize,
    },
    Cnn {
        layers: Vec<(ParamId, ParamId)>,
        width: usize,
        global: bool,
    },
    IdCnn {
        initial: (ParamId, ParamId),
        block: Vec<(ParamId, ParamId, usize)>, // (w, b, dilation)
        width: usize,
        iterations: usize,
    },
    Lstm {
        layers: Vec<(LstmCell, Option<LstmCell>)>,
    },
    Gru {
        fw: GruCell,
        bw: Option<GruCell>,
    },
    Transformer {
        proj: Linear,
        blocks: Vec<TransformerBlock>,
        d_model: usize,
    },
}

impl Encoder {
    /// Builds an encoder of the given kind over `in_dim`-wide inputs.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        kind: &EncoderKind,
    ) -> Self {
        match kind {
            EncoderKind::Identity => Encoder { imp: EncoderImpl::Identity, out_dim: in_dim },
            EncoderKind::WindowMlp { window, hidden } => {
                let span = 2 * window + 1;
                let lin = Linear::new(store, rng, &format!("{name}.mlp"), span * in_dim, *hidden);
                Encoder { imp: EncoderImpl::WindowMlp { lin, window: *window }, out_dim: *hidden }
            }
            EncoderKind::Cnn { filters, layers, width, global } => {
                assert!(*layers >= 1 && width % 2 == 1);
                let mut convs = Vec::with_capacity(*layers);
                let mut d = in_dim;
                for l in 0..*layers {
                    let w = store
                        .register(&format!("{name}.conv{l}.w"), init::he(rng, width * d, *filters));
                    let b = store.register(&format!("{name}.conv{l}.b"), init::zeros(1, *filters));
                    convs.push((w, b));
                    d = *filters;
                }
                Encoder {
                    imp: EncoderImpl::Cnn { layers: convs, width: *width, global: *global },
                    out_dim: if *global { 2 * filters } else { *filters },
                }
            }
            EncoderKind::IdCnn { filters, width, dilations, iterations } => {
                assert!(width % 2 == 1 && !dilations.is_empty() && *iterations >= 1);
                let initial = (
                    store.register(
                        &format!("{name}.init.w"),
                        init::he(rng, width * in_dim, *filters),
                    ),
                    store.register(&format!("{name}.init.b"), init::zeros(1, *filters)),
                );
                // One weight set per dilation, SHARED across iterations —
                // the parameter sharing that gives ID-CNNs their capacity
                // at small parameter cost (Strubell et al. 2017).
                let block = dilations
                    .iter()
                    .enumerate()
                    .map(|(i, &dil)| {
                        (
                            store.register(
                                &format!("{name}.dil{i}.w"),
                                init::he(rng, width * filters, *filters),
                            ),
                            store.register(&format!("{name}.dil{i}.b"), init::zeros(1, *filters)),
                            dil,
                        )
                    })
                    .collect();
                Encoder {
                    imp: EncoderImpl::IdCnn {
                        initial,
                        block,
                        width: *width,
                        iterations: *iterations,
                    },
                    out_dim: *filters,
                }
            }
            EncoderKind::Lstm { hidden, bidirectional, layers } => {
                assert!(*layers >= 1);
                let mut cells = Vec::with_capacity(*layers);
                let mut d = in_dim;
                for l in 0..*layers {
                    let fw = LstmCell::new(store, rng, &format!("{name}.l{l}.fw"), d, *hidden);
                    let bw = bidirectional
                        .then(|| LstmCell::new(store, rng, &format!("{name}.l{l}.bw"), d, *hidden));
                    cells.push((fw, bw));
                    d = if *bidirectional { 2 * hidden } else { *hidden };
                }
                Encoder { imp: EncoderImpl::Lstm { layers: cells }, out_dim: d }
            }
            EncoderKind::Gru { hidden, bidirectional } => {
                let fw = GruCell::new(store, rng, &format!("{name}.fw"), in_dim, *hidden);
                let bw = bidirectional
                    .then(|| GruCell::new(store, rng, &format!("{name}.bw"), in_dim, *hidden));
                let out_dim = if *bidirectional { 2 * hidden } else { *hidden };
                Encoder { imp: EncoderImpl::Gru { fw, bw }, out_dim }
            }
            EncoderKind::Transformer { d_model, heads, layers, d_ff } => {
                let proj = Linear::new(store, rng, &format!("{name}.proj"), in_dim, *d_model);
                let blocks = (0..*layers)
                    .map(|i| {
                        TransformerBlock::new(
                            store,
                            rng,
                            &format!("{name}.block{i}"),
                            *d_model,
                            *heads,
                            *d_ff,
                        )
                    })
                    .collect();
                Encoder {
                    imp: EncoderImpl::Transformer { proj, blocks, d_model: *d_model },
                    out_dim: *d_model,
                }
            }
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Encodes `x [n, in_dim] → [n, out_dim]` on any backend.
    pub fn forward<E: Exec>(&self, ex: &mut E, store: &ParamStore, x: E::V) -> E::V {
        match &self.imp {
            EncoderImpl::Identity => x,
            EncoderImpl::WindowMlp { lin, window } => {
                let windowed = window_concat(ex, x, *window);
                lin.forward_act(ex, store, windowed, Activation::Tanh)
            }
            EncoderImpl::Cnn { layers, width, global } => {
                let mut h = x;
                for (w, b) in layers {
                    let wv = ex.param(store, *w);
                    let bv = ex.param(store, *b);
                    h = ex.conv1d_act(h, wv, bv, *width, 1, Activation::Relu);
                }
                if *global {
                    // Fig. 5's sentence-level global feature: max over time,
                    // broadcast back onto every position.
                    let n = ex.value(h).rows();
                    let g = ex.max_over_rows(h);
                    let broadcast = ex.concat_rows(&vec![g; n]);
                    ex.concat_cols(&[h, broadcast])
                } else {
                    h
                }
            }
            EncoderImpl::IdCnn { initial, block, width, iterations } => {
                let wv = ex.param(store, initial.0);
                let bv = ex.param(store, initial.1);
                let mut h = ex.conv1d_act(x, wv, bv, *width, 1, Activation::Relu);
                for _ in 0..*iterations {
                    for (w, b, dil) in block {
                        let wv = ex.param(store, *w);
                        let bv = ex.param(store, *b);
                        h = ex.conv1d_act(h, wv, bv, *width, *dil, Activation::Relu);
                    }
                }
                h
            }
            EncoderImpl::Lstm { layers } => {
                let mut h = x;
                for (fw, bw) in layers {
                    h = match bw {
                        Some(bw) => nn::bidirectional(ex, store, fw, bw, h),
                        None => fw.sequence(ex, store, h),
                    };
                }
                h
            }
            EncoderImpl::Gru { fw, bw } => match bw {
                Some(bw) => {
                    let f = fw.sequence(ex, store, x);
                    let b = bw.sequence_rev(ex, store, x);
                    ex.concat_cols(&[f, b])
                }
                None => fw.sequence(ex, store, x),
            },
            EncoderImpl::Transformer { proj, blocks, d_model } => {
                let p = proj.forward(ex, store, x);
                let n = ex.value(p).rows();
                let pe = ex.positional_encoding(n, *d_model);
                let mut h = ex.add(p, pe);
                for block in blocks {
                    h = block.forward(ex, store, h, false);
                }
                h
            }
        }
    }

    /// Encodes a packed batch `x [N, in_dim] → [N, out_dim]` on a packed
    /// backend; each segment's output rows are bit-identical to
    /// [`Self::forward`] on that segment alone.
    ///
    /// Most encoder kinds fall through to the generic forward — the
    /// packed-backend overrides already make convolutions, sequence
    /// reversal and the recurrent runners segment-aware. The three cases
    /// with sentence-shaped intermediates that those overrides cannot see
    /// (window stacking, the global max pool, the attention core) are
    /// handled per segment here via [`PackedExec::scoped`].
    pub fn forward_batch<P: PackedExec>(&self, bx: &mut P, store: &ParamStore, x: P::V) -> P::V {
        match &self.imp {
            EncoderImpl::WindowMlp { lin, window } => {
                // Window stacking pads with zeros at *sentence* edges, so
                // it runs per segment in sentence scope.
                let mut segs = Vec::with_capacity(bx.segments());
                for s in 0..bx.segments() {
                    let xs = bx.slice_segment(x, s);
                    segs.push(bx.scoped(s, |ex| window_concat(ex, xs, *window)));
                }
                let windowed = bx.concat_rows(&segs);
                lin.forward_act(bx, store, windowed, Activation::Tanh)
            }
            EncoderImpl::Cnn { layers, width, global: true } => {
                let mut h = x;
                for (w, b) in layers {
                    let wv = bx.param(store, *w);
                    let bv = bx.param(store, *b);
                    h = bx.conv1d_act(h, wv, bv, *width, 1, Activation::Relu);
                }
                // The global feature is a *sentence-level* max, broadcast
                // back over that sentence's positions only.
                let mut segs = Vec::with_capacity(bx.segments());
                for s in 0..bx.segments() {
                    let hs = bx.slice_segment(h, s);
                    let n = bx.len_of(s);
                    segs.push(bx.scoped(s, |ex| {
                        let g = ex.max_over_rows(hs);
                        ex.concat_rows(&vec![g; n])
                    }));
                }
                let broadcast = bx.concat_rows(&segs);
                bx.concat_cols(&[h, broadcast])
            }
            EncoderImpl::Transformer { proj, blocks, d_model } => {
                let p = proj.forward(bx, store, x);
                let n = bx.value(p).rows();
                let pe = bx.positional_encoding(n, *d_model);
                let mut h = bx.add(p, pe);
                for block in blocks {
                    h = block.forward_batch(bx, store, h, false);
                }
                h
            }
            // Identity, plain CNN, ID-CNN, LSTM and GRU: every op in the
            // generic forward is row-wise or already overridden.
            _ => self.forward(bx, store, x),
        }
    }
}

/// Concatenates each row with its ±`window` neighbors (zero-padded at the
/// edges): `[n, d] → [n, (2·window+1)·d]`. Collobert's window approach.
pub fn window_concat<E: Exec>(ex: &mut E, x: E::V, window: usize) -> E::V {
    let (n, d) = ex.value(x).shape();
    let mut parts = Vec::with_capacity(2 * window + 1);
    for offset in -(window as isize)..=(window as isize) {
        let shifted = if offset == 0 {
            x
        } else if offset < 0 {
            // Row t sees row t+offset (earlier): pad |offset| zero rows on top.
            let k = (-offset) as usize;
            if k >= n {
                ex.constant(Tensor::zeros(n, d))
            } else {
                let zeros = ex.constant(Tensor::zeros(k, d));
                let body = ex.slice_rows(x, 0, n - k);
                ex.concat_rows(&[zeros, body])
            }
        } else {
            let k = offset as usize;
            if k >= n {
                ex.constant(Tensor::zeros(n, d))
            } else {
                let body = ex.slice_rows(x, k, n - k);
                let zeros = ex.constant(Tensor::zeros(k, d));
                ex.concat_rows(&[body, zeros])
            }
        };
        parts.push(shifted);
    }
    ex.concat_cols(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderKind;
    use ner_tensor::{Tape, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_shape(kind: EncoderKind, in_dim: usize, n: usize) -> usize {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let enc = Encoder::new(&mut store, &mut rng, "enc", in_dim, &kind);
        let mut tape = Tape::new();
        let x = tape.constant(init::uniform(&mut rng, n, in_dim, 1.0));
        let y = enc.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (n, enc.out_dim()));
        assert!(tape.value(y).all_finite());
        enc.out_dim()
    }

    #[test]
    fn all_encoders_produce_declared_shapes() {
        assert_eq!(check_shape(EncoderKind::Identity, 10, 5), 10);
        assert_eq!(check_shape(EncoderKind::WindowMlp { window: 2, hidden: 16 }, 6, 5), 16);
        assert_eq!(
            check_shape(EncoderKind::Cnn { filters: 12, layers: 2, width: 3, global: false }, 8, 6),
            12
        );
        assert_eq!(
            check_shape(EncoderKind::Cnn { filters: 12, layers: 1, width: 3, global: true }, 8, 6),
            24
        );
        assert_eq!(
            check_shape(
                EncoderKind::IdCnn {
                    filters: 10,
                    width: 3,
                    dilations: vec![1, 2, 4],
                    iterations: 2
                },
                8,
                9
            ),
            10
        );
        assert_eq!(
            check_shape(EncoderKind::Lstm { hidden: 7, bidirectional: true, layers: 2 }, 5, 4),
            14
        );
        assert_eq!(
            check_shape(EncoderKind::Lstm { hidden: 7, bidirectional: false, layers: 1 }, 5, 4),
            7
        );
        assert_eq!(check_shape(EncoderKind::Gru { hidden: 6, bidirectional: true }, 5, 4), 12);
        assert_eq!(
            check_shape(
                EncoderKind::Transformer { d_model: 16, heads: 2, layers: 2, d_ff: 32 },
                5,
                4
            ),
            16
        );
    }

    #[test]
    fn window_concat_places_neighbors() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let w = window_concat(&mut tape, x, 1);
        let v = tape.value(w);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(0), &[0.0, 1.0, 2.0]); // left edge zero-padded
        assert_eq!(v.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(v.row(2), &[2.0, 3.0, 0.0]); // right edge zero-padded
    }

    #[test]
    fn single_token_sentences_are_handled() {
        for kind in [
            EncoderKind::Lstm { hidden: 5, bidirectional: true, layers: 1 },
            EncoderKind::Cnn { filters: 5, layers: 1, width: 3, global: true },
            EncoderKind::IdCnn { filters: 5, width: 3, dilations: vec![1, 2], iterations: 1 },
            EncoderKind::WindowMlp { window: 2, hidden: 5 },
            EncoderKind::Transformer { d_model: 8, heads: 2, layers: 1, d_ff: 16 },
        ] {
            check_shape(kind, 4, 1);
        }
    }

    #[test]
    fn idcnn_receptive_field_grows_with_dilation() {
        // With dilations [1,2,4] and width 3, a change at position 0 must
        // influence position 7 (receptive field 1+2(1+2+4)=15).
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let enc = Encoder::new(
            &mut store,
            &mut rng,
            "enc",
            3,
            &EncoderKind::IdCnn { filters: 6, width: 3, dilations: vec![1, 2, 4], iterations: 1 },
        );
        let base = init::uniform(&mut rng, 10, 3, 1.0);
        let mut tweaked = base.clone();
        tweaked.set2(0, 0, tweaked.at2(0, 0) + 1.0);
        let mut t1 = Tape::new();
        let x1 = t1.constant(base);
        let y1 = enc.forward(&mut t1, &store, x1);
        let mut t2 = Tape::new();
        let x2 = t2.constant(tweaked);
        let y2 = enc.forward(&mut t2, &store, x2);
        let diff: f32 =
            t1.value(y1).row(7).iter().zip(t2.value(y2).row(7)).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-7, "dilated stack should reach position 7 from position 0");
    }
}
