//! End-user inference pipeline: raw string in, annotated sentence out
//! (the paper's Fig. 1 task illustration).

use crate::model::NerModel;
use crate::plan::{ForwardPlan, DEFAULT_TOKEN_CACHE};
use crate::repr::SentenceEncoder;
use ner_text::{tokenize, Sentence};

/// A trained model bundled with its data encoder — the deployable artifact.
///
/// Construction compiles a [`ForwardPlan`], so `extract`/`annotate` (and
/// their batch variants) run the tape-free fused inference path by default;
/// the `*_tape` methods keep the original autograd-tape path available for
/// verification and benchmarking. Both paths are bit-identical.
pub struct NerPipeline {
    /// The data encoder (vocabularies, tag set, feature switches).
    pub encoder: SentenceEncoder,
    /// The trained model.
    pub model: NerModel,
    plan: ForwardPlan,
}

impl NerPipeline {
    /// Bundles an encoder and a model, compiling the inference plan with
    /// the default token-cache capacity.
    pub fn new(encoder: SentenceEncoder, model: NerModel) -> Self {
        let plan = model.compile_plan(DEFAULT_TOKEN_CACHE);
        NerPipeline { encoder, model, plan }
    }

    /// Recompiles the plan with the given token-cache capacity (`0`
    /// disables the cache).
    pub fn with_token_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan = self.model.compile_plan(capacity);
        self
    }

    /// Recompiles the inference plan. Call after mutating
    /// [`model`](Self::model)'s parameters (e.g. further training): the
    /// plan snapshots the CRF decode tables and caches token features, so a
    /// stale plan would serve outputs from the old weights.
    pub fn refresh_plan(&mut self) {
        self.plan = self.model.compile_plan(self.plan.token_cache_capacity());
    }

    /// The compiled inference plan (cache statistics live here).
    pub fn plan(&self) -> &ForwardPlan {
        &self.plan
    }

    /// Tokenizes raw text and annotates it with predicted entities.
    pub fn extract(&self, text: &str) -> Sentence {
        let tokens = tokenize::tokenize(text);
        if tokens.is_empty() {
            return Sentence::default();
        }
        let sentence = Sentence::unlabeled(&tokens);
        self.annotate(&sentence)
    }

    /// Annotates a pre-tokenized sentence (existing entities are ignored)
    /// via the compiled tape-free plan.
    ///
    /// Feeds the `infer.sentence_us` latency histogram and the
    /// `infer.tokens` counter, from which tokens/sec throughput is derived;
    /// the plan adds per-stage `infer.{featurize,embed,encode,decode}_us`
    /// histograms and `infer.cache.{hits,misses}` counters. Each stage
    /// observation also lands on the thread's active
    /// [`ner_obs::trace::TraceCtx`], if one is installed.
    pub fn annotate(&self, sentence: &Sentence) -> Sentence {
        use crate::plan::stage;
        let t = std::time::Instant::now();
        let enc = self.encoder.encode(sentence);
        ner_obs::trace::observe_stage(
            stage::FEATURIZE_US,
            stage::FEATURIZE,
            t.elapsed().as_secs_f64() * 1e6,
        );
        let spans = self.model.predict_spans_planned(&self.plan, &enc);
        ner_obs::observe("infer.sentence_us", t.elapsed().as_secs_f64() * 1e6);
        ner_obs::counter("infer.tokens", sentence.len() as f64);
        self.export_cache_stats();
        Sentence { tokens: sentence.tokens.clone(), entities: spans }
    }

    /// [`extract`](Self::extract) through the original autograd-tape path
    /// — the reference implementation the plan is verified against.
    pub fn extract_tape(&self, text: &str) -> Sentence {
        let tokens = tokenize::tokenize(text);
        if tokens.is_empty() {
            return Sentence::default();
        }
        self.annotate_tape(&Sentence::unlabeled(&tokens))
    }

    /// [`annotate`](Self::annotate) through the original autograd-tape
    /// path (no plan, no caches). Bit-identical to the planned path.
    pub fn annotate_tape(&self, sentence: &Sentence) -> Sentence {
        let t = std::time::Instant::now();
        let enc = self.encoder.encode(sentence);
        let spans = self.model.predict_spans(&enc);
        ner_obs::observe("infer.sentence_us", t.elapsed().as_secs_f64() * 1e6);
        ner_obs::counter("infer.tokens", sentence.len() as f64);
        Sentence { tokens: sentence.tokens.clone(), entities: spans }
    }

    /// Publishes the plan's token-cache hit/miss deltas to `ner-obs`.
    fn export_cache_stats(&self) {
        let (hits, misses) = self.plan.take_token_cache_stats();
        if hits + misses > 0 {
            ner_obs::counter("infer.cache.hits", hits as f64);
            ner_obs::counter("infer.cache.misses", misses as f64);
        }
    }

    /// Tokenizes and annotates a batch of raw texts, fanning the sentences
    /// out over the global `ner-par` pool. Scoring is read-only, so the
    /// output is identical to calling [`extract`](Self::extract) per text,
    /// at any thread count; each sentence still feeds the
    /// `infer.sentence_us` histogram individually.
    pub fn extract_batch(&self, texts: &[&str]) -> Vec<Sentence> {
        self.extract_batch_traced(texts, &[])
    }

    /// [`extract_batch`](Self::extract_batch) with per-request trace
    /// attribution: `traces[i]` (when present) is installed as the scoring
    /// thread's active [`TraceCtx`](ner_obs::trace::TraceCtx) while text
    /// `i` scores, so the per-stage `infer.*` timings land on the owning
    /// request, and a `batch_form` stage records how long the request sat
    /// between dequeue and its own scoring slot. `traces` may be shorter
    /// than `texts` (missing entries score untraced); outputs are
    /// byte-identical either way.
    pub fn extract_batch_traced(
        &self,
        texts: &[&str],
        traces: &[Option<ner_obs::trace::TraceCtx>],
    ) -> Vec<Sentence> {
        use crate::plan::stage;
        let score = |i: usize| match traces.get(i).and_then(Option::as_ref) {
            Some(trace) => {
                trace.stage_since_mark(stage::BATCH_FORM, stage::MARK_DEQUEUE);
                let _active = trace.install();
                self.extract(texts[i])
            }
            None => self.extract(texts[i]),
        };
        let pool = ner_par::global();
        if pool.threads() <= 1 || texts.len() < 2 {
            return (0..texts.len()).map(score).collect();
        }
        let out = pool.map(texts.len(), score);
        export_pool_stats();
        out
    }

    /// Annotates a batch of pre-tokenized sentences in parallel (see
    /// [`extract_batch`](Self::extract_batch) for the guarantees).
    pub fn annotate_batch(&self, sentences: &[Sentence]) -> Vec<Sentence> {
        let pool = ner_par::global();
        if pool.threads() <= 1 || sentences.len() < 2 {
            return sentences.iter().map(|s| self.annotate(s)).collect();
        }
        let out = pool.map(sentences.len(), |i| self.annotate(&sentences[i]));
        export_pool_stats();
        out
    }
}

/// Publishes the calling thread's tensor-buffer-pool counters to `ner-obs`.
fn export_pool_stats() {
    let s = ner_tensor::pool::take_stats();
    if s.hits + s.misses + s.recycled > 0 {
        ner_obs::counter("pool.hits", s.hits as f64);
        ner_obs::counter("pool.misses", s.misses as f64);
        ner_obs::counter("pool.recycled", s.recycled as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
    use crate::trainer::{self, TrainConfig};
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pipeline_round_trip_on_raw_text() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let train_ds = gen.dataset(&mut rng, 120);
        let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let cfg = NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.1,
            ..NerConfig::default()
        };
        let mut model = NerModel::new(cfg, &encoder, None, &mut rng);
        let train_enc = encoder.encode_dataset(&train_ds, None);
        trainer::train(
            &mut model,
            &train_enc,
            None,
            &TrainConfig { epochs: 5, ..Default::default() },
            &mut rng,
        );
        let pipeline = NerPipeline::new(encoder, model);
        let out = pipeline.extract("Michael Jordan was born in Brooklyn.");
        assert_eq!(out.len(), 7, "tokenization: Michael Jordan was born in Brooklyn .");
        // A trained model should find at least one entity in this sentence.
        assert!(!out.entities.is_empty(), "expected entities in: {}", out.render_brackets());
        assert!(out.entities.iter().all(|e| e.end <= out.len()));
    }

    #[test]
    fn refresh_plan_preserves_custom_token_cache_capacity() {
        // Regression: refresh_plan used to reset any custom capacity to
        // DEFAULT_TOKEN_CACHE (and a disabled cache stayed disabled only by
        // luck of the map_or arm ordering).
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let ds = gen.dataset(&mut rng, 20);
        let encoder = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let model = NerModel::new(
            NerConfig {
                word: WordRepr::Random { dim: 8 },
                char_repr: CharRepr::None,
                encoder: EncoderKind::Identity,
                decoder: DecoderKind::Softmax,
                dropout: 0.0,
                scheme: TagScheme::Bio,
                ..NerConfig::default()
            },
            &encoder,
            None,
            &mut rng,
        );
        let mut pipeline = NerPipeline::new(encoder, model).with_token_cache_capacity(7);
        pipeline.refresh_plan();
        assert_eq!(pipeline.plan().token_cache_capacity(), 7);
        let cache = pipeline.plan().token_cache().expect("cache stays enabled across refresh");
        assert_eq!(cache.capacity(), 7);
        // Insert more distinct tokens than the capacity: the refreshed
        // cache must still hold exactly 7.
        for i in 0..10 {
            cache.insert(&format!("tok{i}"), vec![i as f32]);
        }
        assert_eq!(cache.len(), 7);

        // And a refresh must not resurrect a deliberately disabled cache.
        pipeline = pipeline.with_token_cache_capacity(0);
        pipeline.refresh_plan();
        assert!(pipeline.plan().token_cache().is_none());
        assert_eq!(pipeline.plan().token_cache_capacity(), 0);
    }

    #[test]
    fn empty_text_is_handled() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gen.dataset(&mut rng, 20);
        let encoder = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let model = NerModel::new(
            NerConfig {
                word: WordRepr::Random { dim: 8 },
                char_repr: CharRepr::None,
                encoder: EncoderKind::Identity,
                decoder: DecoderKind::Softmax,
                dropout: 0.0,
                scheme: TagScheme::Bio,
                ..NerConfig::default()
            },
            &encoder,
            None,
            &mut rng,
        );
        let pipeline = NerPipeline::new(encoder, model);
        let out = pipeline.extract("   ");
        assert!(out.is_empty());
    }
}
