//! End-user inference pipeline: raw string in, annotated sentence out
//! (the paper's Fig. 1 task illustration).

use crate::model::NerModel;
use crate::plan::{BatchedPlan, ForwardPlan, DEFAULT_TOKEN_CACHE};
use crate::repr::{EncodedSentence, SentenceEncoder};
use ner_text::{tokenize, EntitySpan, Sentence};

/// A trained model bundled with its data encoder — the deployable artifact.
///
/// Construction compiles a [`ForwardPlan`], so `extract`/`annotate` (and
/// their batch variants) run the tape-free fused inference path by default;
/// the `*_tape` methods keep the original autograd-tape path available for
/// verification and benchmarking. Both paths are bit-identical.
pub struct NerPipeline {
    /// The data encoder (vocabularies, tag set, feature switches).
    pub encoder: SentenceEncoder,
    /// The trained model.
    pub model: NerModel,
    plan: ForwardPlan,
}

impl NerPipeline {
    /// Bundles an encoder and a model, compiling the inference plan with
    /// the default token-cache capacity.
    pub fn new(encoder: SentenceEncoder, model: NerModel) -> Self {
        let plan = model.compile_plan(DEFAULT_TOKEN_CACHE);
        NerPipeline { encoder, model, plan }
    }

    /// Recompiles the plan with the given token-cache capacity (`0`
    /// disables the cache).
    pub fn with_token_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan = self.model.compile_plan(capacity);
        self
    }

    /// Recompiles the inference plan. Call after mutating
    /// [`model`](Self::model)'s parameters (e.g. further training): the
    /// plan snapshots the CRF decode tables and caches token features, so a
    /// stale plan would serve outputs from the old weights.
    pub fn refresh_plan(&mut self) {
        self.plan = self.model.compile_plan(self.plan.token_cache_capacity());
    }

    /// The compiled inference plan (cache statistics live here).
    pub fn plan(&self) -> &ForwardPlan {
        &self.plan
    }

    /// Tokenizes raw text and annotates it with predicted entities.
    pub fn extract(&self, text: &str) -> Sentence {
        let tokens = tokenize::tokenize(text);
        if tokens.is_empty() {
            return Sentence::default();
        }
        let sentence = Sentence::unlabeled(&tokens);
        self.annotate(&sentence)
    }

    /// Annotates a pre-tokenized sentence (existing entities are ignored)
    /// via the compiled tape-free plan.
    ///
    /// Feeds the `infer.sentence_us` latency histogram and the
    /// `infer.tokens` counter, from which tokens/sec throughput is derived;
    /// the plan adds per-stage `infer.{featurize,embed,encode,decode}_us`
    /// histograms and `infer.cache.{hits,misses}` counters. Each stage
    /// observation also lands on the thread's active
    /// [`ner_obs::trace::TraceCtx`], if one is installed.
    pub fn annotate(&self, sentence: &Sentence) -> Sentence {
        use crate::plan::stage;
        let t = std::time::Instant::now();
        let enc = self.encoder.encode(sentence);
        ner_obs::trace::observe_stage(
            stage::FEATURIZE_US,
            stage::FEATURIZE,
            t.elapsed().as_secs_f64() * 1e6,
        );
        let spans = self.model.predict_spans_planned(&self.plan, &enc);
        ner_obs::observe("infer.sentence_us", t.elapsed().as_secs_f64() * 1e6);
        ner_obs::counter("infer.tokens", sentence.len() as f64);
        self.export_cache_stats();
        Sentence { tokens: sentence.tokens.clone(), entities: spans }
    }

    /// [`extract`](Self::extract) through the original autograd-tape path
    /// — the reference implementation the plan is verified against.
    pub fn extract_tape(&self, text: &str) -> Sentence {
        let tokens = tokenize::tokenize(text);
        if tokens.is_empty() {
            return Sentence::default();
        }
        self.annotate_tape(&Sentence::unlabeled(&tokens))
    }

    /// [`annotate`](Self::annotate) through the original autograd-tape
    /// path (no plan, no caches). Bit-identical to the planned path.
    pub fn annotate_tape(&self, sentence: &Sentence) -> Sentence {
        let t = std::time::Instant::now();
        let enc = self.encoder.encode(sentence);
        let spans = self.model.predict_spans(&enc);
        ner_obs::observe("infer.sentence_us", t.elapsed().as_secs_f64() * 1e6);
        ner_obs::counter("infer.tokens", sentence.len() as f64);
        Sentence { tokens: sentence.tokens.clone(), entities: spans }
    }

    /// Publishes the plan's token-cache hit/miss deltas to `ner-obs`.
    fn export_cache_stats(&self) {
        let (hits, misses) = self.plan.take_token_cache_stats();
        if hits + misses > 0 {
            ner_obs::counter("infer.cache.hits", hits as f64);
            ner_obs::counter("infer.cache.misses", misses as f64);
        }
        let batch_lookups = self.plan.take_token_cache_batch_lookups();
        if batch_lookups > 0 {
            ner_obs::counter("infer.cache.batch_lookups", batch_lookups as f64);
        }
    }

    /// Tokenizes and annotates a batch of raw texts through the **packed
    /// batched forward**: sentences are grouped into length-sorted compute
    /// buckets ([`BatchedPlan::buckets`]) and each bucket scores as one
    /// [`NerModel::predict_spans_batch`] call — one GEMM per op (and per
    /// timestep for the recurrent encoders) across the whole bucket,
    /// instead of one forward per sentence. Buckets fan out over the
    /// global `ner-par` pool. The batched backend is bit-identical to the
    /// per-sentence plan, so the output equals calling
    /// [`extract`](Self::extract) per text, at any thread count.
    pub fn extract_batch(&self, texts: &[&str]) -> Vec<Sentence> {
        self.extract_batch_traced(texts, &[])
    }

    /// [`extract_batch`](Self::extract_batch) with per-request trace
    /// attribution: `traces[i]` (when present) receives a `batch_form`
    /// stage (dequeue → scoring start), its sentence's `featurize` stage,
    /// and the `embed`/`encode`/`decode` timings of the compute bucket the
    /// sentence scored in. Bucket stages land on every member trace in
    /// full — for batched requests the per-stage sum can exceed the
    /// request's wall time, which [`ner_obs::trace::TraceRecord`]
    /// documents. `traces` may be shorter than `texts` (missing entries
    /// score untraced); outputs are byte-identical either way.
    pub fn extract_batch_traced(
        &self,
        texts: &[&str],
        traces: &[Option<ner_obs::trace::TraceCtx>],
    ) -> Vec<Sentence> {
        use crate::plan::stage;
        let trace_of = |i: usize| traces.get(i).and_then(Option::as_ref);

        // Featurize on the dispatching thread, per sentence, with the
        // owning trace installed so `infer.featurize_us` tees to it.
        let mut base: Vec<Sentence> = Vec::with_capacity(texts.len());
        let mut encs: Vec<Option<EncodedSentence>> = Vec::with_capacity(texts.len());
        let mut featurize_us: Vec<f64> = vec![0.0; texts.len()];
        for (i, text) in texts.iter().enumerate() {
            if let Some(trace) = trace_of(i) {
                trace.stage_since_mark(stage::BATCH_FORM, stage::MARK_DEQUEUE);
            }
            let tokens = tokenize::tokenize(text);
            if tokens.is_empty() {
                base.push(Sentence::default());
                encs.push(None);
                continue;
            }
            let sentence = Sentence::unlabeled(&tokens);
            let t = std::time::Instant::now();
            let _active = trace_of(i).map(|tr| tr.install());
            let enc = self.encoder.encode(&sentence);
            let us = t.elapsed().as_secs_f64() * 1e6;
            ner_obs::trace::observe_stage(stage::FEATURIZE_US, stage::FEATURIZE, us);
            featurize_us[i] = us;
            base.push(sentence);
            encs.push(Some(enc));
        }

        let lens: Vec<usize> = encs.iter().map(|e| e.as_ref().map_or(0, |e| e.len())).collect();
        let spans = self.score_buckets(&encs, &lens, |bucket, stages, bucket_us| {
            let share = bucket_us / bucket.len() as f64;
            for &i in bucket {
                if let Some(trace) = trace_of(i) {
                    trace.stage(stage::EMBED, stages.embed_us);
                    trace.stage(stage::ENCODE, stages.encode_us);
                    trace.stage(stage::DECODE, stages.decode_us);
                }
                ner_obs::observe("infer.sentence_us", featurize_us[i] + share);
                ner_obs::counter("infer.tokens", lens[i] as f64);
            }
        });

        base.into_iter()
            .zip(spans)
            .map(|(s, entities)| Sentence { tokens: s.tokens, entities })
            .collect()
    }

    /// Annotates a batch of pre-tokenized sentences through the same
    /// packed batched forward as [`extract_batch`](Self::extract_batch)
    /// (existing entities are ignored; empty sentences come back empty).
    pub fn annotate_batch(&self, sentences: &[Sentence]) -> Vec<Sentence> {
        use crate::plan::stage;
        let mut encs: Vec<Option<EncodedSentence>> = Vec::with_capacity(sentences.len());
        let mut featurize_us: Vec<f64> = vec![0.0; sentences.len()];
        for (i, s) in sentences.iter().enumerate() {
            if s.is_empty() {
                encs.push(None);
                continue;
            }
            let t = std::time::Instant::now();
            let enc = self.encoder.encode(s);
            let us = t.elapsed().as_secs_f64() * 1e6;
            ner_obs::trace::observe_stage(stage::FEATURIZE_US, stage::FEATURIZE, us);
            featurize_us[i] = us;
            encs.push(Some(enc));
        }
        let lens: Vec<usize> = sentences.iter().map(Sentence::len).collect();
        let spans = self.score_buckets(&encs, &lens, |bucket, _stages, bucket_us| {
            let share = bucket_us / bucket.len() as f64;
            for &i in bucket {
                ner_obs::observe("infer.sentence_us", featurize_us[i] + share);
                ner_obs::counter("infer.tokens", lens[i] as f64);
            }
        });
        sentences
            .iter()
            .zip(spans)
            .map(|(s, entities)| Sentence { tokens: s.tokens.clone(), entities })
            .collect()
    }

    /// Shared bucket-scoring engine behind the batch entry points: groups
    /// the non-empty sentences into length-sorted buckets, scores each
    /// bucket as one packed forward (buckets fan out over the `ner-par`
    /// pool when it has threads to spare), runs `attribute` per bucket on
    /// the calling thread, and returns one span list per input slot
    /// (empty for empty inputs).
    fn score_buckets(
        &self,
        encs: &[Option<EncodedSentence>],
        lens: &[usize],
        mut attribute: impl FnMut(&[usize], &crate::model::BatchStageMicros, f64),
    ) -> Vec<Vec<EntitySpan>> {
        use crate::plan::stage;
        let pool = ner_par::global();
        let buckets = BatchedPlan::new(&self.plan).buckets(lens, pool.threads());
        let mut results: Vec<Vec<EntitySpan>> = vec![Vec::new(); encs.len()];
        if buckets.is_empty() {
            return results;
        }
        let score = |b: usize| {
            let members: Vec<&EncodedSentence> =
                buckets[b].iter().map(|&i| encs[i].as_ref().expect("bucketed")).collect();
            let t = std::time::Instant::now();
            let (spans, stages) = self.model.predict_spans_batch(&self.plan, &members);
            (spans, stages, t.elapsed().as_secs_f64() * 1e6)
        };
        let scored: Vec<_> = if pool.threads() > 1 && buckets.len() > 1 {
            pool.map(buckets.len(), score)
        } else {
            (0..buckets.len()).map(score).collect()
        };
        for (bucket, (spans, stages, bucket_us)) in buckets.iter().zip(scored) {
            // Batch-compute histograms: one observation per packed forward.
            ner_obs::observe(stage::EMBED_US, stages.embed_us);
            ner_obs::observe(stage::ENCODE_US, stages.encode_us);
            ner_obs::observe(stage::DECODE_US, stages.decode_us);
            attribute(bucket, &stages, bucket_us);
            for (&i, s) in bucket.iter().zip(spans) {
                results[i] = s;
            }
        }
        self.export_cache_stats();
        export_pool_stats();
        results
    }
}

/// Publishes the calling thread's tensor-buffer-pool counters to `ner-obs`.
fn export_pool_stats() {
    let s = ner_tensor::pool::take_stats();
    if s.hits + s.misses + s.recycled > 0 {
        ner_obs::counter("pool.hits", s.hits as f64);
        ner_obs::counter("pool.misses", s.misses as f64);
        ner_obs::counter("pool.recycled", s.recycled as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
    use crate::trainer::{self, TrainConfig};
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pipeline_round_trip_on_raw_text() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let train_ds = gen.dataset(&mut rng, 120);
        let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let cfg = NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.1,
            ..NerConfig::default()
        };
        let mut model = NerModel::new(cfg, &encoder, None, &mut rng);
        let train_enc = encoder.encode_dataset(&train_ds, None);
        trainer::train(
            &mut model,
            &train_enc,
            None,
            &TrainConfig { epochs: 5, ..Default::default() },
            &mut rng,
        );
        let pipeline = NerPipeline::new(encoder, model);
        let out = pipeline.extract("Michael Jordan was born in Brooklyn.");
        assert_eq!(out.len(), 7, "tokenization: Michael Jordan was born in Brooklyn .");
        // A trained model should find at least one entity in this sentence.
        assert!(!out.entities.is_empty(), "expected entities in: {}", out.render_brackets());
        assert!(out.entities.iter().all(|e| e.end <= out.len()));
    }

    #[test]
    fn refresh_plan_preserves_custom_token_cache_capacity() {
        // Regression: refresh_plan used to reset any custom capacity to
        // DEFAULT_TOKEN_CACHE (and a disabled cache stayed disabled only by
        // luck of the map_or arm ordering).
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let ds = gen.dataset(&mut rng, 20);
        let encoder = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let model = NerModel::new(
            NerConfig {
                word: WordRepr::Random { dim: 8 },
                char_repr: CharRepr::None,
                encoder: EncoderKind::Identity,
                decoder: DecoderKind::Softmax,
                dropout: 0.0,
                scheme: TagScheme::Bio,
                ..NerConfig::default()
            },
            &encoder,
            None,
            &mut rng,
        );
        let mut pipeline = NerPipeline::new(encoder, model).with_token_cache_capacity(7);
        pipeline.refresh_plan();
        assert_eq!(pipeline.plan().token_cache_capacity(), 7);
        let cache = pipeline.plan().token_cache().expect("cache stays enabled across refresh");
        assert_eq!(cache.capacity(), 7);
        // Insert more distinct tokens than the capacity: the refreshed
        // cache must still hold exactly 7.
        for i in 0..10 {
            cache.insert(&format!("tok{i}"), vec![i as f32]);
        }
        assert_eq!(cache.len(), 7);

        // And a refresh must not resurrect a deliberately disabled cache.
        pipeline = pipeline.with_token_cache_capacity(0);
        pipeline.refresh_plan();
        assert!(pipeline.plan().token_cache().is_none());
        assert_eq!(pipeline.plan().token_cache_capacity(), 0);
    }

    #[test]
    fn empty_text_is_handled() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gen.dataset(&mut rng, 20);
        let encoder = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let model = NerModel::new(
            NerConfig {
                word: WordRepr::Random { dim: 8 },
                char_repr: CharRepr::None,
                encoder: EncoderKind::Identity,
                decoder: DecoderKind::Softmax,
                dropout: 0.0,
                scheme: TagScheme::Bio,
                ..NerConfig::default()
            },
            &encoder,
            None,
            &mut rng,
        );
        let pipeline = NerPipeline::new(encoder, model);
        let out = pipeline.extract("   ");
        assert!(out.is_empty());
    }
}
