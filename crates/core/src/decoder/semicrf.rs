//! Semi-Markov CRF tag decoder (paper §3.4.2; Zhuo et al. 2016 and
//! Ye & Ling 2018, Table 3 rows \[141\] and \[142\]).
//!
//! Models *segments* rather than words: a labeling of the sentence is a
//! segmentation into typed entity segments (length ≤ `max_len`) and
//! length-1 `O` segments. A segment's score sums its tokens' emission scores
//! for its type and adds a learned per-(length, type) bias — the
//! segment-level feature the paper credits semi-CRFs for. Gradients are
//! hand-derived from a semi-Markov forward–backward pass, mirroring the
//! linear-chain CRF implementation.

use ner_tensor::{init, ParamId, ParamStore, Tape, Tensor, Var};
use ner_text::EntitySpan;
use rand::Rng;

fn logsumexp(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max.is_infinite() {
        return max;
    }
    max + xs.iter().map(|x| (x - max).exp()).sum::<f64>().ln()
}

/// A typed segment `[start, end)` with label index (0 = `O`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// First token (inclusive).
    pub start: usize,
    /// One past the last token.
    pub end: usize,
    /// Label index: 0 is `O`, `1..=Y` are entity types.
    pub label: usize,
}

/// A semi-Markov CRF over `Y` entity types plus `O` (label 0).
pub struct SemiCrf {
    /// Label-to-label transition scores `[Y+1, Y+1]`.
    pub transitions: ParamId,
    /// Start scores `[1, Y+1]`.
    pub start: ParamId,
    /// End scores `[1, Y+1]`.
    pub end: ParamId,
    /// Per-(length−1, label) segment bias `[max_len, Y+1]`.
    pub length_bias: ParamId,
    labels: usize,
    max_len: usize,
}

impl SemiCrf {
    /// Registers a semi-CRF over `entity_types` types with entity segments
    /// of at most `max_len` tokens.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        entity_types: usize,
        max_len: usize,
    ) -> Self {
        let labels = entity_types + 1;
        SemiCrf {
            transitions: store
                .register(&format!("{name}.trans"), init::uniform(rng, labels, labels, 0.1)),
            start: store.register(&format!("{name}.start"), init::uniform(rng, 1, labels, 0.1)),
            end: store.register(&format!("{name}.end"), init::uniform(rng, 1, labels, 0.1)),
            length_bias: store
                .register(&format!("{name}.len"), init::uniform(rng, max_len, labels, 0.1)),
            labels,
            max_len,
        }
    }

    /// Number of labels including `O`.
    pub fn num_labels(&self) -> usize {
        self.labels
    }

    /// Maximum entity-segment length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Converts gold entity spans (labels already mapped to `1..=Y`) into
    /// the full gold segmentation (entities + length-1 `O` segments).
    pub fn gold_segments(n: usize, entities: &[Segment]) -> Vec<Segment> {
        let mut segs = Vec::new();
        let mut covered = vec![false; n];
        for e in entities {
            for t in e.start..e.end {
                covered[t] = true;
            }
        }
        let mut sorted: Vec<&Segment> = entities.iter().collect();
        sorted.sort_by_key(|s| s.start);
        let mut i = 0;
        let mut ent_iter = sorted.into_iter().peekable();
        while i < n {
            if covered[i] {
                let e = ent_iter.next().expect("covered position implies an entity");
                segs.push(*e);
                i = e.end;
            } else {
                segs.push(Segment { start: i, end: i + 1, label: 0 });
                i += 1;
            }
        }
        segs
    }

    /// The maximal segment length for `label` (entities: `max_len`; `O`: 1).
    fn len_cap(&self, label: usize) -> usize {
        if label == 0 {
            1
        } else {
            self.max_len
        }
    }

    /// Negative log-likelihood of the gold segmentation given per-token
    /// emissions `[n, Y+1]`.
    pub fn nll(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        emissions: Var,
        gold: &[Segment],
    ) -> Var {
        let emis = tape.value(emissions).clone();
        let (n, l) = emis.shape();
        assert!(n > 0, "semi-CRF nll on empty sequence");
        assert_eq!(l, self.labels, "emission width must be Y+1");
        debug_assert_eq!(gold.iter().map(|s| s.end - s.start).sum::<usize>(), n);

        let trans_var = tape.param(store, self.transitions);
        let start_var = tape.param(store, self.start);
        let end_var = tape.param(store, self.end);
        let len_var = tape.param(store, self.length_bias);
        let trans = tape.value(trans_var).clone();
        let start = tape.value(start_var).clone();
        let end = tape.value(end_var).clone();
        let len_bias = tape.value(len_var).clone();

        // Prefix sums of emissions per label for O(1) segment scores.
        let mut prefix = vec![vec![0.0f64; l]; n + 1];
        for t in 0..n {
            for y in 0..l {
                prefix[t + 1][y] = prefix[t][y] + emis.at2(t, y) as f64;
            }
        }
        let seg_score = |s: usize, e: usize, y: usize| -> f64 {
            prefix[e][y] - prefix[s][y] + len_bias.at2(e - s - 1, y) as f64
        };
        let tr = |a: usize, b: usize| trans.at2(a, b) as f64;

        // alpha[e][y]: log-sum of segmentations of [0, e) ending with label y.
        const NEG: f64 = f64::NEG_INFINITY;
        let mut alpha = vec![vec![NEG; l]; n + 1];
        let mut buf: Vec<f64> = Vec::with_capacity(self.max_len * l + 1);
        for e in 1..=n {
            for y in 0..l {
                buf.clear();
                let cap = self.len_cap(y);
                for len in 1..=cap.min(e) {
                    let s = e - len;
                    let base = seg_score(s, e, y);
                    if s == 0 {
                        buf.push(start.at2(0, y) as f64 + base);
                    } else {
                        for yp in 0..l {
                            if alpha[s][yp] > NEG {
                                buf.push(alpha[s][yp] + tr(yp, y) + base);
                            }
                        }
                    }
                }
                if !buf.is_empty() {
                    alpha[e][y] = logsumexp(&buf);
                }
            }
        }
        let finals: Vec<f64> = (0..l)
            .filter(|&y| alpha[n][y] > NEG)
            .map(|y| alpha[n][y] + end.at2(0, y) as f64)
            .collect();
        let log_z = logsumexp(&finals);

        // beta[s][yp]: log-sum over segmentations of [s, n) given the
        // previous segment's label yp (for s = 0, yp is a virtual start and
        // handled separately).
        let mut beta = vec![vec![NEG; l]; n + 1];
        for yp in 0..l {
            beta[n][yp] = end.at2(0, yp) as f64;
        }
        for s in (0..n).rev() {
            for yp in 0..l {
                buf.clear();
                for y in 0..l {
                    let cap = self.len_cap(y);
                    for len in 1..=cap.min(n - s) {
                        let e = s + len;
                        if beta[e][y] > NEG {
                            buf.push(tr(yp, y) + seg_score(s, e, y) + beta[e][y]);
                        }
                    }
                }
                if !buf.is_empty() {
                    beta[s][yp] = logsumexp(&buf);
                }
            }
        }
        // beta for a segment starting at 0 uses start scores instead of
        // transitions; computed inline below.

        // Gold score.
        let mut gold_score = 0.0f64;
        let mut prev: Option<usize> = None;
        for seg in gold {
            gold_score += seg_score(seg.start, seg.end, seg.label);
            gold_score += match prev {
                None => start.at2(0, seg.label) as f64,
                Some(p) => tr(p, seg.label),
            };
            prev = Some(seg.label);
        }
        gold_score += end.at2(0, prev.expect("gold segmentation is non-empty")) as f64;
        let nll = (log_z - gold_score) as f32;

        // --- Gradients: segment posteriors. ---
        // P(segment (s,e,y)) = exp(pre(s,y) + seg + beta_after(e,y) − logZ)
        // where pre(s,y) = start[y] if s==0 else lse_yp(alpha[s][yp]+tr(yp,y))
        // and beta_after(e,y) = beta[e][y] (suffix given previous label y).
        let mut d_emis = Tensor::zeros(n, l);
        let mut d_trans = Tensor::zeros(l, l);
        let mut d_start = Tensor::zeros(1, l);
        let mut d_end = Tensor::zeros(1, l);
        let mut d_len = Tensor::zeros(self.max_len, l);

        for y in 0..l {
            let cap = self.len_cap(y);
            for s in 0..n {
                for len in 1..=cap.min(n - s) {
                    let e = s + len;
                    if beta[e][y] <= NEG {
                        continue;
                    }
                    let base = seg_score(s, e, y);
                    let pre = if s == 0 {
                        start.at2(0, y) as f64
                    } else {
                        let vals: Vec<f64> = (0..l)
                            .filter(|&yp| alpha[s][yp] > NEG)
                            .map(|yp| alpha[s][yp] + tr(yp, y))
                            .collect();
                        if vals.is_empty() {
                            continue;
                        }
                        logsumexp(&vals)
                    };
                    let p = (pre + base + beta[e][y] - log_z).exp();
                    if p == 0.0 {
                        continue;
                    }
                    for t in s..e {
                        d_emis.set2(t, y, d_emis.at2(t, y) + p as f32);
                    }
                    d_len.set2(len - 1, y, d_len.at2(len - 1, y) + p as f32);
                    if s == 0 {
                        d_start.set2(0, y, d_start.at2(0, y) + p as f32);
                    } else {
                        // Split the segment posterior over predecessor labels.
                        for yp in 0..l {
                            if alpha[s][yp] > NEG {
                                let pp =
                                    (alpha[s][yp] + tr(yp, y) + base + beta[e][y] - log_z).exp();
                                d_trans.set2(yp, y, d_trans.at2(yp, y) + pp as f32);
                            }
                        }
                    }
                }
            }
            // End-score posterior: last segment has label y.
            if alpha[n][y] > NEG {
                d_end.set2(0, y, (alpha[n][y] + end.at2(0, y) as f64 - log_z).exp() as f32);
            }
        }

        // Subtract gold counts.
        let mut prev: Option<usize> = None;
        for seg in gold {
            for t in seg.start..seg.end {
                d_emis.set2(t, seg.label, d_emis.at2(t, seg.label) - 1.0);
            }
            d_len.set2(
                seg.end - seg.start - 1,
                seg.label,
                d_len.at2(seg.end - seg.start - 1, seg.label) - 1.0,
            );
            match prev {
                None => d_start.set2(0, seg.label, d_start.at2(0, seg.label) - 1.0),
                Some(p) => d_trans.set2(p, seg.label, d_trans.at2(p, seg.label) - 1.0),
            }
            prev = Some(seg.label);
        }
        let last = prev.expect("non-empty gold");
        d_end.set2(0, last, d_end.at2(0, last) - 1.0);

        tape.custom(
            Tensor::scalar(nll),
            &[emissions, trans_var, start_var, end_var, len_var],
            move |g| {
                let s = g.item();
                let scaled = |t: &Tensor| {
                    let mut t = t.clone();
                    t.scale_in_place(s);
                    t
                };
                vec![
                    Some(scaled(&d_emis)),
                    Some(scaled(&d_trans)),
                    Some(scaled(&d_start)),
                    Some(scaled(&d_end)),
                    Some(scaled(&d_len)),
                ]
            },
        )
    }

    /// Segmental Viterbi: the maximum-scoring segmentation.
    pub fn decode(&self, store: &ParamStore, emissions: &Tensor) -> Vec<Segment> {
        let (n, l) = emissions.shape();
        assert_eq!(l, self.labels);
        if n == 0 {
            return vec![];
        }
        let trans = store.value(self.transitions);
        let start = store.value(self.start);
        let end = store.value(self.end);
        let len_bias = store.value(self.length_bias);

        let mut prefix = vec![vec![0.0f64; l]; n + 1];
        for t in 0..n {
            for y in 0..l {
                prefix[t + 1][y] = prefix[t][y] + emissions.at2(t, y) as f64;
            }
        }
        let seg_score = |s: usize, e: usize, y: usize| -> f64 {
            prefix[e][y] - prefix[s][y] + len_bias.at2(e - s - 1, y) as f64
        };

        const NEG: f64 = -1e18;
        let mut best = vec![vec![NEG; l]; n + 1];
        let mut back: Vec<Vec<Option<(usize, usize)>>> = vec![vec![None; l]; n + 1]; // (seg_start, prev_label)
        for e in 1..=n {
            for y in 0..l {
                let cap = self.len_cap(y);
                for len in 1..=cap.min(e) {
                    let s = e - len;
                    let base = seg_score(s, e, y);
                    if s == 0 {
                        let sc = start.at2(0, y) as f64 + base;
                        if sc > best[e][y] {
                            best[e][y] = sc;
                            back[e][y] = Some((0, l)); // l = virtual start marker
                        }
                    } else {
                        for yp in 0..l {
                            let sc = best[s][yp] + trans.at2(yp, y) as f64 + base;
                            if sc > best[e][y] {
                                best[e][y] = sc;
                                back[e][y] = Some((s, yp));
                            }
                        }
                    }
                }
            }
        }
        let mut y = (0..l)
            .max_by(|&a, &b| {
                let sa = best[n][a] + end.at2(0, a) as f64;
                let sb = best[n][b] + end.at2(0, b) as f64;
                sa.partial_cmp(&sb).expect("finite scores")
            })
            .expect("at least one label");
        let mut e = n;
        let mut segs = Vec::new();
        while e > 0 {
            let (s, yp) = back[e][y].expect("backpointer chain is complete");
            segs.push(Segment { start: s, end: e, label: y });
            e = s;
            if yp == l {
                break;
            }
            y = yp;
        }
        segs.reverse();
        segs
    }

    /// Converts decoded segments into entity spans given the type names
    /// (`types[i]` names label `i+1`).
    pub fn segments_to_spans(segments: &[Segment], types: &[String]) -> Vec<EntitySpan> {
        segments
            .iter()
            .filter(|s| s.label > 0)
            .map(|s| EntitySpan::new(s.start, s.end, types[s.label - 1].clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_tensor::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gold_segments_fill_gaps_with_o() {
        let ents = vec![Segment { start: 1, end: 3, label: 2 }];
        let segs = SemiCrf::gold_segments(5, &ents);
        assert_eq!(
            segs,
            vec![
                Segment { start: 0, end: 1, label: 0 },
                Segment { start: 1, end: 3, label: 2 },
                Segment { start: 3, end: 4, label: 0 },
                Segment { start: 4, end: 5, label: 0 },
            ]
        );
    }

    #[test]
    fn nll_matches_enumeration_on_tiny_input() {
        // n=2, 1 entity type (labels {O, E}), max_len 2. Enumerate all
        // segmentations: [O][O], [O][E], [E][O], [E][E], [EE] — 5 of them
        // (O segments are length-1 only).
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let crf = SemiCrf::new(&mut store, &mut rng, "s", 1, 2);
        let emis = Tensor::from_rows(&[&[0.3, -0.2], &[-0.1, 0.4]]);

        let trans = store.value(crf.transitions).clone();
        let start = store.value(crf.start).clone();
        let end = store.value(crf.end).clone();
        let lb = store.value(crf.length_bias).clone();
        let seg = |s: usize, e: usize, y: usize| -> f64 {
            (s..e).map(|t| emis.at2(t, y) as f64).sum::<f64>() + lb.at2(e - s - 1, y) as f64
        };
        let two_segs = |y0: usize, y1: usize| -> f64 {
            start.at2(0, y0) as f64
                + seg(0, 1, y0)
                + trans.at2(y0, y1) as f64
                + seg(1, 2, y1)
                + end.at2(0, y1) as f64
        };
        let all = [
            two_segs(0, 0),
            two_segs(0, 1),
            two_segs(1, 0),
            two_segs(1, 1),
            start.at2(0, 1) as f64 + seg(0, 2, 1) + end.at2(0, 1) as f64,
        ];
        let log_z = logsumexp(&all);
        let gold = vec![Segment { start: 0, end: 2, label: 1 }];
        let expected = log_z - (start.at2(0, 1) as f64 + seg(0, 2, 1) + end.at2(0, 1) as f64);

        let mut tape = Tape::new();
        let e = tape.constant(emis);
        let nll = crf.nll(&mut tape, &store, e, &gold);
        assert!(
            (tape.value(nll).item() as f64 - expected).abs() < 1e-4,
            "nll {} vs enumerated {expected}",
            tape.value(nll).item()
        );
    }

    #[test]
    fn emission_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let crf = SemiCrf::new(&mut store, &mut rng, "s", 2, 3);
        let emis_id = store.register(
            "emissions",
            Tensor::from_rows(&[
                &[0.5, -0.3, 0.2],
                &[0.1, 0.9, -0.5],
                &[-0.7, 0.2, 0.4],
                &[0.3, 0.3, -0.2],
            ]),
        );
        let gold = vec![
            Segment { start: 0, end: 1, label: 0 },
            Segment { start: 1, end: 3, label: 2 },
            Segment { start: 3, end: 4, label: 0 },
        ];

        let loss_of = |store: &ParamStore| -> f64 {
            let mut tape = Tape::new();
            let e = tape.param(store, emis_id);
            let nll = crf.nll(&mut tape, store, e, &gold);
            tape.value(nll).item() as f64
        };

        let mut tape = Tape::new();
        let e = tape.param(&store, emis_id);
        let nll = crf.nll(&mut tape, &store, e, &gold);
        tape.backward(nll, &mut store);

        let h = 1e-3f32;
        for pid in [emis_id, crf.transitions, crf.start, crf.end, crf.length_bias] {
            let analytic = store.grad(pid).clone();
            for i in 0..store.value(pid).len() {
                let orig = store.value(pid).data()[i];
                store.value_mut(pid).data_mut()[i] = orig + h;
                let plus = loss_of(&store);
                store.value_mut(pid).data_mut()[i] = orig - h;
                let minus = loss_of(&store);
                store.value_mut(pid).data_mut()[i] = orig;
                let numeric = ((plus - minus) / (2.0 * h as f64)) as f32;
                let err = (analytic.data()[i] - numeric).abs() / (1.0 + numeric.abs());
                assert!(
                    err < 1e-2,
                    "semi-CRF gradcheck failed on {} index {i}: analytic {} vs numeric {numeric}",
                    store.name(pid),
                    analytic.data()[i]
                );
            }
        }
    }

    #[test]
    fn learns_to_segment_and_decodes_gold() {
        // Emissions carry the signal; train end-to-end and decode.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let crf = SemiCrf::new(&mut store, &mut rng, "s", 1, 3);
        let emis = Tensor::from_rows(&[&[2.0, -2.0], &[-2.0, 2.0], &[-2.0, 2.0], &[2.0, -2.0]]);
        let gold = vec![
            Segment { start: 0, end: 1, label: 0 },
            Segment { start: 1, end: 3, label: 1 },
            Segment { start: 3, end: 4, label: 0 },
        ];
        let mut opt = Adam::new(0.05);
        for _ in 0..60 {
            let mut tape = Tape::new();
            let e = tape.constant(emis.clone());
            let nll = crf.nll(&mut tape, &store, e, &gold);
            tape.backward(nll, &mut store);
            opt.step(&mut store);
        }
        let segs = crf.decode(&store, &emis);
        assert_eq!(segs, gold, "decode should recover the gold segmentation");
    }

    #[test]
    fn decode_covers_sentence_exactly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let crf = SemiCrf::new(&mut store, &mut rng, "s", 3, 4);
        let emis = init::uniform(&mut rng, 9, 4, 1.0);
        let segs = crf.decode(&store, &emis);
        let mut pos = 0;
        for s in &segs {
            assert_eq!(s.start, pos, "segments must tile the sentence");
            assert!(s.end > s.start);
            if s.label == 0 {
                assert_eq!(s.end - s.start, 1, "O segments are single tokens");
            } else {
                assert!(s.end - s.start <= 4);
            }
            pos = s.end;
        }
        assert_eq!(pos, 9);
    }

    #[test]
    fn spans_conversion_skips_o() {
        let types = vec!["PER".to_string(), "LOC".to_string()];
        let segs = vec![
            Segment { start: 0, end: 1, label: 0 },
            Segment { start: 1, end: 3, label: 1 },
            Segment { start: 3, end: 4, label: 2 },
        ];
        let spans = SemiCrf::segments_to_spans(&segs, &types);
        assert_eq!(spans, vec![EntitySpan::new(1, 3, "PER"), EntitySpan::new(3, 4, "LOC")]);
    }
}
