//! Pointer-network tag decoder (paper §3.4.4, Fig. 12(d); Zhai et al. 2017).
//!
//! Chunk-then-label: standing at position `s`, an additive-attention pointer
//! scores every candidate segment end `e ∈ (s, s+max_len]`; the segment
//! `[s, e)` is then classified into an entity type or `O`. Training teacher-
//! forces the gold segmentation (entities plus length-1 `O` chunks);
//! decoding repeats greedily until the sentence is consumed.

use crate::decoder::semicrf::Segment;
use ner_tensor::nn::Linear;
use ner_tensor::{init, Exec, ParamId, ParamStore, Tape, Var};
use rand::Rng;

/// A greedy segment-and-label pointer decoder.
pub struct PointerDecoder {
    // Additive attention: score(s, e) = v · tanh(W_s h_s + W_e h_{e-1}).
    w_start: Linear,
    w_end: Linear,
    v: ParamId,
    // Segment classifier over [h_s ; h_{e−1}] → labels (0 = O).
    classify: Linear,
    labels: usize,
    max_len: usize,
}

impl PointerDecoder {
    /// Registers the decoder over `entity_types` types (+`O`) with segments
    /// of at most `max_len` tokens; `att` is the attention width.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        enc_dim: usize,
        att: usize,
        entity_types: usize,
        max_len: usize,
    ) -> Self {
        PointerDecoder {
            w_start: Linear::new(store, rng, &format!("{name}.w_start"), enc_dim, att),
            w_end: Linear::new(store, rng, &format!("{name}.w_end"), enc_dim, att),
            v: store.register(&format!("{name}.v"), init::xavier(rng, att, 1)),
            classify: Linear::new(
                store,
                rng,
                &format!("{name}.classify"),
                2 * enc_dim,
                entity_types + 1,
            ),
            labels: entity_types + 1,
            max_len,
        }
    }

    /// Number of labels including `O`.
    pub fn num_labels(&self) -> usize {
        self.labels
    }

    /// Maximum segment length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Pointer logits over candidate ends `e ∈ (s, s+cands]` as `[1, cands]`.
    fn pointer_logits<E: Exec>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        enc: E::V,
        s: usize,
        cands: usize,
    ) -> E::V {
        let h_s = ex.row(enc, s);
        let proj_s = self.w_start.forward(ex, store, h_s); // [1, att]
        let ends = ex.slice_rows(enc, s, cands); // h_s .. h_{s+cands-1}
        let proj_e = self.w_end.forward(ex, store, ends); // [cands, att]
        let summed = ex.add_bias(proj_e, proj_s); // broadcast start proj
        let act = ex.activation(summed, ner_tensor::fused::Activation::Tanh);
        let v = ex.param(store, self.v);
        let scores = ex.matmul(act, v); // [cands, 1]
        ex.transpose(scores) // [1, cands]
    }

    fn segment_logits<E: Exec>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        enc: E::V,
        s: usize,
        e: usize,
    ) -> E::V {
        let h_s = ex.row(enc, s);
        let h_e = ex.row(enc, e - 1);
        let rep = ex.concat_cols(&[h_s, h_e]);
        self.classify.forward(ex, store, rep)
    }

    /// Teacher-forced loss over the gold segmentation.
    pub fn nll(&self, tape: &mut Tape, store: &ParamStore, enc: Var, gold: &[Segment]) -> Var {
        let n = tape.value(enc).rows();
        let mut losses = Vec::with_capacity(2 * gold.len());
        for seg in gold {
            debug_assert!(seg.end <= n);
            let cands = self.max_len.min(n - seg.start);
            // Pointer loss: which candidate end is correct.
            if cands > 1 {
                let logits = self.pointer_logits(tape, store, enc, seg.start, cands);
                let target = seg.end - seg.start - 1;
                losses.push(tape.cross_entropy_sum(logits, &[target]));
            }
            // Label loss.
            let logits = self.segment_logits(tape, store, enc, seg.start, seg.end);
            losses.push(tape.cross_entropy_sum(logits, &[seg.label]));
        }
        let total = tape.concat_cols(&losses);
        tape.sum(total)
    }

    /// Greedy decoding into a segmentation covering the whole sentence, on
    /// any backend — identical floats and tie-breaking either way.
    pub fn decode<E: Exec>(&self, ex: &mut E, store: &ParamStore, enc: E::V) -> Vec<Segment> {
        let n = ex.value(enc).rows();
        let mut segs = Vec::new();
        let mut s = 0;
        while s < n {
            let cands = self.max_len.min(n - s);
            let len = if cands > 1 {
                let logits = self.pointer_logits(ex, store, enc, s, cands);
                ex.value(logits).argmax_row(0) + 1
            } else {
                1
            };
            let e = s + len;
            let logits = self.segment_logits(ex, store, enc, s, e);
            let label = ex.value(logits).argmax_row(0);
            segs.push(Segment { start: s, end: e, label });
            s = e;
        }
        segs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_tensor::optim::{Adam, Optimizer};
    use ner_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_a_fixed_segmentation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let dec = PointerDecoder::new(&mut store, &mut rng, "ptr", 3, 8, 2, 3);
        // Encoder states distinguish entity tokens (feature 0) from O.
        let enc = Tensor::from_rows(&[
            &[0.0, 1.0, 0.2],
            &[1.0, 0.0, 0.5],
            &[1.0, 0.0, -0.5],
            &[0.0, 1.0, 0.1],
        ]);
        let gold = vec![
            Segment { start: 0, end: 1, label: 0 },
            Segment { start: 1, end: 3, label: 1 },
            Segment { start: 3, end: 4, label: 0 },
        ];
        let mut opt = Adam::new(0.05);
        for _ in 0..150 {
            let mut tape = Tape::new();
            let e = tape.constant(enc.clone());
            let loss = dec.nll(&mut tape, &store, e, &gold);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let mut tape = Tape::new();
        let e = tape.constant(enc);
        let decoded = dec.decode(&mut tape, &store, e);
        assert_eq!(decoded, gold);
    }

    #[test]
    fn decode_tiles_the_sentence() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let dec = PointerDecoder::new(&mut store, &mut rng, "ptr", 4, 8, 3, 4);
        let mut tape = Tape::new();
        let e = tape.constant(init::uniform(&mut rng, 11, 4, 1.0));
        let segs = dec.decode(&mut tape, &store, e);
        let mut pos = 0;
        for s in &segs {
            assert_eq!(s.start, pos);
            assert!(s.end - s.start <= 4);
            assert!(s.label < 4);
            pos = s.end;
        }
        assert_eq!(pos, 11);
    }
}
