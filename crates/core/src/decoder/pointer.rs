//! Pointer-network tag decoder (paper §3.4.4, Fig. 12(d); Zhai et al. 2017).
//!
//! Chunk-then-label: standing at position `s`, an additive-attention pointer
//! scores every candidate segment end `e ∈ (s, s+max_len]`; the segment
//! `[s, e)` is then classified into an entity type or `O`. Training teacher-
//! forces the gold segmentation (entities plus length-1 `O` chunks);
//! decoding repeats greedily until the sentence is consumed.

use crate::decoder::semicrf::Segment;
use ner_tensor::fused::{self, Activation};
use ner_tensor::nn::Linear;
use ner_tensor::{init, ParamId, ParamStore, Tape, Tensor, Var};
use rand::Rng;

/// A greedy segment-and-label pointer decoder.
pub struct PointerDecoder {
    // Additive attention: score(s, e) = v · tanh(W_s h_s + W_e h_{e-1}).
    w_start: Linear,
    w_end: Linear,
    v: ParamId,
    // Segment classifier over [h_s ; h_{e−1}] → labels (0 = O).
    classify: Linear,
    labels: usize,
    max_len: usize,
}

impl PointerDecoder {
    /// Registers the decoder over `entity_types` types (+`O`) with segments
    /// of at most `max_len` tokens; `att` is the attention width.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        enc_dim: usize,
        att: usize,
        entity_types: usize,
        max_len: usize,
    ) -> Self {
        PointerDecoder {
            w_start: Linear::new(store, rng, &format!("{name}.w_start"), enc_dim, att),
            w_end: Linear::new(store, rng, &format!("{name}.w_end"), enc_dim, att),
            v: store.register(&format!("{name}.v"), init::xavier(rng, att, 1)),
            classify: Linear::new(
                store,
                rng,
                &format!("{name}.classify"),
                2 * enc_dim,
                entity_types + 1,
            ),
            labels: entity_types + 1,
            max_len,
        }
    }

    /// Number of labels including `O`.
    pub fn num_labels(&self) -> usize {
        self.labels
    }

    /// Maximum segment length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Pointer logits over candidate ends `e ∈ (s, s+cands]` as `[1, cands]`.
    fn pointer_logits(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        enc: Var,
        s: usize,
        cands: usize,
    ) -> Var {
        let h_s = tape.row(enc, s);
        let proj_s = self.w_start.forward(tape, store, h_s); // [1, att]
        let ends = tape.slice_rows(enc, s, cands); // h_s .. h_{s+cands-1}
        let proj_e = self.w_end.forward(tape, store, ends); // [cands, att]
        let summed = tape.add_bias(proj_e, proj_s); // broadcast start proj
        let act = tape.tanh(summed);
        let v = tape.param(store, self.v);
        let scores = tape.matmul(act, v); // [cands, 1]
        tape.transpose(scores) // [1, cands]
    }

    fn segment_logits(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        enc: Var,
        s: usize,
        e: usize,
    ) -> Var {
        let h_s = tape.row(enc, s);
        let h_e = tape.row(enc, e - 1);
        let rep = tape.concat_cols(&[h_s, h_e]);
        self.classify.forward(tape, store, rep)
    }

    /// Teacher-forced loss over the gold segmentation.
    pub fn nll(&self, tape: &mut Tape, store: &ParamStore, enc: Var, gold: &[Segment]) -> Var {
        let n = tape.value(enc).rows();
        let mut losses = Vec::with_capacity(2 * gold.len());
        for seg in gold {
            debug_assert!(seg.end <= n);
            let cands = self.max_len.min(n - seg.start);
            // Pointer loss: which candidate end is correct.
            if cands > 1 {
                let logits = self.pointer_logits(tape, store, enc, seg.start, cands);
                let target = seg.end - seg.start - 1;
                losses.push(tape.cross_entropy_sum(logits, &[target]));
            }
            // Label loss.
            let logits = self.segment_logits(tape, store, enc, seg.start, seg.end);
            losses.push(tape.cross_entropy_sum(logits, &[seg.label]));
        }
        let total = tape.concat_cols(&losses);
        tape.sum(total)
    }

    /// Greedy decoding into a segmentation covering the whole sentence.
    pub fn decode(&self, tape: &mut Tape, store: &ParamStore, enc: Var) -> Vec<Segment> {
        let n = tape.value(enc).rows();
        let mut segs = Vec::new();
        let mut s = 0;
        while s < n {
            let cands = self.max_len.min(n - s);
            let len = if cands > 1 {
                let logits = self.pointer_logits(tape, store, enc, s, cands);
                tape.value(logits).argmax_row(0) + 1
            } else {
                1
            };
            let e = s + len;
            let logits = self.segment_logits(tape, store, enc, s, e);
            let label = tape.value(logits).argmax_row(0);
            segs.push(Segment { start: s, end: e, label });
            s = e;
        }
        segs
    }

    /// Tape-free pointer scores over candidate ends, as a `[cands, 1]`
    /// column (the tape path transposes to `[1, cands]`; scanning the
    /// column top-down with a strict `>` is the identical argmax).
    fn pointer_scores_eval(
        &self,
        store: &ParamStore,
        enc: &Tensor,
        s: usize,
        cands: usize,
    ) -> Tensor {
        let d = enc.cols();
        let mut h_s = Tensor::zeros_pooled(1, d);
        h_s.row_mut(0).copy_from_slice(enc.row(s));
        let proj_s = self.w_start.forward_eval(store, &h_s, Activation::None); // [1, att]
        fused::recycle(h_s);
        let mut ends = Tensor::zeros_pooled(cands, d);
        for r in 0..cands {
            ends.row_mut(r).copy_from_slice(enc.row(s + r));
        }
        let mut summed = self.w_end.forward_eval(store, &ends, Activation::None); // [cands, att]
        fused::recycle(ends);
        fused::add_bias_in_place(&mut summed, &proj_s); // broadcast start proj
        fused::recycle(proj_s);
        Activation::Tanh.apply(&mut summed);
        let scores = summed.matmul(store.value(self.v)); // [cands, 1]
        fused::recycle(summed);
        scores
    }

    /// Tape-free [`decode`](Self::decode) — greedy chunk-then-label with
    /// the identical floats and tie-breaking.
    pub fn decode_eval(&self, store: &ParamStore, enc: &Tensor) -> Vec<Segment> {
        let n = enc.rows();
        let d = enc.cols();
        let mut segs = Vec::new();
        let mut rep = Tensor::zeros_pooled(1, 2 * d);
        let mut s = 0;
        while s < n {
            let cands = self.max_len.min(n - s);
            let len = if cands > 1 {
                let scores = self.pointer_scores_eval(store, enc, s, cands);
                let mut best = scores.at2(0, 0);
                let mut arg = 0;
                for r in 1..cands {
                    let v = scores.at2(r, 0);
                    if v > best {
                        best = v;
                        arg = r;
                    }
                }
                fused::recycle(scores);
                arg + 1
            } else {
                1
            };
            let e = s + len;
            rep.row_mut(0)[..d].copy_from_slice(enc.row(s));
            rep.row_mut(0)[d..].copy_from_slice(enc.row(e - 1));
            let logits = self.classify.forward_eval(store, &rep, Activation::None);
            let label = logits.argmax_row(0);
            fused::recycle(logits);
            segs.push(Segment { start: s, end: e, label });
            s = e;
        }
        fused::recycle(rep);
        segs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_tensor::optim::{Adam, Optimizer};
    use ner_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_a_fixed_segmentation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let dec = PointerDecoder::new(&mut store, &mut rng, "ptr", 3, 8, 2, 3);
        // Encoder states distinguish entity tokens (feature 0) from O.
        let enc = Tensor::from_rows(&[
            &[0.0, 1.0, 0.2],
            &[1.0, 0.0, 0.5],
            &[1.0, 0.0, -0.5],
            &[0.0, 1.0, 0.1],
        ]);
        let gold = vec![
            Segment { start: 0, end: 1, label: 0 },
            Segment { start: 1, end: 3, label: 1 },
            Segment { start: 3, end: 4, label: 0 },
        ];
        let mut opt = Adam::new(0.05);
        for _ in 0..150 {
            let mut tape = Tape::new();
            let e = tape.constant(enc.clone());
            let loss = dec.nll(&mut tape, &store, e, &gold);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let mut tape = Tape::new();
        let e = tape.constant(enc);
        let decoded = dec.decode(&mut tape, &store, e);
        assert_eq!(decoded, gold);
    }

    #[test]
    fn decode_tiles_the_sentence() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let dec = PointerDecoder::new(&mut store, &mut rng, "ptr", 4, 8, 3, 4);
        let mut tape = Tape::new();
        let e = tape.constant(init::uniform(&mut rng, 11, 4, 1.0));
        let segs = dec.decode(&mut tape, &store, e);
        let mut pos = 0;
        for s in &segs {
            assert_eq!(s.start, pos);
            assert!(s.end - s.start <= 4);
            assert!(s.label < 4);
            pos = s.end;
        }
        assert_eq!(pos, 11);
    }
}
