//! Linear-chain conditional random field tag decoder (paper §3.4.2 — "the
//! most common choice for tag decoder", Table 3).
//!
//! The negative log-likelihood is implemented as a single custom autograd
//! node with hand-derived gradients: token marginals minus gold one-hots for
//! the emissions, pairwise marginals minus gold transition counts for the
//! transition scores (both obtained from one forward–backward pass in f64).
//! This is the classic implementation strategy — faster and numerically
//! sturdier than composing the DP out of logsumexp graph ops.

use ner_tensor::{init, ParamId, ParamStore, Tape, Tensor, Var};
use ner_text::TagSet;
use rand::Rng;

/// Numerically stable log-sum-exp over a slice.
fn logsumexp(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max.is_infinite() {
        return max;
    }
    max + xs.iter().map(|x| (x - max).exp()).sum::<f64>().ln()
}

/// A linear-chain CRF over `k` tags with learned transition, start and end
/// scores.
pub struct Crf {
    /// Transition scores `[k, k]`: row = from-tag, column = to-tag.
    pub transitions: ParamId,
    /// Start scores `[1, k]`.
    pub start: ParamId,
    /// End scores `[1, k]`.
    pub end: ParamId,
    k: usize,
}

impl Crf {
    /// Registers CRF parameters (small uniform init).
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, name: &str, k: usize) -> Self {
        Crf {
            transitions: store.register(&format!("{name}.trans"), init::uniform(rng, k, k, 0.1)),
            start: store.register(&format!("{name}.start"), init::uniform(rng, 1, k, 0.1)),
            end: store.register(&format!("{name}.end"), init::uniform(rng, 1, k, 0.1)),
            k,
        }
    }

    /// Number of tags.
    pub fn num_tags(&self) -> usize {
        self.k
    }

    /// Negative log-likelihood of `tags` given `emissions [T, k]`, as a
    /// differentiable scalar node.
    ///
    /// # Panics
    /// Panics on empty input or a length/width mismatch.
    pub fn nll(&self, tape: &mut Tape, store: &ParamStore, emissions: Var, tags: &[usize]) -> Var {
        let emis_v = tape.value(emissions).clone();
        let (t_len, k) = emis_v.shape();
        assert!(t_len > 0, "CRF nll on empty sequence");
        assert_eq!(k, self.k, "emission width must equal tag count");
        assert_eq!(tags.len(), t_len, "one tag per emission row");
        assert!(tags.iter().all(|&y| y < k), "tag id out of range");

        let trans_var = tape.param(store, self.transitions);
        let start_var = tape.param(store, self.start);
        let end_var = tape.param(store, self.end);
        let trans = tape.value(trans_var).clone();
        let start = tape.value(start_var).clone();
        let end = tape.value(end_var).clone();

        // Forward pass (alphas) in f64.
        let e = |t: usize, j: usize| emis_v.at2(t, j) as f64;
        let tr = |i: usize, j: usize| trans.at2(i, j) as f64;
        let mut alpha = vec![vec![0.0f64; k]; t_len];
        for j in 0..k {
            alpha[0][j] = start.at2(0, j) as f64 + e(0, j);
        }
        let mut scratch = vec![0.0f64; k];
        for t in 1..t_len {
            for j in 0..k {
                for (i, s) in scratch.iter_mut().enumerate() {
                    *s = alpha[t - 1][i] + tr(i, j);
                }
                alpha[t][j] = logsumexp(&scratch) + e(t, j);
            }
        }
        let final_scores: Vec<f64> =
            (0..k).map(|j| alpha[t_len - 1][j] + end.at2(0, j) as f64).collect();
        let log_z = logsumexp(&final_scores);

        // Backward pass (betas).
        let mut beta = vec![vec![0.0f64; k]; t_len];
        for j in 0..k {
            beta[t_len - 1][j] = end.at2(0, j) as f64;
        }
        for t in (0..t_len - 1).rev() {
            for i in 0..k {
                for (j, s) in scratch.iter_mut().enumerate() {
                    *s = tr(i, j) + e(t + 1, j) + beta[t + 1][j];
                }
                beta[t][i] = logsumexp(&scratch);
            }
        }

        // Gold path score.
        let mut gold = start.at2(0, tags[0]) as f64 + e(0, tags[0]);
        for t in 1..t_len {
            gold += tr(tags[t - 1], tags[t]) + e(t, tags[t]);
        }
        gold += end.at2(0, tags[t_len - 1]) as f64;
        let nll = (log_z - gold) as f32;

        // Precompute gradient tensors (scaled by upstream grad in closure).
        let mut d_emis = Tensor::zeros(t_len, k);
        for t in 0..t_len {
            for j in 0..k {
                let m = (alpha[t][j] + beta[t][j] - log_z).exp();
                d_emis.set2(t, j, m as f32);
            }
            let row = d_emis.row_mut(t);
            row[tags[t]] -= 1.0;
        }
        let mut d_trans = Tensor::zeros(k, k);
        for t in 0..t_len - 1 {
            for i in 0..k {
                for j in 0..k {
                    let p = (alpha[t][i] + tr(i, j) + e(t + 1, j) + beta[t + 1][j] - log_z).exp();
                    let cur = d_trans.at2(i, j);
                    d_trans.set2(i, j, cur + p as f32);
                }
            }
            let cur = d_trans.at2(tags[t], tags[t + 1]);
            d_trans.set2(tags[t], tags[t + 1], cur - 1.0);
        }
        let mut d_start = Tensor::zeros(1, k);
        for j in 0..k {
            d_start.set2(0, j, (alpha[0][j] + beta[0][j] - log_z).exp() as f32);
        }
        d_start.set2(0, tags[0], d_start.at2(0, tags[0]) - 1.0);
        let mut d_end = Tensor::zeros(1, k);
        for j in 0..k {
            d_end.set2(0, j, (final_scores[j] - log_z).exp() as f32);
        }
        d_end.set2(0, tags[t_len - 1], d_end.at2(0, tags[t_len - 1]) - 1.0);

        tape.custom(Tensor::scalar(nll), &[emissions, trans_var, start_var, end_var], move |g| {
            let s = g.item();
            let scaled = |t: &Tensor| {
                let mut t = t.clone();
                t.scale_in_place(s);
                t
            };
            vec![
                Some(scaled(&d_emis)),
                Some(scaled(&d_trans)),
                Some(scaled(&d_start)),
                Some(scaled(&d_end)),
            ]
        })
    }

    /// Viterbi decoding: the maximum-scoring tag sequence for `emissions`,
    /// plus its unnormalized path score. When `constraints` is given,
    /// structurally invalid transitions (e.g. `O → I-PER` in BIOES) are
    /// hard-masked — predicted sequences are then always well-formed.
    ///
    /// Builds the log-space decode tables on the fly; callers decoding many
    /// sentences should compile them once with
    /// [`decode_tables`](Self::decode_tables) and reuse
    /// [`CrfDecodeTables::viterbi`] — same implementation, same result.
    pub fn viterbi(
        &self,
        store: &ParamStore,
        emissions: &Tensor,
        constraints: Option<&TagSet>,
    ) -> (Vec<usize>, f64) {
        self.decode_tables(store, constraints).viterbi(emissions)
    }

    /// Precomputes the decode tables (parameters widened to `f64` log
    /// space, structural-constraint masks materialized) so repeated Viterbi
    /// calls stop re-deriving them per sentence. Snapshot semantics:
    /// recompile after a parameter update.
    pub fn decode_tables(
        &self,
        store: &ParamStore,
        constraints: Option<&TagSet>,
    ) -> CrfDecodeTables {
        let k = self.k;
        let trans_t = store.value(self.transitions);
        let start_t = store.value(self.start);
        let end_t = store.value(self.end);
        let mut trans = vec![0.0f64; k * k];
        let mut allowed = vec![true; k * k];
        for i in 0..k {
            for j in 0..k {
                trans[i * k + j] = trans_t.at2(i, j) as f64;
                allowed[i * k + j] = constraints.is_none_or(|c| c.transition_allowed(i, j));
            }
        }
        CrfDecodeTables {
            k,
            trans,
            start: (0..k).map(|j| start_t.at2(0, j) as f64).collect(),
            end: (0..k).map(|j| end_t.at2(0, j) as f64).collect(),
            allowed,
            allowed_start: (0..k).map(|j| constraints.is_none_or(|c| c.start_allowed(j))).collect(),
            allowed_end: (0..k).map(|j| constraints.is_none_or(|c| c.end_allowed(j))).collect(),
        }
    }

    /// Log partition function for `emissions` (used to normalize Viterbi
    /// scores into path probabilities for confidence estimates, §4.3 MNLP).
    pub fn log_partition(&self, store: &ParamStore, emissions: &Tensor) -> f64 {
        let (t_len, k) = emissions.shape();
        let trans = store.value(self.transitions);
        let start = store.value(self.start);
        let end = store.value(self.end);
        let mut alpha: Vec<f64> =
            (0..k).map(|j| start.at2(0, j) as f64 + emissions.at2(0, j) as f64).collect();
        let mut next = vec![0.0f64; k];
        let mut scratch = vec![0.0f64; k];
        for t in 1..t_len {
            for j in 0..k {
                for (i, s) in scratch.iter_mut().enumerate() {
                    *s = alpha[i] + trans.at2(i, j) as f64;
                }
                next[j] = logsumexp(&scratch) + emissions.at2(t, j) as f64;
            }
            std::mem::swap(&mut alpha, &mut next);
        }
        let finals: Vec<f64> = (0..k).map(|j| alpha[j] + end.at2(0, j) as f64).collect();
        logsumexp(&finals)
    }

    /// Per-token posterior marginals `[T, k]` (each row sums to 1) — the
    /// confidence signal for uncertainty-based active learning.
    pub fn marginals(&self, store: &ParamStore, emissions: &Tensor) -> Tensor {
        let (t_len, k) = emissions.shape();
        let trans = store.value(self.transitions);
        let start = store.value(self.start);
        let end = store.value(self.end);
        let e = |t: usize, j: usize| emissions.at2(t, j) as f64;
        let tr = |i: usize, j: usize| trans.at2(i, j) as f64;

        let mut alpha = vec![vec![0.0f64; k]; t_len];
        for j in 0..k {
            alpha[0][j] = start.at2(0, j) as f64 + e(0, j);
        }
        let mut scratch = vec![0.0f64; k];
        for t in 1..t_len {
            for j in 0..k {
                for (i, s) in scratch.iter_mut().enumerate() {
                    *s = alpha[t - 1][i] + tr(i, j);
                }
                alpha[t][j] = logsumexp(&scratch) + e(t, j);
            }
        }
        let mut beta = vec![vec![0.0f64; k]; t_len];
        for j in 0..k {
            beta[t_len - 1][j] = end.at2(0, j) as f64;
        }
        for t in (0..t_len - 1).rev() {
            for i in 0..k {
                for (j, s) in scratch.iter_mut().enumerate() {
                    *s = tr(i, j) + e(t + 1, j) + beta[t + 1][j];
                }
                beta[t][i] = logsumexp(&scratch);
            }
        }
        let finals: Vec<f64> = (0..k).map(|j| alpha[t_len - 1][j] + end.at2(0, j) as f64).collect();
        let log_z = logsumexp(&finals);
        let mut out = Tensor::zeros(t_len, k);
        for t in 0..t_len {
            for j in 0..k {
                out.set2(t, j, (alpha[t][j] + beta[t][j] - log_z).exp() as f32);
            }
        }
        out
    }
}

/// Precompiled log-space Viterbi tables for one [`Crf`] (see
/// [`Crf::decode_tables`]): the single source of truth for CRF decoding —
/// [`Crf::viterbi`] delegates here, so the cached and uncached paths cannot
/// diverge.
pub struct CrfDecodeTables {
    k: usize,
    /// Row-major `[k, k]` transition scores, already widened to `f64`.
    trans: Vec<f64>,
    start: Vec<f64>,
    end: Vec<f64>,
    /// Row-major `[k, k]` structural-constraint mask (`true` = allowed).
    allowed: Vec<bool>,
    allowed_start: Vec<bool>,
    allowed_end: Vec<bool>,
}

impl CrfDecodeTables {
    /// Number of tags.
    pub fn num_tags(&self) -> usize {
        self.k
    }

    /// Viterbi decoding against the precompiled tables — bit-identical to
    /// [`Crf::viterbi`] with the constraints the tables were built with.
    pub fn viterbi(&self, emissions: &Tensor) -> (Vec<usize>, f64) {
        let (t_len, k) = emissions.shape();
        assert!(t_len > 0 && k == self.k);
        const NEG: f64 = -1e18;

        let mut score = vec![vec![NEG; k]; t_len];
        let mut back = vec![vec![0usize; k]; t_len];
        for j in 0..k {
            if self.allowed_start[j] {
                score[0][j] = self.start[j] + emissions.at2(0, j) as f64;
            }
        }
        for t in 1..t_len {
            for j in 0..k {
                let mut best = NEG;
                let mut arg = 0;
                for i in 0..k {
                    if !self.allowed[i * k + j] {
                        continue;
                    }
                    let s = score[t - 1][i] + self.trans[i * k + j];
                    if s > best {
                        best = s;
                        arg = i;
                    }
                }
                score[t][j] = best + emissions.at2(t, j) as f64;
                back[t][j] = arg;
            }
        }
        let mut best = NEG;
        let mut arg = 0;
        for j in 0..k {
            if !self.allowed_end[j] {
                continue;
            }
            let s = score[t_len - 1][j] + self.end[j];
            if s > best {
                best = s;
                arg = j;
            }
        }
        let mut tags = vec![0usize; t_len];
        tags[t_len - 1] = arg;
        for t in (1..t_len).rev() {
            tags[t - 1] = back[t][tags[t]];
        }
        (tags, best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_tensor::optim::{Adam, Optimizer};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nll_matches_enumeration_on_tiny_chain() {
        // T=3, k=2: enumerate all 8 paths and compare log Z and the NLL.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let crf = Crf::new(&mut store, &mut rng, "crf", 2);
        let emis = Tensor::from_rows(&[&[0.5, -0.3], &[0.1, 0.9], &[-0.7, 0.2]]);
        let tags = [0usize, 1, 1];

        let trans = store.value(crf.transitions).clone();
        let start = store.value(crf.start).clone();
        let end = store.value(crf.end).clone();
        let path_score = |p: &[usize]| -> f64 {
            let mut s = start.at2(0, p[0]) as f64 + emis.at2(0, p[0]) as f64;
            for t in 1..3 {
                s += trans.at2(p[t - 1], p[t]) as f64 + emis.at2(t, p[t]) as f64;
            }
            s + end.at2(0, p[2]) as f64
        };
        let mut all = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    all.push(path_score(&[a, b, c]));
                }
            }
        }
        let log_z = logsumexp(&all);
        let expected_nll = log_z - path_score(&tags);

        let mut tape = Tape::new();
        let e = tape.constant(emis.clone());
        let nll = crf.nll(&mut tape, &store, e, &tags);
        assert!(
            (tape.value(nll).item() as f64 - expected_nll).abs() < 1e-4,
            "nll {} vs enumerated {expected_nll}",
            tape.value(nll).item()
        );
        assert!((crf.log_partition(&store, &emis) - log_z).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Register both the CRF parameters and the emissions in ONE store,
        // then check every analytic gradient against central differences.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let crf = Crf::new(&mut store, &mut rng, "crf", 3);
        let emis_id = store.register(
            "emissions",
            Tensor::from_rows(&[
                &[0.5, -0.3, 0.2],
                &[0.1, 0.9, -0.5],
                &[-0.7, 0.2, 0.4],
                &[0.3, 0.3, -0.2],
            ]),
        );
        let tags = vec![2usize, 0, 1, 1];

        let loss_of = |store: &ParamStore| -> f64 {
            let mut tape = Tape::new();
            let e = tape.param(store, emis_id);
            let nll = crf.nll(&mut tape, store, e, &tags);
            tape.value(nll).item() as f64
        };

        let mut tape = Tape::new();
        let e = tape.param(&store, emis_id);
        let nll = crf.nll(&mut tape, &store, e, &tags);
        tape.backward(nll, &mut store);

        let h = 1e-3f32;
        for pid in [emis_id, crf.transitions, crf.start, crf.end] {
            let analytic = store.grad(pid).clone();
            for i in 0..store.value(pid).len() {
                let orig = store.value(pid).data()[i];
                store.value_mut(pid).data_mut()[i] = orig + h;
                let plus = loss_of(&store);
                store.value_mut(pid).data_mut()[i] = orig - h;
                let minus = loss_of(&store);
                store.value_mut(pid).data_mut()[i] = orig;
                let numeric = ((plus - minus) / (2.0 * h as f64)) as f32;
                let err = (analytic.data()[i] - numeric).abs() / (1.0 + numeric.abs());
                assert!(
                    err < 1e-2,
                    "CRF gradcheck failed on {} index {i}: analytic {} vs numeric {numeric}",
                    store.name(pid),
                    analytic.data()[i]
                );
            }
        }
    }

    #[test]
    fn transition_gradients_via_training() {
        // Train a CRF on a deterministic alternating tag pattern with
        // UNINFORMATIVE emissions: only the transition matrix can explain
        // the data, so learning must drive the transition scores.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let crf = Crf::new(&mut store, &mut rng, "crf", 2);
        let emis = Tensor::zeros(6, 2);
        let tags = [0usize, 1, 0, 1, 0, 1];
        let mut opt = Adam::new(0.1);
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..60 {
            let mut tape = Tape::new();
            let e = tape.constant(emis.clone());
            let nll = crf.nll(&mut tape, &store, e, &tags);
            let v = tape.value(nll).item();
            if epoch == 0 {
                first = v;
            }
            last = v;
            tape.backward(nll, &mut store);
            opt.step(&mut store);
        }
        assert!(last < first * 0.3, "transition learning failed: {first} -> {last}");
        let (decoded, _) = crf.viterbi(&store, &emis, None);
        assert_eq!(decoded, tags.to_vec());
    }

    #[test]
    fn viterbi_respects_structural_constraints() {
        let ts = TagSet::new(TagScheme::Bio, &["PER"]);
        let k = ts.len(); // O, B-PER, I-PER
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let crf = Crf::new(&mut store, &mut rng, "crf", k);
        // Emissions screaming "I-PER" everywhere; constrained Viterbi must
        // still produce a well-formed sequence.
        let i_per = ts.index("I-PER").unwrap();
        let mut emis = Tensor::zeros(4, k);
        for t in 0..4 {
            emis.set2(t, i_per, 10.0);
        }
        let (tags, _) = crf.viterbi(&store, &emis, Some(&ts));
        let labels = ts.decode(&tags);
        assert!(TagScheme::Bio.is_valid(&labels), "constrained decode must be valid: {labels:?}");
    }

    #[test]
    fn marginals_are_distributions() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let crf = Crf::new(&mut store, &mut rng, "crf", 4);
        let emis = init::uniform(&mut rng, 5, 4, 1.0);
        let m = crf.marginals(&store, &emis);
        for t in 0..5 {
            let sum: f32 = m.row(t).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {t} sums to {sum}");
            assert!(m.row(t).iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn viterbi_score_normalizes_to_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let crf = Crf::new(&mut store, &mut rng, "crf", 3);
        let emis = init::uniform(&mut rng, 4, 3, 1.0);
        let (_, score) = crf.viterbi(&store, &emis, None);
        let log_z = crf.log_partition(&store, &emis);
        let logp = score - log_z;
        assert!(logp <= 0.0, "best path log-probability must be <= 0, got {logp}");
        assert!(logp > -20.0);
    }
}
