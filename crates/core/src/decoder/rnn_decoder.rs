//! RNN tag decoder (paper §3.4.3, Fig. 12(c); Shen et al. 2017).
//!
//! An LSTM consumes, at each step, the encoder state for the current token
//! concatenated with the embedding of the *previous* tag (\[GO\] at step 0),
//! and emits a softmax over tags. Training uses teacher forcing on the gold
//! previous tag; decoding is greedy, feeding back the argmax — the
//! serialization cost the paper's §3.5 comparison calls out.

use ner_tensor::nn::{Embedding, Linear, LstmCell};
use ner_tensor::{Exec, ParamStore, Tape, Var};
use rand::Rng;

/// An LSTM-based greedy tag decoder.
pub struct RnnDecoder {
    tag_emb: Embedding,
    cell: LstmCell,
    out: Linear,
    k: usize,
}

impl RnnDecoder {
    /// Registers the decoder: tag embeddings of width `tag_dim`, an LSTM of
    /// width `hidden` over `[encoder_state ; prev_tag]`, and a projection to
    /// `k` tags. The embedding table holds `k + 1` rows; row `k` is \[GO\].
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        enc_dim: usize,
        tag_dim: usize,
        hidden: usize,
        k: usize,
    ) -> Self {
        RnnDecoder {
            tag_emb: Embedding::new(store, rng, &format!("{name}.tag_emb"), k + 1, tag_dim),
            cell: LstmCell::new(store, rng, &format!("{name}.cell"), enc_dim + tag_dim, hidden),
            out: Linear::new(store, rng, &format!("{name}.out"), hidden, k),
            k,
        }
    }

    /// Number of tags.
    pub fn num_tags(&self) -> usize {
        self.k
    }

    /// Teacher-forced summed cross-entropy of `tags` given encoder states
    /// `enc [n, enc_dim]`.
    pub fn nll(&self, tape: &mut Tape, store: &ParamStore, enc: Var, tags: &[usize]) -> Var {
        let n = tape.value(enc).rows();
        assert_eq!(tags.len(), n, "one tag per encoder state");
        let mut run = self.cell.begin(tape, store);
        let mut logit_rows = Vec::with_capacity(n);
        for t in 0..n {
            let prev = if t == 0 { self.k } else { tags[t - 1] };
            let prev_emb = self.tag_emb.lookup(tape, store, &[prev]);
            let enc_t = tape.row(enc, t);
            let x = tape.concat_cols(&[enc_t, prev_emb]);
            self.cell.step(tape, &mut run, x);
            logit_rows.push(self.out.forward(tape, store, run.h));
        }
        let logits = tape.concat_rows(&logit_rows);
        tape.cross_entropy_sum(logits, tags)
    }

    /// Greedy decoding: predicts a tag sequence for `enc [n, enc_dim]` on
    /// any backend — the same feedback loop (and the same floats) whether
    /// or not a graph is being recorded.
    pub fn decode<E: Exec>(&self, ex: &mut E, store: &ParamStore, enc: E::V) -> Vec<usize> {
        let n = ex.value(enc).rows();
        let mut run = self.cell.begin(ex, store);
        let mut tags = Vec::with_capacity(n);
        let mut prev = self.k;
        for t in 0..n {
            let prev_emb = self.tag_emb.lookup(ex, store, &[prev]);
            let enc_t = ex.row(enc, t);
            let x = ex.concat_cols(&[enc_t, prev_emb]);
            self.cell.step(ex, &mut run, x);
            let logits = self.out.forward(ex, store, run.h);
            prev = ex.value(logits).argmax_row(0);
            tags.push(prev);
        }
        tags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_tensor::optim::{Adam, Optimizer};
    use ner_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_emission_driven_tags() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let dec = RnnDecoder::new(&mut store, &mut rng, "dec", 2, 4, 8, 3);
        let enc = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[0.0, 0.0]]);
        let tags = [1usize, 2, 0, 1];
        let mut opt = Adam::new(0.05);
        for _ in 0..120 {
            let mut tape = Tape::new();
            let e = tape.constant(enc.clone());
            let loss = dec.nll(&mut tape, &store, e, &tags);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let mut tape = Tape::new();
        let e = tape.constant(enc);
        assert_eq!(dec.decode(&mut tape, &store, e), tags.to_vec());
    }

    #[test]
    fn decode_output_length_matches_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let dec = RnnDecoder::new(&mut store, &mut rng, "dec", 3, 4, 8, 5);
        let mut tape = Tape::new();
        let e = tape.constant(Tensor::zeros(7, 3));
        let out = dec.decode(&mut tape, &store, e);
        assert_eq!(out.len(), 7);
        assert!(out.iter().all(|&t| t < 5));
    }
}
