//! Tag decoder architectures — the final axis of the survey's taxonomy
//! (paper §3.4, Fig. 12): MLP+softmax, linear-chain CRF, semi-Markov CRF,
//! greedy RNN decoder and pointer network.

pub mod crf;
pub mod pointer;
pub mod rnn_decoder;
pub mod semicrf;

pub use crf::Crf;
pub use pointer::PointerDecoder;
pub use rnn_decoder::RnnDecoder;
pub use semicrf::{Segment, SemiCrf};
