//! The compiled tape-free inference path.
//!
//! A [`ForwardPlan`] is compiled once per [`NerModel`](crate::model::NerModel)
//! (via [`NerModel::compile_plan`](crate::model::NerModel::compile_plan)) and
//! holds everything the model's forward pass can precompute or reuse across
//! sentences:
//!
//! * **CRF decode tables** — the transition/start/end scores widened to log
//!   space (`f64`) once, with the structural-constraint masks baked in, so
//!   Viterbi stops re-deriving them per sentence
//!   ([`CrfDecodeTables`]).
//! * **Token feature cache** — an LRU of per-token base representations
//!   (word embedding + char composition + gate), keyed by surface form.
//!   Informal-text corpora repeat tokens heavily, and the base row depends
//!   only on the token itself, so a hit skips the char-CNN/BiLSTM entirely.
//!   Cached rows are bit-identical to freshly computed ones (per-row
//!   evaluation equals batch evaluation for every op involved), so the
//!   cache never changes predictions.
//! * **Positional encodings** — the deterministic sinusoidal table per
//!   sentence length, shared by every Transformer forward.
//!
//! The evaluation itself runs through the **same layer forwards as
//! training**, driven by the [`ner_tensor::FusedExec`] backend: no tape
//! nodes, no backward closures, and per-sentence intermediates drawn from
//! (and returned to) the thread-local `ner_tensor::pool` buffer arena. The
//! contract throughout is **bit-identity with the tape backend** —
//! `tests/plan_parity.rs` checks it across every zoo architecture, and the
//! `exp_inference` harness exits non-zero if any benchmark sentence decodes
//! differently.

use crate::decoder::crf::CrfDecodeTables;
use ner_tensor::{PeCache, Tensor};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default capacity of the per-plan token feature cache.
pub const DEFAULT_TOKEN_CACHE: usize = 4096;

/// Default cap on how many sentences one packed
/// [`ner_tensor::BatchedExec`] forward evaluates together.
pub const DEFAULT_COMPUTE_BATCH: usize = 32;

/// Canonical names for the per-request inference stages: the histogram
/// each stage feeds and the short label it carries inside a
/// [`TraceRecord`](ner_obs::trace::TraceRecord). Sharing one vocabulary
/// across the model, the serving layer, the benches, and the CLI renderer
/// keeps "where did this request's time go" answerable by exact string
/// match everywhere.
pub mod stage {
    /// Histogram fed by sentence featurization (vocabulary lookups and
    /// feature-id encoding, before any tensor work).
    pub const FEATURIZE_US: &str = "infer.featurize_us";
    /// Histogram fed by the input layer (embeddings + char composition).
    pub const EMBED_US: &str = "infer.embed_us";
    /// Histogram fed by the context encoder (BiLSTM/Transformer/...).
    pub const ENCODE_US: &str = "infer.encode_us";
    /// Histogram fed by tag decoding (CRF Viterbi or softmax argmax).
    pub const DECODE_US: &str = "infer.decode_us";

    /// Trace label for the featurization stage.
    pub const FEATURIZE: &str = "featurize";
    /// Trace label for the input-layer stage.
    pub const EMBED: &str = "embed";
    /// Trace label for the context-encoder stage.
    pub const ENCODE: &str = "encode";
    /// Trace label for the decoding stage.
    pub const DECODE: &str = "decode";
    /// Trace label for time spent queued in the serving batcher.
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Trace label for batch formation: dequeue until this request's own
    /// scoring starts (covers in-batch waiting on a busy pool).
    pub const BATCH_FORM: &str = "batch_form";
    /// Trace mark set by the batcher at dequeue time; [`BATCH_FORM`] is
    /// measured from it.
    pub const MARK_DEQUEUE: &str = "dequeue";
}

const NIL: usize = usize::MAX;

/// A compiled, reusable inference plan for one model (see module docs).
///
/// Thread-safe: batch inference shares one plan across the `ner-par` pool.
/// The plan snapshots the CRF parameters at compile time — recompile (or
/// call [`NerPipeline::refresh_plan`](crate::inference::NerPipeline::refresh_plan))
/// after mutating the parameter store, or planned decoding will diverge
/// from the tape path.
pub struct ForwardPlan {
    crf_tables: Option<CrfDecodeTables>,
    token_cache: Option<TokenFeatureCache>,
    /// The capacity the plan was compiled with (0 = cache disabled), kept
    /// so a refresh can recompile with the same setting.
    token_cache_capacity: usize,
    /// Shared per-`(n, d)` positional-encoding tables, handed to the
    /// `FusedExec` backend so transformer forwards skip recomputation.
    pe_cache: PeCache,
}

impl ForwardPlan {
    pub(crate) fn new(crf_tables: Option<CrfDecodeTables>, token_cache_capacity: usize) -> Self {
        ForwardPlan {
            crf_tables,
            token_cache: (token_cache_capacity > 0)
                .then(|| TokenFeatureCache::new(token_cache_capacity)),
            token_cache_capacity,
            pe_cache: PeCache::new(),
        }
    }

    /// The token-cache capacity this plan was compiled with (`0` when the
    /// cache is disabled).
    pub fn token_cache_capacity(&self) -> usize {
        self.token_cache_capacity
    }

    pub(crate) fn crf_tables(&self) -> Option<&CrfDecodeTables> {
        self.crf_tables.as_ref()
    }

    pub(crate) fn token_cache(&self) -> Option<&TokenFeatureCache> {
        self.token_cache.as_ref()
    }

    /// The plan's shared positional-encoding cache, for wiring into a
    /// [`ner_tensor::FusedExec`] backend.
    pub(crate) fn pe_cache(&self) -> &PeCache {
        &self.pe_cache
    }

    /// Cumulative token-cache `(hits, misses)` since compile (0, 0 when the
    /// cache is disabled).
    pub fn token_cache_stats(&self) -> (u64, u64) {
        self.token_cache
            .as_ref()
            .map_or((0, 0), |c| (c.hits.load(Ordering::Relaxed), c.misses.load(Ordering::Relaxed)))
    }

    /// Takes (reads and resets) the token-cache `(hits, misses)` deltas —
    /// the feed for the `infer.cache.*` observability counters.
    pub fn take_token_cache_stats(&self) -> (u64, u64) {
        self.token_cache.as_ref().map_or((0, 0), |c| {
            (c.hits.swap(0, Ordering::Relaxed), c.misses.swap(0, Ordering::Relaxed))
        })
    }

    /// Takes (reads and resets) the count of whole-batch cache lookups —
    /// each is one lock acquisition covering every token of a packed batch
    /// (the feed for the `infer.cache.batch_lookups` counter).
    pub fn take_token_cache_batch_lookups(&self) -> u64 {
        self.token_cache.as_ref().map_or(0, |c| c.batch_lookups.swap(0, Ordering::Relaxed))
    }
}

/// The batched entry point over a compiled [`ForwardPlan`]: decides how a
/// set of sentences is grouped into packed compute batches for
/// [`ner_tensor::BatchedExec`] scoring.
///
/// Buckets are **length-sorted**: sentences are ordered longest-first and
/// chunked, so each packed batch holds sentences of similar length and the
/// per-timestep live-row prefix shrinks late — the batched recurrent GEMMs
/// stay near-full instead of degrading toward per-sentence work. Because
/// the batched backend is bit-identical to the per-sentence path, bucket
/// composition (and therefore thread count) cannot change predictions —
/// only throughput.
pub struct BatchedPlan<'a> {
    plan: &'a ForwardPlan,
    max_compute_batch: usize,
}

impl<'a> BatchedPlan<'a> {
    /// A batched entry point with the default compute-batch cap.
    pub fn new(plan: &'a ForwardPlan) -> Self {
        BatchedPlan { plan, max_compute_batch: DEFAULT_COMPUTE_BATCH }
    }

    /// Overrides the maximum number of sentences per packed batch.
    pub fn with_max_compute_batch(mut self, cap: usize) -> Self {
        self.max_compute_batch = cap.max(1);
        self
    }

    /// The underlying compiled plan.
    pub fn plan(&self) -> &'a ForwardPlan {
        self.plan
    }

    /// Groups sentence indices into length-sorted compute buckets.
    ///
    /// `lens[i]` is the token count of sentence `i`; zero-length sentences
    /// are skipped (they have nothing to score). Indices come back sorted
    /// longest-first (ties by index, so bucketing is deterministic),
    /// chunked to at most `max_compute_batch` sentences while leaving at
    /// least `threads` buckets when there is enough work to go around.
    pub fn buckets(&self, lens: &[usize], threads: usize) -> Vec<Vec<usize>> {
        let mut idx: Vec<usize> = (0..lens.len()).filter(|&i| lens[i] > 0).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(lens[i]));
        if idx.is_empty() {
            return Vec::new();
        }
        let threads = threads.max(1);
        let chunk = idx.len().div_ceil(threads).clamp(1, self.max_compute_batch);
        idx.chunks(chunk).map(|c| c.to_vec()).collect()
    }
}

/// A thread-safe LRU cache of per-token base representation rows, keyed by
/// surface form. Hand-rolled (slab + intrusive doubly-linked recency list)
/// to stay dependency-free.
pub struct TokenFeatureCache {
    inner: Mutex<Lru>,
    hits: AtomicU64,
    misses: AtomicU64,
    batch_lookups: AtomicU64,
}

impl TokenFeatureCache {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "token cache capacity must be positive");
        TokenFeatureCache {
            inner: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            batch_lookups: AtomicU64::new(0),
        }
    }

    /// Copies the cached row for `token` into `dst` and returns `true`, or
    /// returns `false` on a miss. Counts the hit/miss either way.
    pub(crate) fn copy_into(&self, token: &str, dst: &mut [f32]) -> bool {
        let mut lru = self.inner.lock().unwrap();
        match lru.get(token) {
            Some(row) => {
                dst.copy_from_slice(row);
                drop(lru);
                self.hits.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => {
                drop(lru);
                self.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Inserts (or refreshes) the row for `token`, evicting the least
    /// recently used entry when full.
    pub(crate) fn insert(&self, token: &str, row: Vec<f32>) {
        self.inner.lock().unwrap().insert(token, row);
    }

    /// Looks up every token of a packed batch under **one** lock
    /// acquisition: hit rows are copied into the matching rows of
    /// `dst [tokens.len(), base_dim]`, and the indices of the misses come
    /// back for the caller to compute. Counts one batch lookup plus the
    /// per-token hits/misses.
    pub(crate) fn lookup_batch(&self, tokens: &[&str], dst: &mut Tensor) -> Vec<usize> {
        let mut missed = Vec::new();
        {
            let mut lru = self.inner.lock().unwrap();
            for (i, tok) in tokens.iter().enumerate() {
                match lru.get(tok) {
                    Some(row) => dst.row_mut(i).copy_from_slice(row),
                    None => missed.push(i),
                }
            }
        }
        self.batch_lookups.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add((tokens.len() - missed.len()) as u64, Ordering::Relaxed);
        self.misses.fetch_add(missed.len() as u64, Ordering::Relaxed);
        missed
    }

    /// Inserts a batch of freshly computed rows under one lock acquisition.
    pub(crate) fn insert_batch(&self, entries: Vec<(&str, Vec<f32>)>) {
        let mut lru = self.inner.lock().unwrap();
        for (tok, row) in entries {
            lru.insert(tok, row);
        }
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Maximum number of tokens the cache can hold.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Slot {
    key: String,
    row: Vec<f32>,
    prev: usize,
    next: usize,
}

struct Lru {
    capacity: usize,
    map: HashMap<String, usize>,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
}

impl Lru {
    fn new(capacity: usize) -> Self {
        Lru { capacity, map: HashMap::new(), slots: Vec::new(), head: NIL, tail: NIL }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &str) -> Option<&[f32]> {
        let i = *self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slots[i].row)
    }

    fn insert(&mut self, key: &str, row: Vec<f32>) {
        if let Some(&i) = self.map.get(key) {
            self.slots[i].row = row;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.slots.len() < self.capacity {
            self.slots.push(Slot { key: key.to_string(), row, prev: NIL, next: NIL });
            self.slots.len() - 1
        } else {
            // Evict the least recently used slot and reuse it in place.
            let i = self.tail;
            self.unlink(i);
            let slot = &mut self.slots[i];
            let old_key = std::mem::replace(&mut slot.key, key.to_string());
            slot.row = row;
            self.map.remove(&old_key);
            i
        };
        self.map.insert(key.to_string(), i);
        self.push_front(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_tensor::nn;

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = TokenFeatureCache::new(2);
        cache.insert("a", vec![1.0]);
        cache.insert("b", vec![2.0]);
        let mut buf = [0.0f32];
        assert!(cache.copy_into("a", &mut buf)); // touches "a": "b" is now LRU
        assert_eq!(buf, [1.0]);
        cache.insert("c", vec![3.0]); // evicts "b"
        assert!(!cache.copy_into("b", &mut buf));
        assert!(cache.copy_into("a", &mut buf));
        assert!(cache.copy_into("c", &mut buf));
        assert_eq!(buf, [3.0]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let cache = TokenFeatureCache::new(2);
        cache.insert("a", vec![1.0]);
        cache.insert("b", vec![2.0]);
        cache.insert("a", vec![9.0]); // refresh: "b" becomes LRU
        cache.insert("c", vec![3.0]); // evicts "b"
        let mut buf = [0.0f32];
        assert!(cache.copy_into("a", &mut buf));
        assert_eq!(buf, [9.0]);
        assert!(!cache.copy_into("b", &mut buf));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let plan = ForwardPlan::new(None, 4);
        let cache = plan.token_cache().unwrap();
        let mut buf = [0.0f32; 2];
        assert!(!cache.copy_into("x", &mut buf));
        cache.insert("x", vec![1.0, 2.0]);
        assert!(cache.copy_into("x", &mut buf));
        assert_eq!(plan.token_cache_stats(), (1, 1));
        assert_eq!(plan.take_token_cache_stats(), (1, 1));
        assert_eq!(plan.token_cache_stats(), (0, 0));
    }

    #[test]
    fn capacity_zero_disables_the_cache() {
        let plan = ForwardPlan::new(None, 0);
        assert!(plan.token_cache().is_none());
        assert_eq!(plan.token_cache_stats(), (0, 0));
    }

    #[test]
    fn positional_encoding_cache_distinguishes_dims() {
        // Regression: the cache used to be keyed by sentence length alone,
        // so a second stack with a different d_model read the wrong table.
        let plan = ForwardPlan::new(None, 0);
        let pe = plan.pe_cache();
        let narrow = pe.get(5, 8);
        let wide = pe.get(5, 16);
        assert_eq!((narrow.rows(), narrow.cols()), (5, 8));
        assert_eq!((wide.rows(), wide.cols()), (5, 16));
        // Both entries survive side by side and re-serve the right table.
        assert_eq!(pe.get(5, 8).cols(), 8);
        assert_eq!(pe.get(5, 16).cols(), 16);
        assert_eq!(*pe.get(5, 8), nn::positional_encoding(5, 8));
        assert_eq!(*pe.get(5, 16), nn::positional_encoding(5, 16));
    }

    #[test]
    fn batch_lookup_copies_hits_and_returns_miss_indices() {
        let plan = ForwardPlan::new(None, 4);
        let cache = plan.token_cache().unwrap();
        cache.insert("a", vec![1.0, 2.0]);
        let mut dst = Tensor::zeros(3, 2);
        let missed = cache.lookup_batch(&["a", "b", "a"], &mut dst);
        assert_eq!(missed, vec![1]);
        assert_eq!(dst.row(0), [1.0, 2.0]);
        assert_eq!(dst.row(2), [1.0, 2.0]);
        assert_eq!(plan.token_cache_stats(), (2, 1));
        // One whole-batch lookup == one lock acquisition counted.
        assert_eq!(plan.take_token_cache_batch_lookups(), 1);
        cache.insert_batch(vec![("b", vec![3.0, 4.0])]);
        let missed = cache.lookup_batch(&["b", "a"], &mut dst);
        assert!(missed.is_empty());
        assert_eq!(dst.row(0), [3.0, 4.0]);
        assert_eq!(plan.take_token_cache_batch_lookups(), 1);
    }

    #[test]
    fn buckets_are_length_sorted_capped_and_skip_empties() {
        let plan = ForwardPlan::new(None, 0);
        let bp = BatchedPlan::new(&plan).with_max_compute_batch(2);
        // Longest first, ties by index, zero-length dropped, chunks of ≤ 2.
        assert_eq!(bp.buckets(&[3, 0, 7, 7, 1, 5], 1), vec![vec![2, 3], vec![5, 0], vec![4]]);
        // Enough work for every thread: 8 sentences over 4 threads → 4 buckets.
        assert_eq!(BatchedPlan::new(&plan).buckets(&[4; 8], 4).len(), 4);
        assert!(bp.buckets(&[0, 0], 4).is_empty());
        assert!(bp.buckets(&[], 1).is_empty());
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let cache = TokenFeatureCache::new(1);
        let mut buf = [0.0f32];
        for (i, key) in ["a", "b", "c", "a"].iter().enumerate() {
            assert!(!cache.copy_into(key, &mut buf), "step {i}");
            cache.insert(key, vec![i as f32]);
            assert!(cache.copy_into(key, &mut buf));
            assert_eq!(buf, [i as f32]);
        }
        assert_eq!(cache.len(), 1);
    }
}
