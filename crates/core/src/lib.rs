//! # ner-core — the neural NER toolkit of `neural-ner`
//!
//! This crate is the survey's primary deliverable: the "easy-to-use toolkit
//! for DL-based NER" its future-work section calls for, with *standardized
//! modules* for every axis of the paper's taxonomy (Fig. 2):
//!
//! * **data processing** — [`repr::SentenceEncoder`] / [`repr::EncodedSentence`];
//! * **input representation** (§3.2) — [`repr::InputLayer`]: word embeddings
//!   (random or pretrained, fixed or fine-tuned), char-CNN / char-BiLSTM,
//!   Rei-style char/word gating, hand-crafted + gazetteer features, frozen
//!   contextual-LM vectors;
//! * **context encoder** (§3.3) — [`encoder::Encoder`]: window-MLP, CNN,
//!   ID-CNN, (Bi)LSTM, (Bi)GRU, Transformer, plus the recursive
//!   tree encoder ([`encoder::recursive`], Fig. 8);
//! * **tag decoder** (§3.4) — [`decoder`]: softmax, linear-chain CRF (with
//!   constrained Viterbi), semi-Markov CRF, greedy RNN, pointer network;
//! * **effectiveness measure** (§2.3) — [`metrics`]: exact micro/macro
//!   P/R/F1, MUC-style relaxed match, seen/unseen recall splits.
//!
//! [`config::NerConfig`] picks one cell per axis; [`model::NerModel`]
//! assembles it; [`trainer`] fits it; [`inference::NerPipeline`] deploys it;
//! [`zoo`] provides named presets for the architectures of Table 3;
//! [`nested::LayeredNer`] stacks flat models for nested NER (§5.1).
//!
//! ```no_run
//! use ner_core::prelude::*;
//! use ner_corpus::{GeneratorConfig, NewsGenerator};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let gen = NewsGenerator::new(GeneratorConfig::default());
//! let train_ds = gen.dataset(&mut rng, 400);
//!
//! let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bioes, 1);
//! let mut model = NerModel::new(NerConfig::default(), &encoder, None, &mut rng);
//! let train_enc = encoder.encode_dataset(&train_ds, None);
//! ner_core::trainer::train(&mut model, &train_enc, None, &TrainConfig::default(), &mut rng);
//!
//! let pipeline = NerPipeline::new(encoder, model);
//! println!("{}", pipeline.extract("Michael Jordan was born in Brooklyn.").render_brackets());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod decoder;
pub mod encoder;
pub mod inference;
pub mod metrics;
pub mod model;
pub mod nested;
pub mod persist;
pub mod plan;
pub mod repr;
pub mod trainer;
pub mod zoo;

/// Convenient re-exports for typical usage.
pub mod prelude {
    pub use crate::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
    pub use crate::inference::NerPipeline;
    pub use crate::metrics::{evaluate, EvalResult, Prf};
    pub use crate::model::NerModel;
    pub use crate::persist::Checkpoint;
    pub use crate::plan::ForwardPlan;
    pub use crate::repr::{EncodedSentence, SentenceEncoder};
    pub use crate::trainer::{evaluate_model, predict_all, train, TrainConfig, TrainerKind};
    pub use ner_text::{Dataset, EntitySpan, Sentence, TagScheme};
}
