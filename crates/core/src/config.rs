//! Model configuration — one struct spanning the survey's whole taxonomy
//! (Fig. 2): pick a cell from each of the three axes (input representation,
//! context encoder, tag decoder) and the builder assembles the model.

use ner_text::TagScheme;
use serde::{Deserialize, Serialize};

/// Character-level word representation (paper §3.2.2, Fig. 3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CharRepr {
    /// No character channel.
    None,
    /// CNN over characters with max-over-time pooling (Fig. 3a; Ma & Hovy).
    Cnn {
        /// Character embedding dimensionality.
        dim: usize,
        /// Number of convolution filters (= output width).
        filters: usize,
    },
    /// Bidirectional LSTM over characters, final states concatenated
    /// (Fig. 3b; Lample et al.).
    Lstm {
        /// Character embedding dimensionality.
        dim: usize,
        /// LSTM hidden size per direction (output width = 2·hidden).
        hidden: usize,
    },
}

/// Context encoder choice (paper §3.3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EncoderKind {
    /// No encoding: the decoder sees the input representation directly
    /// (sensible with contextual LM embeddings, Table 3 rows \[136\]/\[137\]).
    Identity,
    /// Per-token MLP over a fixed context window (Collobert's window
    /// approach).
    WindowMlp {
        /// Context radius (tokens on each side).
        window: usize,
        /// Hidden width.
        hidden: usize,
    },
    /// Stacked same-padded convolutions (Fig. 5); `global` appends the
    /// max-over-time sentence feature to every position.
    Cnn {
        /// Filters per layer (output width).
        filters: usize,
        /// Number of convolution layers.
        layers: usize,
        /// Filter width (odd).
        width: usize,
        /// Append the sentence-global max-pooled feature.
        global: bool,
    },
    /// Iterated Dilated CNN (Fig. 6; Strubell et al. 2017): a block of
    /// dilated convolutions applied `iterations` times with shared weights.
    IdCnn {
        /// Filters per layer.
        filters: usize,
        /// Filter width (odd).
        width: usize,
        /// Dilation of each convolution in the block.
        dilations: Vec<usize>,
        /// Number of weight-shared block applications.
        iterations: usize,
    },
    /// (Bi)LSTM, optionally stacked (Fig. 7).
    Lstm {
        /// Hidden size per direction.
        hidden: usize,
        /// Concatenate a backward pass.
        bidirectional: bool,
        /// Number of stacked layers.
        layers: usize,
    },
    /// (Bi)GRU.
    Gru {
        /// Hidden size per direction.
        hidden: usize,
        /// Concatenate a backward pass.
        bidirectional: bool,
    },
    /// Transformer encoder (paper §3.3.5), trained from scratch.
    Transformer {
        /// Model width.
        d_model: usize,
        /// Attention heads.
        heads: usize,
        /// Number of blocks.
        layers: usize,
        /// Feed-forward hidden width.
        d_ff: usize,
    },
}

/// Tag decoder choice (paper §3.4, Fig. 12).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DecoderKind {
    /// Independent per-token softmax (MLP + softmax, §3.4.1).
    Softmax,
    /// Linear-chain CRF (§3.4.2); decoding can be structurally constrained.
    Crf,
    /// Semi-Markov CRF over segments (§3.4.2; Table 3 rows \[141\]\[142\]).
    SemiCrf {
        /// Maximum entity-segment length.
        max_len: usize,
    },
    /// Greedy LSTM tag decoder (§3.4.3, Fig. 12c).
    Rnn {
        /// Previous-tag embedding width.
        tag_dim: usize,
        /// Decoder LSTM hidden size.
        hidden: usize,
    },
    /// Pointer network: chunk then label (§3.4.4, Fig. 12d).
    Pointer {
        /// Attention width.
        att: usize,
        /// Maximum segment length.
        max_len: usize,
    },
}

/// Word-level representation (paper §3.2.1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WordRepr {
    /// Randomly initialized, trained with the model.
    Random {
        /// Embedding dimensionality.
        dim: usize,
    },
    /// Initialized from pretrained embeddings (skip-gram/CBOW/GloVe).
    Pretrained {
        /// Continue training the table (`false` freezes it).
        fine_tune: bool,
    },
}

/// Full model configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NerConfig {
    /// Tag notation.
    pub scheme: TagScheme,
    /// Word channel.
    pub word: WordRepr,
    /// Character channel.
    pub char_repr: CharRepr,
    /// Combine char and word channels with Rei et al.'s attention gate
    /// instead of concatenation (requires matching widths; falls back to
    /// concatenation otherwise).
    pub char_word_gate: bool,
    /// Include the hand-crafted feature vector (casing, shape, POS; §3.2.3).
    pub use_features: bool,
    /// Include gazetteer-match features (requires a gazetteer at encode
    /// time).
    pub use_gazetteer: bool,
    /// Width of frozen contextual-LM features appended to the input
    /// (0 = none). The vectors themselves are provided per sentence by the
    /// data encoder.
    pub context_dim: usize,
    /// Context encoder.
    pub encoder: EncoderKind,
    /// Tag decoder.
    pub decoder: DecoderKind,
    /// Dropout on the assembled input representation and encoder output.
    pub dropout: f32,
    /// Constrain CRF/softmax decoding to structurally valid tag sequences.
    pub constrained_decoding: bool,
}

impl Default for NerConfig {
    /// The survey's dominant architecture: char-CNN + word embeddings →
    /// BiLSTM → CRF (Ma & Hovy 2016 / Lample et al. 2016 family).
    fn default() -> Self {
        NerConfig {
            scheme: TagScheme::Bioes,
            word: WordRepr::Random { dim: 32 },
            char_repr: CharRepr::Cnn { dim: 16, filters: 16 },
            char_word_gate: false,
            use_features: false,
            use_gazetteer: false,
            context_dim: 0,
            encoder: EncoderKind::Lstm { hidden: 48, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.3,
            constrained_decoding: true,
        }
    }
}

impl NerConfig {
    /// A compact human-readable architecture signature, e.g.
    /// `"charCNN+word(rand)+BiLSTM+CRF"`. Used by the Table 3 harness.
    pub fn signature(&self) -> String {
        let char_part = match &self.char_repr {
            CharRepr::None => String::new(),
            CharRepr::Cnn { .. } => "charCNN+".to_string(),
            CharRepr::Lstm { .. } => "charLSTM+".to_string(),
        };
        let word_part = match &self.word {
            WordRepr::Random { .. } => "word(rand)",
            WordRepr::Pretrained { fine_tune: true } => "word(pre,ft)",
            WordRepr::Pretrained { fine_tune: false } => "word(pre)",
        };
        let extras = format!(
            "{}{}{}",
            if self.use_features { "+feat" } else { "" },
            if self.use_gazetteer { "+gaz" } else { "" },
            if self.context_dim > 0 { "+LM" } else { "" },
        );
        let enc = match &self.encoder {
            EncoderKind::Identity => "none",
            EncoderKind::WindowMlp { .. } => "winMLP",
            EncoderKind::Cnn { .. } => "CNN",
            EncoderKind::IdCnn { .. } => "ID-CNN",
            EncoderKind::Lstm { bidirectional: true, .. } => "BiLSTM",
            EncoderKind::Lstm { bidirectional: false, .. } => "LSTM",
            EncoderKind::Gru { bidirectional: true, .. } => "BiGRU",
            EncoderKind::Gru { bidirectional: false, .. } => "GRU",
            EncoderKind::Transformer { .. } => "Transformer",
        };
        let dec = match &self.decoder {
            DecoderKind::Softmax => "Softmax",
            DecoderKind::Crf => "CRF",
            DecoderKind::SemiCrf { .. } => "SemiCRF",
            DecoderKind::Rnn { .. } => "RNN",
            DecoderKind::Pointer { .. } => "Pointer",
        };
        format!("{char_part}{word_part}{extras}+{enc}+{dec}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_bilstm_crf() {
        let cfg = NerConfig::default();
        assert!(matches!(cfg.encoder, EncoderKind::Lstm { bidirectional: true, .. }));
        assert!(matches!(cfg.decoder, DecoderKind::Crf));
        assert_eq!(cfg.signature(), "charCNN+word(rand)+BiLSTM+CRF");
    }

    #[test]
    fn signatures_distinguish_architectures() {
        let a = NerConfig {
            char_repr: CharRepr::None,
            word: WordRepr::Pretrained { fine_tune: false },
            encoder: EncoderKind::IdCnn { filters: 8, width: 3, dilations: vec![1], iterations: 1 },
            decoder: DecoderKind::Softmax,
            context_dim: 64,
            ..NerConfig::default()
        };
        assert_eq!(a.signature(), "word(pre)+LM+ID-CNN+Softmax");
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = NerConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: NerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
