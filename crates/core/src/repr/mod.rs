//! Distributed representations for input — the first axis of the taxonomy
//! (paper §3.2): word-level, character-level (CNN Fig. 3a / BiLSTM Fig. 3b),
//! hand-crafted hybrid features, gazetteer flags and frozen contextual-LM
//! vectors, assembled per token into one input matrix.
//!
//! Split in two:
//! * [`SentenceEncoder`] — the *data* side: turns a [`Sentence`] into the
//!   id/feature arrays a model consumes ([`EncodedSentence`]). Contextual-LM
//!   vectors are precomputed here (they are frozen features, paper §3.2.3).
//! * [`InputLayer`] — the *model* side: trainable embedding tables and char
//!   composition modules producing the `[n, d]` input matrix on a tape.

use crate::config::{CharRepr, NerConfig, WordRepr};
use crate::plan::TokenFeatureCache;
use ner_embed::{ContextualEmbedder, WordEmbeddings};
use ner_tensor::fused::Activation;
use ner_tensor::nn::{Embedding, Linear, LstmCell};
use ner_tensor::{init, BatchedExec, Exec, FusedVal, PackedExec, ParamId, ParamStore, Tensor};
use ner_text::features::{token_features, FEATURE_DIM};
use ner_text::pos::{tag_sentence, POS_DIM};
use ner_text::{Dataset, EntitySpan, Gazetteer, Sentence, TagScheme, TagSet, Vocab};
use rand::Rng;

/// A sentence converted to model inputs.
#[derive(Clone, Debug)]
pub struct EncodedSentence {
    /// Original token surfaces.
    pub tokens: Vec<String>,
    /// Word ids (lowercased lookup, `<unk>` fallback).
    pub word_ids: Vec<usize>,
    /// Character ids per word.
    pub char_ids: Vec<Vec<usize>>,
    /// Hand-crafted + gazetteer feature rows (empty when unused).
    pub feats: Vec<Vec<f32>>,
    /// Frozen contextual-LM vectors (empty when unused).
    pub ctx: Vec<Vec<f32>>,
    /// Gold tag ids under the encoder's scheme.
    pub tag_ids: Vec<usize>,
    /// Gold (outermost) entity spans.
    pub gold: Vec<EntitySpan>,
}

impl EncodedSentence {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True for the empty sentence.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Lowercased entity surfaces aligned with `gold` (for seen/unseen
    /// recall splits).
    pub fn gold_surfaces(&self) -> Vec<String> {
        self.gold
            .iter()
            .map(|e| {
                self.tokens[e.start..e.end]
                    .iter()
                    .map(|t| t.to_lowercase())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    }
}

/// Converts sentences into [`EncodedSentence`]s with fixed vocabularies.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct SentenceEncoder {
    /// Word vocabulary (lowercased).
    pub word_vocab: Vocab,
    /// Character vocabulary.
    pub char_vocab: Vocab,
    /// Tag inventory under the configured scheme.
    pub tag_set: TagSet,
    /// Sorted entity-type names (for segment-level decoders).
    pub entity_types: Vec<String>,
    use_features: bool,
    gazetteer: Option<Gazetteer>,
}

impl SentenceEncoder {
    /// Builds vocabularies from the training set.
    pub fn from_dataset(train: &Dataset, scheme: TagScheme, min_count: usize) -> Self {
        let entity_types = train.entity_types();
        SentenceEncoder {
            word_vocab: train.word_vocab(min_count),
            char_vocab: train.char_vocab(),
            tag_set: TagSet::new(scheme, &entity_types),
            entity_types,
            use_features: false,
            gazetteer: None,
        }
    }

    /// Like [`SentenceEncoder::from_dataset`], but adopts the pretrained
    /// embeddings' vocabulary so word ids index the pretrained matrix.
    pub fn with_pretrained_vocab(mut self, emb: &WordEmbeddings) -> Self {
        self.word_vocab = emb.vocab().clone();
        self
    }

    /// Enables the hand-crafted feature channel.
    pub fn with_features(mut self, on: bool) -> Self {
        self.use_features = on;
        self
    }

    /// Attaches a gazetteer whose match flags are appended to the features.
    pub fn with_gazetteer(mut self, g: Gazetteer) -> Self {
        self.gazetteer = Some(g);
        self
    }

    /// Width of the feature rows this encoder emits (0 when disabled).
    pub fn feat_dim(&self) -> usize {
        let base = if self.use_features { FEATURE_DIM + POS_DIM } else { 0 };
        base + self.gazetteer.as_ref().map_or(0, |g| g.types().len())
    }

    /// Encodes one sentence (no contextual vectors).
    pub fn encode(&self, s: &Sentence) -> EncodedSentence {
        self.encode_with_context(s, vec![])
    }

    /// Encodes one sentence with precomputed contextual-LM vectors
    /// (`ctx.len()` must be 0 or `s.len()`).
    pub fn encode_with_context(&self, s: &Sentence, ctx: Vec<Vec<f32>>) -> EncodedSentence {
        assert!(ctx.is_empty() || ctx.len() == s.len(), "one context vector per token");
        let texts: Vec<&str> = s.texts();
        let word_ids = s.lower_texts().iter().map(|t| self.word_vocab.get_or_unk(t)).collect();
        let char_ids = texts.iter().map(|t| self.char_vocab.encode_chars(t)).collect();

        let mut feats: Vec<Vec<f32>> = Vec::new();
        if self.feat_dim() > 0 {
            let pos_tags = if self.use_features { tag_sentence(&texts) } else { vec![] };
            let gaz = self.gazetteer.as_ref().map(|g| g.features(&texts));
            for i in 0..s.len() {
                let mut row = Vec::with_capacity(self.feat_dim());
                if self.use_features {
                    row.extend_from_slice(&token_features(&texts, i));
                    row.extend_from_slice(&pos_tags[i].one_hot());
                }
                if let Some(g) = &gaz {
                    row.extend_from_slice(&g[i]);
                }
                feats.push(row);
            }
        }

        let gold = s.outermost_entities();
        let tags = s.tags(self.tag_set.scheme());
        EncodedSentence {
            tokens: texts.iter().map(|t| t.to_string()).collect(),
            word_ids,
            char_ids,
            feats,
            ctx,
            tag_ids: self.tag_set.encode(&tags),
            gold,
        }
    }

    /// Encodes a dataset, optionally precomputing contextual-LM vectors.
    pub fn encode_dataset(
        &self,
        ds: &Dataset,
        contextual: Option<&dyn ContextualEmbedder>,
    ) -> Vec<EncodedSentence> {
        ds.sentences
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| {
                let ctx = contextual.map_or(vec![], |c| {
                    c.embed(&s.tokens.iter().map(|t| t.text.clone()).collect::<Vec<_>>())
                });
                self.encode_with_context(s, ctx)
            })
            .collect()
    }
}

enum CharModule {
    Cnn { emb: Embedding, w: ParamId, b: ParamId, out: usize },
    Lstm { emb: Embedding, fw: LstmCell, bw: LstmCell },
}

impl CharModule {
    fn out_dim(&self) -> usize {
        match self {
            CharModule::Cnn { out, .. } => *out,
            CharModule::Lstm { fw, .. } => 2 * fw.hidden(),
        }
    }

    /// One `[1, out_dim]` row per word, on any backend.
    fn word_vector<E: Exec>(&self, ex: &mut E, store: &ParamStore, chars: &[usize]) -> E::V {
        match self {
            CharModule::Cnn { emb, w, b, .. } => {
                let x = emb.lookup(ex, store, chars);
                let wv = ex.param(store, *w);
                let bv = ex.param(store, *b);
                let c = ex.conv1d_act(x, wv, bv, 3, 1, Activation::Relu);
                ex.max_over_rows(c)
            }
            CharModule::Lstm { emb, fw, bw } => {
                let x = emb.lookup(ex, store, chars);
                let f = fw.sequence(ex, store, x);
                let n = ex.value(f).rows();
                let f_last = ex.row(f, n - 1);
                let b = bw.sequence_rev(ex, store, x);
                let b_first = ex.row(b, 0);
                ex.concat_cols(&[f_last, b_first])
            }
        }
    }
}

/// The trainable input layer assembling the per-token representation.
pub struct InputLayer {
    word_emb: Embedding,
    char: Option<CharModule>,
    gate: Option<Linear>,
    feat_dim: usize,
    ctx_dim: usize,
    dropout: f32,
    out_dim: usize,
}

impl InputLayer {
    /// Builds the layer per `cfg`. `pretrained` must be given when
    /// `cfg.word` is [`WordRepr::Pretrained`]; its matrix seeds (and its
    /// vocabulary must already back) the word ids.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        cfg: &NerConfig,
        word_vocab_len: usize,
        char_vocab_len: usize,
        feat_dim: usize,
        pretrained: Option<&WordEmbeddings>,
    ) -> Self {
        let (word_emb, word_dim) = match &cfg.word {
            WordRepr::Random { dim } => {
                (Embedding::new(store, rng, "input.word_emb", word_vocab_len, *dim), *dim)
            }
            WordRepr::Pretrained { fine_tune } => {
                let emb = pretrained.expect("pretrained embeddings required by config");
                assert_eq!(
                    emb.vocab().len(),
                    word_vocab_len,
                    "encoder must use the pretrained vocabulary"
                );
                let id = store.register("input.word_emb", emb.matrix().clone());
                if !fine_tune {
                    store.set_frozen(id, true);
                }
                (Embedding { table: id }, emb.dim())
            }
        };

        let char = match &cfg.char_repr {
            CharRepr::None => None,
            CharRepr::Cnn { dim, filters } => Some(CharModule::Cnn {
                emb: Embedding::new(store, rng, "input.char_emb", char_vocab_len, *dim),
                w: store.register("input.char_conv.w", init::he(rng, 3 * dim, *filters)),
                b: store.register("input.char_conv.b", init::zeros(1, *filters)),
                out: *filters,
            }),
            CharRepr::Lstm { dim, hidden } => Some(CharModule::Lstm {
                emb: Embedding::new(store, rng, "input.char_emb", char_vocab_len, *dim),
                fw: LstmCell::new(store, rng, "input.char_fw", *dim, *hidden),
                bw: LstmCell::new(store, rng, "input.char_bw", *dim, *hidden),
            }),
        };

        // Rei et al.'s char/word attention gate needs matching widths.
        let gate = match (&char, cfg.char_word_gate) {
            (Some(c), true) if c.out_dim() == word_dim => {
                Some(Linear::new(store, rng, "input.gate", 2 * word_dim, word_dim))
            }
            _ => None,
        };

        let char_dim = char.as_ref().map_or(0, CharModule::out_dim);
        let out_dim = if gate.is_some() {
            word_dim + feat_dim + cfg.context_dim
        } else {
            word_dim + char_dim + feat_dim + cfg.context_dim
        };

        InputLayer {
            word_emb,
            char,
            gate,
            feat_dim,
            ctx_dim: cfg.context_dim,
            dropout: cfg.dropout,
            out_dim,
        }
    }

    /// Output width per token.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Whether the char/word gate is active (vs. plain concatenation).
    pub fn gated(&self) -> bool {
        self.gate.is_some()
    }

    /// Inverted-dropout probability from the config; the *model* applies it
    /// at the representation seam (this layer's output is dropout-free so
    /// the same forward serves training and inference).
    pub fn dropout(&self) -> f32 {
        self.dropout
    }

    /// Assembles the `[n, out_dim]` input matrix for one sentence on any
    /// backend. Base rows (word + char [+ gate]) depend only on the token
    /// surface, so when `cache` is given they are served from (and fed back
    /// into) the LRU; position-dependent feature/context columns are always
    /// appended fresh. Pass `None` on training tapes — cached rows enter as
    /// constants and would silence embedding gradients.
    pub fn forward<E: Exec>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        enc: &EncodedSentence,
        cache: Option<&TokenFeatureCache>,
    ) -> E::V {
        let n = enc.len();
        assert!(n > 0, "cannot represent an empty sentence");
        let base = match cache {
            Some(c) => self.cached_base(ex, store, enc, c),
            None => self.batched_base(ex, store, enc),
        };

        let mut parts: Vec<E::V> = Vec::with_capacity(3);
        parts.push(base);
        if self.feat_dim > 0 {
            debug_assert_eq!(enc.feats.len(), n, "encoder/features mismatch");
            parts.push(ex.constant(rows_to_tensor(&enc.feats, self.feat_dim)));
        }
        if self.ctx_dim > 0 {
            assert_eq!(enc.ctx.len(), n, "contextual vectors missing from encoded sentence");
            parts.push(ex.constant(rows_to_tensor(&enc.ctx, self.ctx_dim)));
        }
        if parts.len() == 1 {
            parts[0]
        } else {
            ex.concat_cols(&parts)
        }
    }

    /// Assembles the packed `[N, out_dim]` input matrix for a whole batch
    /// of sentences (`N = Σ lenᵢ`, segment layout owned by `bx`). Rows are
    /// bit-identical to running [`Self::forward`] per sentence: every base
    /// op treats rows independently, the char composition runs per word in
    /// sentence scope either way, and the feature/context columns are
    /// plain copies. Works on any packed backend — tape-free inference or
    /// the gradient-recording [`ner_tensor::BatchedTapeExec`].
    pub fn forward_batch<P: PackedExec>(
        &self,
        bx: &mut P,
        store: &ParamStore,
        encs: &[&EncodedSentence],
    ) -> P::V {
        debug_assert_eq!(encs.len(), bx.segments(), "one encoded sentence per segment");
        let base = self.packed_base_batch(bx, store, encs);
        self.append_batch_cols(bx, encs, base)
    }

    /// Inference-only [`Self::forward_batch`] that routes the per-token
    /// base through the serving token cache: hits for the whole batch are
    /// served through **one** lock acquisition
    /// (`TokenFeatureCache::lookup_batch`) instead of one per token, and
    /// duplicate uncached surfaces are computed once. The cached base
    /// enters the graph as a constant, so this path never records
    /// gradients — training uses the generic [`Self::forward_batch`].
    pub fn forward_batch_cached(
        &self,
        bx: &mut BatchedExec<'_>,
        store: &ParamStore,
        encs: &[&EncodedSentence],
        cache: Option<&TokenFeatureCache>,
    ) -> FusedVal {
        debug_assert_eq!(encs.len(), bx.segments(), "one encoded sentence per segment");
        let base = match cache {
            Some(c) => self.cached_base_batch(bx, store, encs, c),
            None => self.packed_base_batch(bx, store, encs),
        };
        self.append_batch_cols(bx, encs, base)
    }

    /// Appends the feature/context constant columns to a packed base.
    fn append_batch_cols<P: PackedExec>(
        &self,
        bx: &mut P,
        encs: &[&EncodedSentence],
        base: P::V,
    ) -> P::V {
        let mut parts: Vec<P::V> = Vec::with_capacity(3);
        parts.push(base);
        if self.feat_dim > 0 {
            let rows: Vec<&Vec<f32>> = encs.iter().flat_map(|e| e.feats.iter()).collect();
            parts.push(bx.constant(row_refs_to_tensor(&rows, self.feat_dim)));
        }
        if self.ctx_dim > 0 {
            let rows: Vec<&Vec<f32>> = encs.iter().flat_map(|e| e.ctx.iter()).collect();
            assert_eq!(rows.len(), bx.total_rows(), "contextual vectors missing from batch");
            parts.push(bx.constant(row_refs_to_tensor(&rows, self.ctx_dim)));
        }
        if parts.len() == 1 {
            parts[0]
        } else {
            bx.concat_cols(&parts)
        }
    }

    /// Packed-batch analogue of [`Self::batched_base`]: one embedding
    /// gather over every word id in the batch, char rows stacked across
    /// sentence boundaries (each word's composition still runs alone, in
    /// its sentence's scope), and the gate applied to the whole packed
    /// matrix — all row-wise, so rows match the per-sentence formulation
    /// bit for bit.
    fn packed_base_batch<P: PackedExec>(
        &self,
        bx: &mut P,
        store: &ParamStore,
        encs: &[&EncodedSentence],
    ) -> P::V {
        let word_ids: Vec<usize> = encs.iter().flat_map(|e| e.word_ids.iter().copied()).collect();
        let words = self.word_emb.lookup(bx, store, &word_ids);
        let cm = match &self.char {
            None => return words,
            Some(cm) => cm,
        };
        let mut rows: Vec<P::V> = Vec::with_capacity(bx.total_rows());
        for (s, e) in encs.iter().enumerate() {
            bx.scoped(s, |ex| {
                for chars in &e.char_ids {
                    rows.push(cm.word_vector(ex, store, chars));
                }
            });
        }
        let chars = bx.concat_rows(&rows);
        match &self.gate {
            Some(gate) => {
                // z = σ(W[w;c]); rep = z⊙w + (c − z⊙c).
                let both = bx.concat_cols(&[words, chars]);
                let z = gate.forward_act(bx, store, both, Activation::Sigmoid);
                let zw = bx.mul(z, words);
                let zc = bx.mul(z, chars);
                let c_minus = bx.sub(chars, zc);
                bx.add(zw, c_minus)
            }
            None => bx.concat_cols(&[words, chars]),
        }
    }

    /// Packed-batch analogue of [`Self::cached_base`]: hits for the whole
    /// batch are copied under a single cache lock, missed surfaces are
    /// computed once each (duplicates within the batch share the row), and
    /// the fresh rows feed back in one batched insert. Values are
    /// bit-identical to the per-sentence cached path.
    fn cached_base_batch(
        &self,
        bx: &mut BatchedExec<'_>,
        store: &ParamStore,
        encs: &[&EncodedSentence],
        cache: &TokenFeatureCache,
    ) -> FusedVal {
        let tokens: Vec<&str> =
            encs.iter().flat_map(|e| e.tokens.iter().map(String::as_str)).collect();
        let mut base = Tensor::zeros_pooled(tokens.len(), self.base_dim());
        let missed = cache.lookup_batch(&tokens, &mut base);
        if !missed.is_empty() {
            let word_ids: Vec<usize> =
                encs.iter().flat_map(|e| e.word_ids.iter().copied()).collect();
            let char_ids: Vec<&[usize]> =
                encs.iter().flat_map(|e| e.char_ids.iter().map(Vec::as_slice)).collect();
            // Discovery-ordered so cache insertion order is deterministic.
            let mut fresh: Vec<(&str, Vec<f32>)> = Vec::new();
            let mut by_surface: std::collections::HashMap<&str, usize> =
                std::collections::HashMap::new();
            for &i in &missed {
                let token = tokens[i];
                let slot = match by_surface.get(token) {
                    Some(&f) => f,
                    None => {
                        let ex = bx.inner_mut();
                        let v = self.base_row(ex, store, word_ids[i], char_ids[i]);
                        let row = ex.value(v).row(0).to_vec();
                        fresh.push((token, row));
                        by_surface.insert(token, fresh.len() - 1);
                        fresh.len() - 1
                    }
                };
                base.row_mut(i).copy_from_slice(&fresh[slot].1);
            }
            cache.insert_batch(fresh);
        }
        bx.constant(base)
    }

    /// Width of the cacheable per-token base slice (word + char [+ gate]) —
    /// everything in [`forward`](Self::forward) that depends only on the
    /// token itself, not its sentence position.
    fn base_dim(&self) -> usize {
        self.out_dim - self.feat_dim - self.ctx_dim
    }

    /// Sentence-batched base `[n, base_dim]`: one embedding gather for all
    /// word ids, char rows stacked, the gate applied to the whole matrix.
    /// This is the gradient-carrying formulation the trainer records.
    fn batched_base<E: Exec>(&self, ex: &mut E, store: &ParamStore, enc: &EncodedSentence) -> E::V {
        let words = self.word_emb.lookup(ex, store, &enc.word_ids);
        let cm = match &self.char {
            None => return words,
            Some(cm) => cm,
        };
        let rows: Vec<E::V> =
            enc.char_ids.iter().map(|chars| cm.word_vector(ex, store, chars)).collect();
        let chars = ex.concat_rows(&rows);
        match &self.gate {
            Some(gate) => {
                // z = σ(W[w;c]); rep = z⊙w + (c − z⊙c).
                let both = ex.concat_cols(&[words, chars]);
                let z = gate.forward_act(ex, store, both, Activation::Sigmoid);
                let zw = ex.mul(z, words);
                let zc = ex.mul(z, chars);
                let c_minus = ex.sub(chars, zc);
                ex.add(zw, c_minus)
            }
            None => ex.concat_cols(&[words, chars]),
        }
    }

    /// Base matrix assembled row by row through the token cache: hits are
    /// copied straight into the output, misses run [`Self::base_row`] and
    /// feed the cache. The result enters the graph as a single constant —
    /// gradient-free, which is why training passes `cache: None`. Rows are
    /// bit-identical to [`Self::batched_base`]'s because every base op
    /// treats rows independently.
    fn cached_base<E: Exec>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        enc: &EncodedSentence,
        cache: &TokenFeatureCache,
    ) -> E::V {
        let n = enc.len();
        let mut base = Tensor::zeros_pooled(n, self.base_dim());
        for i in 0..n {
            let token = enc.tokens[i].as_str();
            if cache.copy_into(token, base.row_mut(i)) {
                continue;
            }
            let v = self.base_row(ex, store, enc.word_ids[i], &enc.char_ids[i]);
            let row = ex.value(v).row(0).to_vec();
            base.row_mut(i).copy_from_slice(&row);
            cache.insert(token, row);
        }
        ex.constant(base)
    }

    /// The `[1, base_dim]` representation for one token. Every op here
    /// (embedding gather, char composition, gate) treats rows
    /// independently, so the result is bit-identical to the corresponding
    /// row of a batched formulation — which is what makes caching it by
    /// surface form safe.
    fn base_row<E: Exec>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        word_id: usize,
        chars: &[usize],
    ) -> E::V {
        let word = self.word_emb.lookup(ex, store, &[word_id]);
        let cm = match &self.char {
            None => return word,
            Some(cm) => cm,
        };
        let char_vec = cm.word_vector(ex, store, chars);
        match &self.gate {
            Some(gate) => {
                // z = σ(W[w;c]); rep = z⊙w + (c − z⊙c).
                let both = ex.concat_cols(&[word, char_vec]);
                let z = gate.forward_act(ex, store, both, Activation::Sigmoid);
                let zw = ex.mul(z, word);
                let zc = ex.mul(z, char_vec);
                let c_minus = ex.sub(char_vec, zc);
                ex.add(zw, c_minus)
            }
            None => ex.concat_cols(&[word, char_vec]),
        }
    }
}

fn rows_to_tensor(rows: &[Vec<f32>], dim: usize) -> Tensor {
    let mut t = Tensor::zeros(rows.len(), dim);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), dim, "feature row width mismatch");
        t.row_mut(i).copy_from_slice(row);
    }
    t
}

fn row_refs_to_tensor(rows: &[&Vec<f32>], dim: usize) -> Tensor {
    let mut t = Tensor::zeros(rows.len(), dim);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), dim, "feature row width mismatch");
        t.row_mut(i).copy_from_slice(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NerConfig;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize) -> Dataset {
        NewsGenerator::new(GeneratorConfig::default()).dataset(&mut StdRng::seed_from_u64(1), n)
    }

    #[test]
    fn sentence_encoding_has_aligned_arrays() {
        let ds = dataset(30);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bioes, 1).with_features(true);
        let e = enc.encode(&ds.sentences[0]);
        assert_eq!(e.word_ids.len(), e.len());
        assert_eq!(e.char_ids.len(), e.len());
        assert_eq!(e.feats.len(), e.len());
        assert_eq!(e.tag_ids.len(), e.len());
        assert_eq!(e.feats[0].len(), enc.feat_dim());
        assert!(enc.feat_dim() == FEATURE_DIM + POS_DIM);
    }

    #[test]
    fn gazetteer_extends_feature_dim() {
        let ds = dataset(10);
        let mut g = Gazetteer::new();
        g.add("LOC", &["Brooklyn"]);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1)
            .with_features(true)
            .with_gazetteer(g);
        assert_eq!(enc.feat_dim(), FEATURE_DIM + POS_DIM + 1);
    }

    #[test]
    fn gold_surfaces_align_with_gold_spans() {
        let ds = dataset(5);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        for s in &ds.sentences {
            let e = enc.encode(s);
            assert_eq!(e.gold_surfaces().len(), e.gold.len());
        }
    }

    fn forward_dim(cfg: &NerConfig, feat: bool) -> usize {
        let ds = dataset(20);
        let enc = SentenceEncoder::from_dataset(&ds, cfg.scheme, 1).with_features(feat);
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = InputLayer::new(
            &mut store,
            &mut rng,
            cfg,
            enc.word_vocab.len(),
            enc.char_vocab.len(),
            enc.feat_dim(),
            None,
        );
        let e = enc.encode(&ds.sentences[0]);
        let mut tape = ner_tensor::Tape::new();
        let x = layer.forward(&mut tape, &store, &e, None);
        assert_eq!(tape.value(x).shape(), (e.len(), layer.out_dim()));
        assert!(tape.value(x).all_finite());
        layer.out_dim()
    }

    #[test]
    fn representation_widths_compose() {
        let mut cfg = NerConfig::default(); // word 32 + charCNN 16
        assert_eq!(forward_dim(&cfg, false), 48);
        cfg.char_repr = CharRepr::Lstm { dim: 8, hidden: 10 };
        assert_eq!(forward_dim(&cfg, false), 32 + 20);
        cfg.char_repr = CharRepr::None;
        assert_eq!(forward_dim(&cfg, true), 32 + FEATURE_DIM + POS_DIM);
    }

    #[test]
    fn gate_replaces_concatenation_when_widths_match() {
        let mut cfg = NerConfig {
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::Cnn { dim: 8, filters: 16 },
            char_word_gate: true,
            ..NerConfig::default()
        };
        assert_eq!(forward_dim(&cfg, false), 16, "gated output keeps word width");

        // Width mismatch falls back to concatenation.
        cfg.char_repr = CharRepr::Cnn { dim: 8, filters: 12 };
        assert_eq!(forward_dim(&cfg, false), 28);
    }

    #[test]
    fn pretrained_embeddings_seed_and_freeze_the_table() {
        let ds = dataset(30);
        let corpus: Vec<Vec<String>> = ds.sentences.iter().map(|s| s.lower_texts()).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let emb = ner_embed::skipgram::train(
            &corpus,
            &ner_embed::skipgram::SkipGramConfig { dim: 12, epochs: 1, ..Default::default() },
            &mut rng,
        );
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1).with_pretrained_vocab(&emb);
        let cfg = NerConfig {
            word: WordRepr::Pretrained { fine_tune: false },
            char_repr: CharRepr::None,
            ..NerConfig::default()
        };
        let mut store = ParamStore::new();
        let layer = InputLayer::new(
            &mut store,
            &mut rng,
            &cfg,
            enc.word_vocab.len(),
            enc.char_vocab.len(),
            0,
            Some(&emb),
        );
        assert_eq!(layer.out_dim(), 12);
        let id = store.find("input.word_emb").unwrap();
        assert!(store.is_frozen(id));
        assert_eq!(store.value(id), emb.matrix());
    }
}
