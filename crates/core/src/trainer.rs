//! The training loop: per-sentence SGD with gradient clipping, optional
//! learning-rate schedules, dev-set early stopping with best-model
//! restoration, and evaluation helpers.
//!
//! # Threading
//!
//! When the global `ner-par` pool has more than one thread, each epoch is
//! processed in minibatches of `threads` sentences: every worker builds its
//! own [`Tape`] and backpropagates into a private [`GradBuffer`], and the
//! coordinator merges the buffers **in shard order** (deterministic for a
//! fixed thread count), clips once, and takes one optimizer step per batch.
//! Gradients are summed — not averaged — over the shard, so the total SGD
//! displacement per epoch matches the serial path's; Adam's update is
//! scale-invariant either way. With `NER_THREADS=1` (or one core) the
//! original per-sentence serial loop runs unchanged, bit for bit.

use crate::metrics::{evaluate, EvalResult};
use crate::model::NerModel;
use crate::repr::EncodedSentence;
use ner_tensor::optim::{Adam, LrSchedule, Optimizer, Sgd};
use ner_tensor::{GradBuffer, OpClass, Tape};
use ner_text::EntitySpan;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Optimizer selection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// SGD with classical momentum 0.9.
    SgdMomentum,
    /// Adam (β₁=0.9, β₂=0.999).
    Adam,
}

/// Training-loop configuration.
#[derive(Clone, Debug, Serialize)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Learning-rate schedule applied per epoch.
    pub schedule: LrScheduleKind,
    /// Global-norm gradient clip (0 disables).
    pub clip: f32,
    /// Early-stopping patience in epochs on dev F1 (`None` disables; the
    /// best-dev parameters are restored either way when a dev set is given).
    pub patience: Option<usize>,
    /// Shuffle the training order each epoch.
    pub shuffle: bool,
}

/// Serializable schedule selector (mirrors [`LrSchedule`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum LrScheduleKind {
    /// Constant rate.
    Constant,
    /// `lr / (1 + decay·epoch)`.
    InverseTime {
        /// Per-epoch decay.
        decay: f32,
    },
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            lr: 0.01,
            optimizer: OptimizerKind::Adam,
            schedule: LrScheduleKind::InverseTime { decay: 0.05 },
            clip: 5.0,
            patience: Some(4),
            shuffle: true,
        }
    }
}

/// Per-epoch training record, also emitted as a structured `"epoch"` event
/// through `ner-obs` when a sink is installed.
#[derive(Clone, Debug, Serialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss per sentence.
    pub train_loss: f64,
    /// Dev micro-F1 (when a dev set was supplied).
    pub dev_f1: Option<f64>,
    /// Mean pre-clip global gradient norm over applied updates.
    pub grad_norm: f64,
    /// Effective learning rate this epoch (after the schedule).
    pub lr: f32,
    /// Wall-clock milliseconds spent on the epoch (including dev eval).
    pub wall_ms: u64,
    /// Largest autodiff tape built during the epoch, in nodes.
    pub peak_tape_nodes: usize,
    /// Updates skipped because the loss or gradient norm was non-finite.
    pub skipped_updates: usize,
}

/// Outcome of a training run.
#[derive(Clone, Debug, Serialize)]
pub struct TrainReport {
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// Epoch whose parameters the model ended up with.
    pub best_epoch: usize,
    /// Best dev micro-F1 (when a dev set was supplied).
    pub best_dev_f1: Option<f64>,
    /// Why training ended: `"completed"` or an early-stop description.
    pub stop_reason: String,
}

/// Accumulators for one epoch's pass over the training order.
#[derive(Default)]
struct EpochStats {
    total_loss: f64,
    norm_sum: f64,
    applied: usize,
    skipped: usize,
    peak_nodes: usize,
}

/// What one worker produced for one training sentence.
enum SentenceOutcome {
    /// Sentence was empty; nothing to do.
    Empty,
    /// Loss came out non-finite; the coordinator logs and skips it.
    NonFinite { index: usize, loss: f64 },
    /// A usable gradient contribution.
    Update {
        loss: f64,
        grads: GradBuffer,
        nodes: usize,
        ops: Vec<(OpClass, u32)>,
        pool: ner_tensor::pool::PoolStats,
    },
}

/// The original per-sentence serial loop: one tape, one backward, one
/// optimizer step per sentence. Kept verbatim so single-thread runs
/// reproduce historical trajectories exactly.
#[allow(clippy::too_many_arguments)]
fn run_epoch_serial(
    model: &mut NerModel,
    train: &[EncodedSentence],
    order: &[usize],
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
    epoch: usize,
    rng: &mut impl Rng,
    op_totals: &mut [u64],
) -> EpochStats {
    let mut stats = EpochStats::default();
    for &i in order {
        let sent = &train[i];
        if sent.is_empty() {
            continue;
        }
        let mut tape = Tape::new();
        let loss = model.loss(&mut tape, sent, rng);
        let loss_val = tape.value(loss).item() as f64;
        if !loss_val.is_finite() {
            stats.skipped += 1;
            ner_obs::warn(format!(
                "epoch {epoch}: non-finite loss ({loss_val}) on sentence {i}; update skipped"
            ));
            continue;
        }
        stats.total_loss += loss_val;
        tape.backward(loss, &mut model.store);
        let norm = if cfg.clip > 0.0 {
            model.store.clip_grad_norm(cfg.clip)
        } else {
            model.store.grad_global_norm()
        };
        if !norm.is_finite() {
            stats.skipped += 1;
            ner_obs::warn(format!(
                "epoch {epoch}: non-finite gradient norm on sentence {i}; update skipped"
            ));
            model.store.zero_grad();
            continue;
        }
        stats.norm_sum += norm as f64;
        stats.applied += 1;
        stats.peak_nodes = stats.peak_nodes.max(tape.len());
        for (class, n) in tape.op_counts() {
            op_totals[class as usize] += n as u64;
        }
        opt.step(&mut model.store);
    }
    stats
}

/// Data-parallel epoch: minibatches of `pool.threads()` sentences, each
/// sentence's forward/backward on its own worker tape, gradients merged in
/// shard order and applied with a single clipped optimizer step per batch.
#[allow(clippy::too_many_arguments)]
fn run_epoch_parallel(
    model: &mut NerModel,
    train: &[EncodedSentence],
    order: &[usize],
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
    epoch: usize,
    pool: &ner_par::ThreadPool,
    rng: &mut impl Rng,
    op_totals: &mut [u64],
) -> EpochStats {
    let mut stats = EpochStats::default();
    for chunk in order.chunks(pool.threads()) {
        // One seed per batch; each shard derives an independent stream so
        // dropout masks don't depend on worker scheduling.
        let batch_seed: u64 = rng.gen();
        let model_ref: &NerModel = model;
        let results = pool.map(chunk.len(), |j| {
            let i = chunk[j];
            let sent = &train[i];
            if sent.is_empty() {
                return SentenceOutcome::Empty;
            }
            let mut shard_rng = StdRng::seed_from_u64(
                batch_seed.wrapping_add((j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            let mut tape = Tape::new();
            let loss = model_ref.loss(&mut tape, sent, &mut shard_rng);
            let loss_val = tape.value(loss).item() as f64;
            if !loss_val.is_finite() {
                return SentenceOutcome::NonFinite { index: i, loss: loss_val };
            }
            let mut grads = GradBuffer::new(model_ref.store.len());
            tape.backward_into(loss, &mut grads);
            let ops: Vec<(OpClass, u32)> = tape.op_counts().collect();
            let nodes = tape.len();
            drop(tape); // recycle node buffers into this worker's pool
            SentenceOutcome::Update {
                loss: loss_val,
                grads,
                nodes,
                ops,
                pool: ner_tensor::pool::take_stats(),
            }
        });

        // Merge in shard order — deterministic for a fixed thread count.
        let mut contributed = 0usize;
        for outcome in results {
            match outcome {
                SentenceOutcome::Empty => {}
                SentenceOutcome::NonFinite { index, loss } => {
                    stats.skipped += 1;
                    ner_obs::warn(format!(
                        "epoch {epoch}: non-finite loss ({loss}) on sentence {index}; update skipped"
                    ));
                }
                SentenceOutcome::Update { loss, grads, nodes, ops, pool } => {
                    stats.total_loss += loss;
                    stats.peak_nodes = stats.peak_nodes.max(nodes);
                    for (class, n) in ops {
                        op_totals[class as usize] += n as u64;
                    }
                    ner_obs::counter("pool.hits", pool.hits as f64);
                    ner_obs::counter("pool.misses", pool.misses as f64);
                    ner_obs::counter("pool.recycled", pool.recycled as f64);
                    grads.apply_to(&mut model.store);
                    contributed += 1;
                }
            }
        }
        if contributed == 0 {
            continue;
        }
        let norm = if cfg.clip > 0.0 {
            model.store.clip_grad_norm(cfg.clip)
        } else {
            model.store.grad_global_norm()
        };
        if !norm.is_finite() {
            stats.skipped += contributed;
            ner_obs::warn(format!(
                "epoch {epoch}: non-finite gradient norm on a {contributed}-sentence batch; update skipped"
            ));
            model.store.zero_grad();
            continue;
        }
        stats.norm_sum += norm as f64;
        stats.applied += 1;
        opt.step(&mut model.store);
    }
    stats
}

fn make_optimizer(cfg: &TrainConfig) -> Box<dyn Optimizer> {
    match cfg.optimizer {
        OptimizerKind::Sgd => Box::new(Sgd::new(cfg.lr)),
        OptimizerKind::SgdMomentum => Box::new(Sgd::new(cfg.lr).with_momentum(0.9)),
        OptimizerKind::Adam => Box::new(Adam::new(cfg.lr)),
    }
}

fn schedule(cfg: &TrainConfig) -> LrSchedule {
    match cfg.schedule {
        LrScheduleKind::Constant => LrSchedule::Constant,
        LrScheduleKind::InverseTime { decay } => LrSchedule::InverseTime { decay },
    }
}

fn effective_lr(cfg: &TrainConfig, epoch: usize) -> f32 {
    match cfg.schedule {
        LrScheduleKind::Constant => cfg.lr,
        LrScheduleKind::InverseTime { decay } => cfg.lr / (1.0 + decay * epoch as f32),
    }
}

/// Trains `model` on `train`, optionally early-stopping on `dev` micro-F1.
pub fn train(
    model: &mut NerModel,
    train: &[EncodedSentence],
    dev: Option<&[EncodedSentence]>,
    cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> TrainReport {
    assert!(!train.is_empty(), "training set is empty");
    let _train_span = ner_obs::span("train");
    ner_obs::gauge("params.scalars", model.store.num_scalars() as f64);
    let pool = ner_par::global();
    ner_obs::gauge("par.threads", pool.threads() as f64);
    let mut opt = make_optimizer(cfg);
    let sched = schedule(cfg);
    let mut order: Vec<usize> = (0..train.len()).collect();

    let mut records = Vec::with_capacity(cfg.epochs);
    let mut best_f1 = f64::NEG_INFINITY;
    let mut best_epoch = 0usize;
    let mut best_params = None;
    let mut stale = 0usize;
    let mut stop_reason = "completed".to_string();
    let mut op_totals = [0u64; ner_tensor::OpClass::ALL.len()];

    for epoch in 0..cfg.epochs {
        let epoch_span = ner_obs::span("epoch");
        let epoch_start = std::time::Instant::now();
        sched.apply(opt.as_mut(), cfg.lr, epoch);
        if cfg.shuffle {
            order.shuffle(rng);
        }
        let stats = if pool.threads() > 1 {
            run_epoch_parallel(
                model,
                train,
                &order,
                opt.as_mut(),
                cfg,
                epoch,
                &pool,
                rng,
                &mut op_totals,
            )
        } else {
            run_epoch_serial(model, train, &order, opt.as_mut(), cfg, epoch, rng, &mut op_totals)
        };
        let EpochStats { total_loss, norm_sum, applied, skipped, peak_nodes } = stats;
        let train_loss = total_loss / train.len() as f64;

        // Export the coordinator thread's buffer-pool counters (workers
        // export their own deltas per update in the parallel path).
        let pstats = ner_tensor::pool::take_stats();
        if pstats.hits + pstats.misses + pstats.recycled > 0 {
            ner_obs::counter("pool.hits", pstats.hits as f64);
            ner_obs::counter("pool.misses", pstats.misses as f64);
            ner_obs::counter("pool.recycled", pstats.recycled as f64);
        }

        let dev_f1 = dev.map(|d| {
            let _eval_span = ner_obs::span("eval");
            evaluate_model(model, d).micro.f1
        });
        drop(epoch_span);
        let record = EpochRecord {
            epoch,
            train_loss,
            dev_f1,
            grad_norm: if applied > 0 { norm_sum / applied as f64 } else { 0.0 },
            lr: effective_lr(cfg, epoch),
            wall_ms: epoch_start.elapsed().as_millis() as u64,
            peak_tape_nodes: peak_nodes,
            skipped_updates: skipped,
        };
        ner_obs::gauge_max("tape.peak_nodes", peak_nodes as f64);
        // Always registered (even at 0) so run logs make "no updates were
        // skipped" explicit rather than ambiguous.
        ner_obs::counter("train.skipped_updates", skipped as f64);
        ner_obs::emit_record("epoch", &record);
        ner_obs::info(format!(
            "epoch {:>2}  loss {:>9.4}  |grad| {:>7.3}  lr {:.4}{}  [{} ms]",
            record.epoch,
            record.train_loss,
            record.grad_norm,
            record.lr,
            record.dev_f1.map_or(String::new(), |f| format!("  dev-F1 {:.2}%", 100.0 * f)),
            record.wall_ms,
        ));
        records.push(record);

        if let Some(f1) = dev_f1 {
            if f1 > best_f1 {
                best_f1 = f1;
                best_epoch = epoch;
                best_params = Some(model.store.clone());
                stale = 0;
            } else {
                stale += 1;
                if cfg.patience.is_some_and(|p| stale >= p) {
                    stop_reason = format!(
                        "early-stop: dev F1 stale for {stale} epochs (best {best_f1:.4} at epoch {best_epoch})"
                    );
                    break;
                }
            }
        } else {
            best_epoch = epoch;
        }
    }

    for (class, &n) in ner_tensor::OpClass::ALL.iter().zip(&op_totals) {
        if n > 0 {
            ner_obs::counter(&format!("tape.ops.{}", class.name()), n as f64);
        }
    }
    if stop_reason != "completed" {
        ner_obs::info(stop_reason.clone());
    }
    if let Some(params) = best_params {
        model.store = params;
    }
    TrainReport {
        epochs: records,
        best_epoch,
        best_dev_f1: (best_f1 > f64::NEG_INFINITY).then_some(best_f1),
        stop_reason,
    }
}

/// Predicts spans for every sentence, fanning out over the global
/// `ner-par` pool. Prediction is read-only, so the result is identical at
/// any thread count.
pub fn predict_all(model: &NerModel, data: &[EncodedSentence]) -> Vec<Vec<EntitySpan>> {
    let pool = ner_par::global();
    if pool.threads() <= 1 || data.len() < 2 {
        return data.iter().map(|e| model.predict_spans(e)).collect();
    }
    pool.map(data.len(), |i| model.predict_spans(&data[i]))
}

/// Evaluates the model on encoded data with exact/relaxed span metrics.
pub fn evaluate_model(model: &NerModel, data: &[EncodedSentence]) -> EvalResult {
    let golds: Vec<Vec<EntitySpan>> = data.iter().map(|e| e.gold.clone()).collect();
    let preds = predict_all(model, data);
    evaluate(&golds, &preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
    use crate::repr::SentenceEncoder;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> NerConfig {
        NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.1,
            ..NerConfig::default()
        }
    }

    #[test]
    fn bilstm_crf_learns_the_synthetic_corpus() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let train_ds = gen.dataset(&mut rng, 150);
        let test_ds = gen.dataset(&mut rng, 50);
        let enc = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let train_enc = enc.encode_dataset(&train_ds, None);
        let test_enc = enc.encode_dataset(&test_ds, None);

        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let cfg = TrainConfig { epochs: 6, ..Default::default() };
        let report = train(&mut model, &train_enc, None, &cfg, &mut rng);
        assert!(
            report.epochs.last().unwrap().train_loss < report.epochs[0].train_loss,
            "loss should fall"
        );
        let result = evaluate_model(&model, &test_enc);
        assert!(
            result.micro.f1 > 0.6,
            "BiLSTM-CRF should reach reasonable F1 on synthetic news, got {}",
            result.micro.f1
        );
    }

    #[test]
    fn early_stopping_restores_best_parameters() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let train_ds = gen.dataset(&mut rng, 60);
        let dev_ds = gen.dataset(&mut rng, 30);
        let enc = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let train_enc = enc.encode_dataset(&train_ds, None);
        let dev_enc = enc.encode_dataset(&dev_ds, None);

        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let cfg = TrainConfig { epochs: 5, patience: Some(2), ..Default::default() };
        let report = train(&mut model, &train_enc, Some(&dev_enc), &cfg, &mut rng);
        let best = report.best_dev_f1.unwrap();
        // The restored model must reproduce the recorded best dev F1.
        let now = evaluate_model(&model, &dev_enc).micro.f1;
        assert!((now - best).abs() < 1e-9, "restored {now} vs recorded best {best}");
    }

    #[test]
    fn nan_loss_skips_every_update_and_exports_the_counter() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let ds = gen.dataset(&mut rng, 8);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let train_enc = enc.encode_dataset(&ds, None);
        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        // Poison every parameter: each per-sentence loss is NaN, so the
        // non-finite guard must skip every optimizer update.
        let ids: Vec<_> = model.store.ids().collect();
        for id in ids {
            model.store.value_mut(id).data_mut().fill(f32::NAN);
        }
        let before = ner_obs::counter_value("train.skipped_updates").unwrap_or(0.0);
        let cfg = TrainConfig { epochs: 2, patience: None, ..Default::default() };
        let report = train(&mut model, &train_enc, None, &cfg, &mut rng);
        for e in &report.epochs {
            assert_eq!(e.skipped_updates, train_enc.len(), "epoch {}", e.epoch);
        }
        let after = ner_obs::counter_value("train.skipped_updates").unwrap_or(0.0);
        let expected = (cfg.epochs * train_enc.len()) as f64;
        assert!(
            after - before >= expected,
            "counter should grow by at least {expected} (before {before}, after {after})"
        );
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_set_rejected() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let ds = gen.dataset(&mut rng, 5);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        train(&mut model, &[], None, &TrainConfig::default(), &mut rng);
    }
}
