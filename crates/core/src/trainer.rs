//! The training loop: minibatch SGD with gradient clipping, optional
//! learning-rate schedules, dev-set early stopping with best-model
//! restoration, and evaluation helpers.
//!
//! # Backends
//!
//! Two gradient-recording backends drive an epoch ([`TrainerKind`]):
//!
//! * **Batched** (default): each worker packs its bucket of
//!   [`TrainConfig::batch`] sentences into one `[N, d]` row matrix and
//!   records a single [`Tape`] through `ner_tensor::BatchedTapeExec` — one
//!   recurrent GEMM per timestep across the live prefix, exactly the
//!   layout serving uses. A segmented backward scatters each sentence's
//!   gradients into its own [`GradBuffer`], bit-identically to what a
//!   per-sentence tape would have produced (see DESIGN.md "Batched
//!   training").
//! * **Per-sentence**: the historical one-tape-per-sentence formulation,
//!   kept as the parity oracle.
//!
//! # Threading and schedule
//!
//! Each epoch walks the (shuffled) order in chunks of `threads × batch`
//! sentences: every worker processes its bucket independently, and the
//! coordinator merges the gradient buffers **in sentence order**
//! (deterministic for a fixed thread count and batch size), clips once,
//! and takes one optimizer step per chunk. Gradients are summed — not
//! averaged — over the chunk, so the total SGD displacement per epoch
//! matches the serial path's; Adam's update is scale-invariant either way.
//! Dropout streams are seeded per sentence from one draw per chunk, so
//! masks depend only on a sentence's position in the order — which makes
//! the two backends produce bit-identical loss curves and final weights at
//! any thread count. With `NER_THREADS=1` and `batch == 1` the sentences'
//! dropout draws come straight from the shared epoch rng and one step is
//! taken per sentence: the historical serial trajectory, reproduced bit
//! for bit by both backends.

use crate::metrics::{evaluate, EvalResult};
use crate::model::NerModel;
use crate::repr::EncodedSentence;
use ner_tensor::optim::{Adam, LrSchedule, Optimizer, Sgd};
use ner_tensor::{GradBuffer, OpClass, Tape};
use ner_text::EntitySpan;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use serde::Serialize;

/// Multiplier of the within-chunk index that derives each sentence's
/// dropout-stream seed from the chunk's base seed (golden-ratio stride, so
/// neighboring sentences get decorrelated streams).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Which gradient-recording backend drives each epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum TrainerKind {
    /// One packed tape per bucket of [`TrainConfig::batch`] sentences,
    /// recorded through `ner_tensor::BatchedTapeExec` (default).
    Batched,
    /// One tape per sentence — the historical formulation, kept as the
    /// bit-identity oracle for the batched backend.
    PerSentence,
}

impl std::str::FromStr for TrainerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "batched" => Ok(TrainerKind::Batched),
            "per-sentence" => Ok(TrainerKind::PerSentence),
            other => Err(format!("unknown trainer '{other}' (expected batched|per-sentence)")),
        }
    }
}

/// Optimizer selection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// SGD with classical momentum 0.9.
    SgdMomentum,
    /// Adam (β₁=0.9, β₂=0.999).
    Adam,
}

/// Training-loop configuration.
#[derive(Clone, Debug, Serialize)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Learning-rate schedule applied per epoch.
    pub schedule: LrScheduleKind,
    /// Global-norm gradient clip (0 disables).
    pub clip: f32,
    /// Early-stopping patience in epochs on dev F1 (`None` disables; the
    /// best-dev parameters are restored either way when a dev set is given).
    pub patience: Option<usize>,
    /// Shuffle the training order each epoch.
    pub shuffle: bool,
    /// Gradient-recording backend.
    pub trainer: TrainerKind,
    /// Sentences per packed bucket (per worker). `1` reproduces the
    /// historical per-sentence schedule bit for bit; larger buckets
    /// amortize the recurrent GEMMs across sentences.
    pub batch: usize,
}

/// Serializable schedule selector (mirrors [`LrSchedule`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum LrScheduleKind {
    /// Constant rate.
    Constant,
    /// `lr / (1 + decay·epoch)`.
    InverseTime {
        /// Per-epoch decay.
        decay: f32,
    },
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            lr: 0.01,
            optimizer: OptimizerKind::Adam,
            schedule: LrScheduleKind::InverseTime { decay: 0.05 },
            clip: 5.0,
            patience: Some(4),
            shuffle: true,
            trainer: TrainerKind::Batched,
            batch: 1,
        }
    }
}

/// Per-epoch training record, also emitted as a structured `"epoch"` event
/// through `ner-obs` when a sink is installed.
#[derive(Clone, Debug, Serialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss per sentence.
    pub train_loss: f64,
    /// Dev micro-F1 (when a dev set was supplied).
    pub dev_f1: Option<f64>,
    /// Mean pre-clip global gradient norm over applied updates.
    pub grad_norm: f64,
    /// Effective learning rate this epoch (after the schedule).
    pub lr: f32,
    /// Wall-clock milliseconds spent on the epoch (including dev eval).
    pub wall_ms: u64,
    /// Training tokens consumed per wall-clock second this epoch.
    pub tokens_per_s: f64,
    /// Largest autodiff tape built during the epoch, in nodes.
    pub peak_tape_nodes: usize,
    /// Updates skipped because the loss or gradient norm was non-finite.
    pub skipped_updates: usize,
}

/// Outcome of a training run.
#[derive(Clone, Debug, Serialize)]
pub struct TrainReport {
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// Epoch whose parameters the model ended up with.
    pub best_epoch: usize,
    /// Best dev micro-F1 (when a dev set was supplied).
    pub best_dev_f1: Option<f64>,
    /// Why training ended: `"completed"` or an early-stop description.
    pub stop_reason: String,
}

/// Accumulators for one epoch's pass over the training order.
#[derive(Default)]
struct EpochStats {
    total_loss: f64,
    norm_sum: f64,
    applied: usize,
    skipped: usize,
    peak_nodes: usize,
}

/// What one worker produced for one training sentence.
enum SentenceOutcome {
    /// Sentence was empty; nothing to do.
    Empty,
    /// Loss came out non-finite; the coordinator logs and skips it.
    NonFinite { index: usize, loss: f64 },
    /// A usable gradient contribution.
    Update {
        loss: f64,
        grads: GradBuffer,
        nodes: usize,
        ops: Vec<(OpClass, u32)>,
        pool: ner_tensor::pool::PoolStats,
    },
}

/// The original per-sentence serial loop: one tape, one backward, one
/// optimizer step per sentence. Kept verbatim so single-thread runs
/// reproduce historical trajectories exactly.
#[allow(clippy::too_many_arguments)]
fn run_epoch_serial(
    model: &mut NerModel,
    train: &[EncodedSentence],
    order: &[usize],
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
    epoch: usize,
    rng: &mut impl Rng,
    op_totals: &mut [u64],
) -> EpochStats {
    let mut stats = EpochStats::default();
    for &i in order {
        let sent = &train[i];
        if sent.is_empty() {
            continue;
        }
        let mut tape = Tape::new();
        let loss = model.loss(&mut tape, sent, rng);
        let loss_val = tape.value(loss).item() as f64;
        if !loss_val.is_finite() {
            stats.skipped += 1;
            ner_obs::warn(format!(
                "epoch {epoch}: non-finite loss ({loss_val}) on sentence {i}; update skipped"
            ));
            continue;
        }
        stats.total_loss += loss_val;
        tape.backward(loss, &mut model.store);
        let norm = if cfg.clip > 0.0 {
            model.store.clip_grad_norm(cfg.clip)
        } else {
            model.store.grad_global_norm()
        };
        if !norm.is_finite() {
            stats.skipped += 1;
            ner_obs::warn(format!(
                "epoch {epoch}: non-finite gradient norm on sentence {i}; update skipped"
            ));
            model.store.zero_grad();
            continue;
        }
        stats.norm_sum += norm as f64;
        stats.applied += 1;
        stats.peak_nodes = stats.peak_nodes.max(tape.len());
        for (class, n) in tape.op_counts() {
            op_totals[class as usize] += n as u64;
        }
        opt.step(&mut model.store);
    }
    stats
}

/// Data-parallel epoch: minibatches of `pool.threads()` sentences, each
/// sentence's forward/backward on its own worker tape, gradients merged in
/// shard order and applied with a single clipped optimizer step per batch.
#[allow(clippy::too_many_arguments)]
fn run_epoch_parallel(
    model: &mut NerModel,
    train: &[EncodedSentence],
    order: &[usize],
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
    epoch: usize,
    pool: &ner_par::ThreadPool,
    rng: &mut impl Rng,
    op_totals: &mut [u64],
) -> EpochStats {
    let mut stats = EpochStats::default();
    for chunk in order.chunks(pool.threads()) {
        // One seed per batch; each shard derives an independent stream so
        // dropout masks don't depend on worker scheduling.
        let batch_seed: u64 = rng.gen();
        let model_ref: &NerModel = model;
        let results = pool.map(chunk.len(), |j| {
            let i = chunk[j];
            let sent = &train[i];
            if sent.is_empty() {
                return SentenceOutcome::Empty;
            }
            let mut shard_rng = StdRng::seed_from_u64(
                batch_seed.wrapping_add((j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            let mut tape = Tape::new();
            let loss = model_ref.loss(&mut tape, sent, &mut shard_rng);
            let loss_val = tape.value(loss).item() as f64;
            if !loss_val.is_finite() {
                return SentenceOutcome::NonFinite { index: i, loss: loss_val };
            }
            let mut grads = GradBuffer::new(model_ref.store.len());
            tape.backward_into(loss, &mut grads);
            let ops: Vec<(OpClass, u32)> = tape.op_counts().collect();
            let nodes = tape.len();
            drop(tape); // recycle node buffers into this worker's pool
            SentenceOutcome::Update {
                loss: loss_val,
                grads,
                nodes,
                ops,
                pool: ner_tensor::pool::take_stats(),
            }
        });

        // Merge in shard order — deterministic for a fixed thread count.
        let mut contributed = 0usize;
        for outcome in results {
            match outcome {
                SentenceOutcome::Empty => {}
                SentenceOutcome::NonFinite { index, loss } => {
                    stats.skipped += 1;
                    ner_obs::warn(format!(
                        "epoch {epoch}: non-finite loss ({loss}) on sentence {index}; update skipped"
                    ));
                }
                SentenceOutcome::Update { loss, grads, nodes, ops, pool } => {
                    stats.total_loss += loss;
                    stats.peak_nodes = stats.peak_nodes.max(nodes);
                    for (class, n) in ops {
                        op_totals[class as usize] += n as u64;
                    }
                    ner_obs::counter("pool.hits", pool.hits as f64);
                    ner_obs::counter("pool.misses", pool.misses as f64);
                    ner_obs::counter("pool.recycled", pool.recycled as f64);
                    grads.apply_to(&mut model.store);
                    contributed += 1;
                }
            }
        }
        if contributed == 0 {
            continue;
        }
        let norm = if cfg.clip > 0.0 {
            model.store.clip_grad_norm(cfg.clip)
        } else {
            model.store.grad_global_norm()
        };
        if !norm.is_finite() {
            stats.skipped += contributed;
            ner_obs::warn(format!(
                "epoch {epoch}: non-finite gradient norm on a {contributed}-sentence batch; update skipped"
            ));
            model.store.zero_grad();
            continue;
        }
        stats.norm_sum += norm as f64;
        stats.applied += 1;
        opt.step(&mut model.store);
    }
    stats
}

/// Where a bucket's dropout streams come from.
enum RngSrc<'a> {
    /// Each sentence's stream is `StdRng` seeded with
    /// `base + k·SEED_STRIDE` for its within-chunk index `k` — the same
    /// derivation [`run_epoch_parallel`] uses, so schedules agree.
    Seeded(u64),
    /// The shared epoch rng, passed straight through (the
    /// `threads == 1 && batch == 1` serial replay; at most one live
    /// sentence per bucket).
    Shared(&'a mut dyn RngCore),
}

/// What one worker produced for one sentence of its bucket.
enum BucketItem {
    /// Sentence was empty; nothing to do.
    Empty,
    /// No gradient contribution: the loss was non-finite, or (batched
    /// mode) a bucket-mate's was and the whole bucket was rolled back.
    NonFinite { index: usize, loss: f64, rolled_back: bool },
    /// A usable gradient contribution.
    Update { loss: f64, grads: GradBuffer },
}

/// One worker's result for one bucket.
struct BucketResult {
    /// Per-sentence items, in bucket (= schedule) order.
    items: Vec<BucketItem>,
    nodes: usize,
    ops: Vec<(OpClass, u32)>,
    pool: ner_tensor::pool::PoolStats,
}

/// Forward/backward for one bucket of sentences on one worker, through
/// either backend. `k0` is the within-chunk index of `ids[0]`.
fn run_bucket(
    model: &NerModel,
    train: &[EncodedSentence],
    ids: &[usize],
    k0: u64,
    batched: bool,
    src: RngSrc<'_>,
) -> BucketResult {
    // (within-chunk index, sentence index) of the non-empty sentences;
    // empties keep their slot in the seed derivation, as in the
    // historical parallel path.
    let live: Vec<(u64, usize)> = ids
        .iter()
        .enumerate()
        .filter(|&(_, &i)| !train[i].is_empty())
        .map(|(j, &i)| (k0 + j as u64, i))
        .collect();
    if live.is_empty() {
        return BucketResult {
            items: ids.iter().map(|_| BucketItem::Empty).collect(),
            nodes: 0,
            ops: Vec::new(),
            pool: ner_tensor::pool::take_stats(),
        };
    }
    let (mut owned, mut shared): (Vec<StdRng>, Option<&mut dyn RngCore>) = match src {
        RngSrc::Seeded(base) => (
            live.iter()
                .map(|&(k, _)| {
                    StdRng::seed_from_u64(base.wrapping_add(k.wrapping_mul(SEED_STRIDE)))
                })
                .collect(),
            None,
        ),
        RngSrc::Shared(r) => {
            debug_assert!(live.len() <= 1, "shared-rng replay is single-sentence");
            (Vec::new(), Some(r))
        }
    };

    let mut items = Vec::with_capacity(ids.len());
    let mut nodes = 0usize;
    let mut ops: Vec<(OpClass, u32)> = Vec::new();

    if batched {
        let encs: Vec<&EncodedSentence> = live.iter().map(|&(_, i)| &train[i]).collect();
        let mut streams: Vec<&mut dyn RngCore> = match &mut shared {
            Some(r) => vec![&mut **r],
            None => owned.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
        };
        let mut tape = Tape::new();
        let (total, losses) = model.loss_batch(&mut tape, &encs, &mut streams);
        let total_val = tape.value(total).item() as f64;
        if !total_val.is_finite() || losses.iter().any(|l| !l.is_finite()) {
            // Roll back the whole bucket: a segmented backward from a
            // non-finite loss would poison every segment's buffer, so no
            // sentence in this bucket contributes.
            let mut li = 0usize;
            for &i in ids {
                if train[i].is_empty() {
                    items.push(BucketItem::Empty);
                } else {
                    let loss = losses[li];
                    items.push(BucketItem::NonFinite {
                        index: i,
                        loss,
                        rolled_back: loss.is_finite(),
                    });
                    li += 1;
                }
            }
        } else {
            let mut buffers: Vec<GradBuffer> =
                (0..encs.len()).map(|_| GradBuffer::new(model.store.len())).collect();
            tape.backward_into_segmented(total, &mut buffers);
            nodes = tape.len();
            ops = tape.op_counts().collect();
            drop(tape);
            let mut rest = losses.into_iter().zip(buffers);
            for &i in ids {
                if train[i].is_empty() {
                    items.push(BucketItem::Empty);
                } else {
                    let (loss, grads) = rest.next().expect("one buffer per live sentence");
                    items.push(BucketItem::Update { loss, grads });
                }
            }
        }
    } else {
        let mut li = 0usize;
        for &i in ids {
            if train[i].is_empty() {
                items.push(BucketItem::Empty);
                continue;
            }
            let mut tape = Tape::new();
            let loss = match &mut shared {
                Some(r) => model.loss(&mut tape, &train[i], r),
                None => model.loss(&mut tape, &train[i], &mut owned[li]),
            };
            li += 1;
            let loss_val = tape.value(loss).item() as f64;
            if !loss_val.is_finite() {
                items.push(BucketItem::NonFinite { index: i, loss: loss_val, rolled_back: false });
                continue;
            }
            let mut grads = GradBuffer::new(model.store.len());
            tape.backward_into(loss, &mut grads);
            nodes = nodes.max(tape.len());
            ops.extend(tape.op_counts());
            items.push(BucketItem::Update { loss: loss_val, grads });
        }
    }
    BucketResult { items, nodes, ops, pool: ner_tensor::pool::take_stats() }
}

/// The unified bucketed epoch: chunks of `threads × batch` sentences, one
/// bucket of `batch` per worker, gradients merged in sentence order and
/// applied with a single clipped optimizer step per chunk. Runs both
/// backends so the per-sentence oracle can be compared against the batched
/// path under the *same* schedule.
#[allow(clippy::too_many_arguments)]
fn run_epoch_bucketed(
    model: &mut NerModel,
    train: &[EncodedSentence],
    order: &[usize],
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
    epoch: usize,
    pool: &ner_par::ThreadPool,
    rng: &mut impl Rng,
    op_totals: &mut [u64],
) -> EpochStats {
    let batched = cfg.trainer == TrainerKind::Batched;
    let workers = pool.threads().max(1);
    let bucket = cfg.batch.max(1);
    // One worker, one sentence per bucket: replay the historical serial
    // schedule — dropout draws come straight from the shared epoch rng
    // and no per-chunk seed is drawn.
    let serial_replay = workers == 1 && bucket == 1;
    let mut stats = EpochStats::default();
    for chunk in order.chunks(workers * bucket) {
        let results: Vec<BucketResult> = if serial_replay {
            vec![run_bucket(model, train, chunk, 0, batched, RngSrc::Shared(rng))]
        } else {
            // One seed per chunk; each sentence derives an independent
            // stream from its position, so masks don't depend on worker
            // scheduling or the backend.
            let batch_seed: u64 = rng.gen();
            let model_ref: &NerModel = model;
            let buckets: Vec<(usize, &[usize])> =
                chunk.chunks(bucket).enumerate().map(|(w, ids)| (w * bucket, ids)).collect();
            pool.map(buckets.len(), |w| {
                let (k0, ids) = buckets[w];
                run_bucket(model_ref, train, ids, k0 as u64, batched, RngSrc::Seeded(batch_seed))
            })
        };

        // Merge in sentence order — deterministic for a fixed thread
        // count and bucket size, and identical between backends.
        let mut contributed = 0usize;
        for res in results {
            stats.peak_nodes = stats.peak_nodes.max(res.nodes);
            for (class, n) in res.ops {
                op_totals[class as usize] += n as u64;
            }
            let p = res.pool;
            if p.hits + p.misses + p.recycled > 0 {
                ner_obs::counter("pool.hits", p.hits as f64);
                ner_obs::counter("pool.misses", p.misses as f64);
                ner_obs::counter("pool.recycled", p.recycled as f64);
            }
            for item in res.items {
                match item {
                    BucketItem::Empty => {}
                    BucketItem::NonFinite { index, loss, rolled_back } => {
                        stats.skipped += 1;
                        if rolled_back {
                            ner_obs::warn(format!(
                                "epoch {epoch}: sentence {index} rolled back with its bucket (non-finite bucket loss); update skipped"
                            ));
                        } else {
                            ner_obs::warn(format!(
                                "epoch {epoch}: non-finite loss ({loss}) on sentence {index}; update skipped"
                            ));
                        }
                    }
                    BucketItem::Update { loss, grads } => {
                        stats.total_loss += loss;
                        grads.apply_to(&mut model.store);
                        contributed += 1;
                    }
                }
            }
        }
        if contributed == 0 {
            continue;
        }
        let norm = if cfg.clip > 0.0 {
            model.store.clip_grad_norm(cfg.clip)
        } else {
            model.store.grad_global_norm()
        };
        if !norm.is_finite() {
            stats.skipped += contributed;
            ner_obs::warn(format!(
                "epoch {epoch}: non-finite gradient norm on a {contributed}-sentence chunk; update skipped"
            ));
            model.store.zero_grad();
            continue;
        }
        stats.norm_sum += norm as f64;
        stats.applied += 1;
        opt.step(&mut model.store);
    }
    stats
}

fn make_optimizer(cfg: &TrainConfig) -> Box<dyn Optimizer> {
    match cfg.optimizer {
        OptimizerKind::Sgd => Box::new(Sgd::new(cfg.lr)),
        OptimizerKind::SgdMomentum => Box::new(Sgd::new(cfg.lr).with_momentum(0.9)),
        OptimizerKind::Adam => Box::new(Adam::new(cfg.lr)),
    }
}

fn schedule(cfg: &TrainConfig) -> LrSchedule {
    match cfg.schedule {
        LrScheduleKind::Constant => LrSchedule::Constant,
        LrScheduleKind::InverseTime { decay } => LrSchedule::InverseTime { decay },
    }
}

fn effective_lr(cfg: &TrainConfig, epoch: usize) -> f32 {
    match cfg.schedule {
        LrScheduleKind::Constant => cfg.lr,
        LrScheduleKind::InverseTime { decay } => cfg.lr / (1.0 + decay * epoch as f32),
    }
}

/// Trains `model` on `train`, optionally early-stopping on `dev` micro-F1.
pub fn train(
    model: &mut NerModel,
    train: &[EncodedSentence],
    dev: Option<&[EncodedSentence]>,
    cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> TrainReport {
    assert!(!train.is_empty(), "training set is empty");
    let _train_span = ner_obs::span("train");
    ner_obs::gauge("params.scalars", model.store.num_scalars() as f64);
    let pool = ner_par::global();
    ner_obs::gauge("par.threads", pool.threads() as f64);
    // Named gauges so run logs and `report` identify the gradient backend.
    let backend = match cfg.trainer {
        TrainerKind::Batched => "batched",
        TrainerKind::PerSentence => "per-sentence",
    };
    ner_obs::gauge("train.batched", (cfg.trainer == TrainerKind::Batched) as u8 as f64);
    ner_obs::gauge("train.batch", cfg.batch.max(1) as f64);
    ner_obs::info(format!("trainer backend {backend} (batch {})", cfg.batch.max(1)));
    let epoch_tokens: usize = train.iter().map(|s| s.len()).sum();
    let mut opt = make_optimizer(cfg);
    let sched = schedule(cfg);
    let mut order: Vec<usize> = (0..train.len()).collect();

    let mut records = Vec::with_capacity(cfg.epochs);
    let mut best_f1 = f64::NEG_INFINITY;
    let mut best_epoch = 0usize;
    let mut best_params = None;
    let mut stale = 0usize;
    let mut stop_reason = "completed".to_string();
    let mut op_totals = [0u64; ner_tensor::OpClass::ALL.len()];

    for epoch in 0..cfg.epochs {
        let epoch_span = ner_obs::span("epoch");
        let epoch_start = std::time::Instant::now();
        sched.apply(opt.as_mut(), cfg.lr, epoch);
        if cfg.shuffle {
            order.shuffle(rng);
        }
        // The historical per-sentence runners are kept verbatim for the
        // oracle configuration; everything else goes through the unified
        // bucketed runner (which replays them bit for bit at batch == 1).
        let historical = cfg.trainer == TrainerKind::PerSentence && cfg.batch <= 1;
        let stats = if !historical {
            run_epoch_bucketed(
                model,
                train,
                &order,
                opt.as_mut(),
                cfg,
                epoch,
                &pool,
                rng,
                &mut op_totals,
            )
        } else if pool.threads() > 1 {
            run_epoch_parallel(
                model,
                train,
                &order,
                opt.as_mut(),
                cfg,
                epoch,
                &pool,
                rng,
                &mut op_totals,
            )
        } else {
            run_epoch_serial(model, train, &order, opt.as_mut(), cfg, epoch, rng, &mut op_totals)
        };
        let EpochStats { total_loss, norm_sum, applied, skipped, peak_nodes } = stats;
        let train_loss = total_loss / train.len() as f64;

        // Export the coordinator thread's buffer-pool counters (workers
        // export their own deltas per update in the parallel path).
        let pstats = ner_tensor::pool::take_stats();
        if pstats.hits + pstats.misses + pstats.recycled > 0 {
            ner_obs::counter("pool.hits", pstats.hits as f64);
            ner_obs::counter("pool.misses", pstats.misses as f64);
            ner_obs::counter("pool.recycled", pstats.recycled as f64);
        }

        let dev_f1 = dev.map(|d| {
            let _eval_span = ner_obs::span("eval");
            evaluate_model(model, d).micro.f1
        });
        drop(epoch_span);
        let wall = epoch_start.elapsed();
        let tokens_per_s =
            if wall.as_secs_f64() > 0.0 { epoch_tokens as f64 / wall.as_secs_f64() } else { 0.0 };
        let record = EpochRecord {
            epoch,
            train_loss,
            dev_f1,
            grad_norm: if applied > 0 { norm_sum / applied as f64 } else { 0.0 },
            lr: effective_lr(cfg, epoch),
            wall_ms: wall.as_millis() as u64,
            tokens_per_s,
            peak_tape_nodes: peak_nodes,
            skipped_updates: skipped,
        };
        ner_obs::gauge_max("tape.peak_nodes", peak_nodes as f64);
        ner_obs::gauge_max("train.tokens_per_s", tokens_per_s);
        // Always registered (even at 0) so run logs make "no updates were
        // skipped" explicit rather than ambiguous.
        ner_obs::counter("train.skipped_updates", skipped as f64);
        ner_obs::emit_record("epoch", &record);
        ner_obs::info(format!(
            "epoch {:>2}  loss {:>9.4}  |grad| {:>7.3}  lr {:.4}{}  [{} ms]",
            record.epoch,
            record.train_loss,
            record.grad_norm,
            record.lr,
            record.dev_f1.map_or(String::new(), |f| format!("  dev-F1 {:.2}%", 100.0 * f)),
            record.wall_ms,
        ));
        records.push(record);

        if let Some(f1) = dev_f1 {
            if f1 > best_f1 {
                best_f1 = f1;
                best_epoch = epoch;
                best_params = Some(model.store.clone());
                stale = 0;
            } else {
                stale += 1;
                if cfg.patience.is_some_and(|p| stale >= p) {
                    stop_reason = format!(
                        "early-stop: dev F1 stale for {stale} epochs (best {best_f1:.4} at epoch {best_epoch})"
                    );
                    break;
                }
            }
        } else {
            best_epoch = epoch;
        }
    }

    for (class, &n) in ner_tensor::OpClass::ALL.iter().zip(&op_totals) {
        if n > 0 {
            ner_obs::counter(&format!("tape.ops.{}", class.name()), n as f64);
        }
    }
    if stop_reason != "completed" {
        ner_obs::info(stop_reason.clone());
    }
    if let Some(params) = best_params {
        model.store = params;
    }
    TrainReport {
        epochs: records,
        best_epoch,
        best_dev_f1: (best_f1 > f64::NEG_INFINITY).then_some(best_f1),
        stop_reason,
    }
}

/// Predicts spans for every sentence, fanning out over the global
/// `ner-par` pool. Prediction is read-only, so the result is identical at
/// any thread count.
pub fn predict_all(model: &NerModel, data: &[EncodedSentence]) -> Vec<Vec<EntitySpan>> {
    let pool = ner_par::global();
    if pool.threads() <= 1 || data.len() < 2 {
        return data.iter().map(|e| model.predict_spans(e)).collect();
    }
    pool.map(data.len(), |i| model.predict_spans(&data[i]))
}

/// Evaluates the model on encoded data with exact/relaxed span metrics.
pub fn evaluate_model(model: &NerModel, data: &[EncodedSentence]) -> EvalResult {
    let golds: Vec<Vec<EntitySpan>> = data.iter().map(|e| e.gold.clone()).collect();
    let preds = predict_all(model, data);
    evaluate(&golds, &preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
    use crate::repr::SentenceEncoder;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> NerConfig {
        NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.1,
            ..NerConfig::default()
        }
    }

    #[test]
    fn bilstm_crf_learns_the_synthetic_corpus() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let train_ds = gen.dataset(&mut rng, 150);
        let test_ds = gen.dataset(&mut rng, 50);
        let enc = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let train_enc = enc.encode_dataset(&train_ds, None);
        let test_enc = enc.encode_dataset(&test_ds, None);

        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let cfg = TrainConfig { epochs: 6, ..Default::default() };
        let report = train(&mut model, &train_enc, None, &cfg, &mut rng);
        assert!(
            report.epochs.last().unwrap().train_loss < report.epochs[0].train_loss,
            "loss should fall"
        );
        let result = evaluate_model(&model, &test_enc);
        assert!(
            result.micro.f1 > 0.6,
            "BiLSTM-CRF should reach reasonable F1 on synthetic news, got {}",
            result.micro.f1
        );
    }

    #[test]
    fn early_stopping_restores_best_parameters() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let train_ds = gen.dataset(&mut rng, 60);
        let dev_ds = gen.dataset(&mut rng, 30);
        let enc = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let train_enc = enc.encode_dataset(&train_ds, None);
        let dev_enc = enc.encode_dataset(&dev_ds, None);

        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let cfg = TrainConfig { epochs: 5, patience: Some(2), ..Default::default() };
        let report = train(&mut model, &train_enc, Some(&dev_enc), &cfg, &mut rng);
        let best = report.best_dev_f1.unwrap();
        // The restored model must reproduce the recorded best dev F1.
        let now = evaluate_model(&model, &dev_enc).micro.f1;
        assert!((now - best).abs() < 1e-9, "restored {now} vs recorded best {best}");
    }

    #[test]
    fn nan_loss_skips_every_update_and_exports_the_counter() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let ds = gen.dataset(&mut rng, 8);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let train_enc = enc.encode_dataset(&ds, None);
        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        // Poison every parameter: each per-sentence loss is NaN, so the
        // non-finite guard must skip every optimizer update.
        let ids: Vec<_> = model.store.ids().collect();
        for id in ids {
            model.store.value_mut(id).data_mut().fill(f32::NAN);
        }
        let before = ner_obs::counter_value("train.skipped_updates").unwrap_or(0.0);
        let cfg = TrainConfig { epochs: 2, patience: None, ..Default::default() };
        let report = train(&mut model, &train_enc, None, &cfg, &mut rng);
        for e in &report.epochs {
            assert_eq!(e.skipped_updates, train_enc.len(), "epoch {}", e.epoch);
        }
        let after = ner_obs::counter_value("train.skipped_updates").unwrap_or(0.0);
        let expected = (cfg.epochs * train_enc.len()) as f64;
        assert!(
            after - before >= expected,
            "counter should grow by at least {expected} (before {before}, after {after})"
        );
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_set_rejected() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let ds = gen.dataset(&mut rng, 5);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        train(&mut model, &[], None, &TrainConfig::default(), &mut rng);
    }
}
