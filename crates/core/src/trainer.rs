//! The training loop: per-sentence SGD with gradient clipping, optional
//! learning-rate schedules, dev-set early stopping with best-model
//! restoration, and evaluation helpers.

use crate::metrics::{evaluate, EvalResult};
use crate::model::NerModel;
use crate::repr::EncodedSentence;
use ner_tensor::optim::{Adam, LrSchedule, Optimizer, Sgd};
use ner_tensor::Tape;
use ner_text::EntitySpan;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;

/// Optimizer selection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// SGD with classical momentum 0.9.
    SgdMomentum,
    /// Adam (β₁=0.9, β₂=0.999).
    Adam,
}

/// Training-loop configuration.
#[derive(Clone, Debug, Serialize)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Learning-rate schedule applied per epoch.
    pub schedule: LrScheduleKind,
    /// Global-norm gradient clip (0 disables).
    pub clip: f32,
    /// Early-stopping patience in epochs on dev F1 (`None` disables; the
    /// best-dev parameters are restored either way when a dev set is given).
    pub patience: Option<usize>,
    /// Shuffle the training order each epoch.
    pub shuffle: bool,
}

/// Serializable schedule selector (mirrors [`LrSchedule`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum LrScheduleKind {
    /// Constant rate.
    Constant,
    /// `lr / (1 + decay·epoch)`.
    InverseTime {
        /// Per-epoch decay.
        decay: f32,
    },
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            lr: 0.01,
            optimizer: OptimizerKind::Adam,
            schedule: LrScheduleKind::InverseTime { decay: 0.05 },
            clip: 5.0,
            patience: Some(4),
            shuffle: true,
        }
    }
}

/// Per-epoch training record, also emitted as a structured `"epoch"` event
/// through `ner-obs` when a sink is installed.
#[derive(Clone, Debug, Serialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss per sentence.
    pub train_loss: f64,
    /// Dev micro-F1 (when a dev set was supplied).
    pub dev_f1: Option<f64>,
    /// Mean pre-clip global gradient norm over applied updates.
    pub grad_norm: f64,
    /// Effective learning rate this epoch (after the schedule).
    pub lr: f32,
    /// Wall-clock milliseconds spent on the epoch (including dev eval).
    pub wall_ms: u64,
    /// Largest autodiff tape built during the epoch, in nodes.
    pub peak_tape_nodes: usize,
    /// Updates skipped because the loss or gradient norm was non-finite.
    pub skipped_updates: usize,
}

/// Outcome of a training run.
#[derive(Clone, Debug, Serialize)]
pub struct TrainReport {
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// Epoch whose parameters the model ended up with.
    pub best_epoch: usize,
    /// Best dev micro-F1 (when a dev set was supplied).
    pub best_dev_f1: Option<f64>,
    /// Why training ended: `"completed"` or an early-stop description.
    pub stop_reason: String,
}

fn make_optimizer(cfg: &TrainConfig) -> Box<dyn Optimizer> {
    match cfg.optimizer {
        OptimizerKind::Sgd => Box::new(Sgd::new(cfg.lr)),
        OptimizerKind::SgdMomentum => Box::new(Sgd::new(cfg.lr).with_momentum(0.9)),
        OptimizerKind::Adam => Box::new(Adam::new(cfg.lr)),
    }
}

fn schedule(cfg: &TrainConfig) -> LrSchedule {
    match cfg.schedule {
        LrScheduleKind::Constant => LrSchedule::Constant,
        LrScheduleKind::InverseTime { decay } => LrSchedule::InverseTime { decay },
    }
}

fn effective_lr(cfg: &TrainConfig, epoch: usize) -> f32 {
    match cfg.schedule {
        LrScheduleKind::Constant => cfg.lr,
        LrScheduleKind::InverseTime { decay } => cfg.lr / (1.0 + decay * epoch as f32),
    }
}

/// Trains `model` on `train`, optionally early-stopping on `dev` micro-F1.
pub fn train(
    model: &mut NerModel,
    train: &[EncodedSentence],
    dev: Option<&[EncodedSentence]>,
    cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> TrainReport {
    assert!(!train.is_empty(), "training set is empty");
    let _train_span = ner_obs::span("train");
    ner_obs::gauge("params.scalars", model.store.num_scalars() as f64);
    let mut opt = make_optimizer(cfg);
    let sched = schedule(cfg);
    let mut order: Vec<usize> = (0..train.len()).collect();

    let mut records = Vec::with_capacity(cfg.epochs);
    let mut best_f1 = f64::NEG_INFINITY;
    let mut best_epoch = 0usize;
    let mut best_params = None;
    let mut stale = 0usize;
    let mut stop_reason = "completed".to_string();
    let mut op_totals = [0u64; ner_tensor::OpClass::ALL.len()];

    for epoch in 0..cfg.epochs {
        let epoch_span = ner_obs::span("epoch");
        let epoch_start = std::time::Instant::now();
        sched.apply(opt.as_mut(), cfg.lr, epoch);
        if cfg.shuffle {
            order.shuffle(rng);
        }
        let mut total = 0.0f64;
        let mut norm_sum = 0.0f64;
        let mut applied = 0usize;
        let mut skipped = 0usize;
        let mut peak_nodes = 0usize;
        for &i in &order {
            let sent = &train[i];
            if sent.is_empty() {
                continue;
            }
            let mut tape = Tape::new();
            let loss = model.loss(&mut tape, sent, rng);
            let loss_val = tape.value(loss).item() as f64;
            if !loss_val.is_finite() {
                skipped += 1;
                ner_obs::warn(format!(
                    "epoch {epoch}: non-finite loss ({loss_val}) on sentence {i}; update skipped"
                ));
                continue;
            }
            total += loss_val;
            tape.backward(loss, &mut model.store);
            let norm = if cfg.clip > 0.0 {
                model.store.clip_grad_norm(cfg.clip)
            } else {
                model.store.grad_global_norm()
            };
            if !norm.is_finite() {
                skipped += 1;
                ner_obs::warn(format!(
                    "epoch {epoch}: non-finite gradient norm on sentence {i}; update skipped"
                ));
                model.store.zero_grad();
                continue;
            }
            norm_sum += norm as f64;
            applied += 1;
            peak_nodes = peak_nodes.max(tape.len());
            for (class, n) in tape.op_counts() {
                op_totals[class as usize] += n as u64;
            }
            opt.step(&mut model.store);
        }
        let train_loss = total / train.len() as f64;

        let dev_f1 = dev.map(|d| {
            let _eval_span = ner_obs::span("eval");
            evaluate_model(model, d).micro.f1
        });
        drop(epoch_span);
        let record = EpochRecord {
            epoch,
            train_loss,
            dev_f1,
            grad_norm: if applied > 0 { norm_sum / applied as f64 } else { 0.0 },
            lr: effective_lr(cfg, epoch),
            wall_ms: epoch_start.elapsed().as_millis() as u64,
            peak_tape_nodes: peak_nodes,
            skipped_updates: skipped,
        };
        ner_obs::gauge_max("tape.peak_nodes", peak_nodes as f64);
        ner_obs::emit_record("epoch", &record);
        ner_obs::info(format!(
            "epoch {:>2}  loss {:>9.4}  |grad| {:>7.3}  lr {:.4}{}  [{} ms]",
            record.epoch,
            record.train_loss,
            record.grad_norm,
            record.lr,
            record.dev_f1.map_or(String::new(), |f| format!("  dev-F1 {:.2}%", 100.0 * f)),
            record.wall_ms,
        ));
        records.push(record);

        if let Some(f1) = dev_f1 {
            if f1 > best_f1 {
                best_f1 = f1;
                best_epoch = epoch;
                best_params = Some(model.store.clone());
                stale = 0;
            } else {
                stale += 1;
                if cfg.patience.is_some_and(|p| stale >= p) {
                    stop_reason = format!(
                        "early-stop: dev F1 stale for {stale} epochs (best {best_f1:.4} at epoch {best_epoch})"
                    );
                    break;
                }
            }
        } else {
            best_epoch = epoch;
        }
    }

    for (class, &n) in ner_tensor::OpClass::ALL.iter().zip(&op_totals) {
        if n > 0 {
            ner_obs::counter(&format!("tape.ops.{}", class.name()), n as f64);
        }
    }
    if stop_reason != "completed" {
        ner_obs::info(stop_reason.clone());
    }
    if let Some(params) = best_params {
        model.store = params;
    }
    TrainReport {
        epochs: records,
        best_epoch,
        best_dev_f1: (best_f1 > f64::NEG_INFINITY).then_some(best_f1),
        stop_reason,
    }
}

/// Predicts spans for every sentence.
pub fn predict_all(model: &NerModel, data: &[EncodedSentence]) -> Vec<Vec<EntitySpan>> {
    data.iter().map(|e| model.predict_spans(e)).collect()
}

/// Evaluates the model on encoded data with exact/relaxed span metrics.
pub fn evaluate_model(model: &NerModel, data: &[EncodedSentence]) -> EvalResult {
    let golds: Vec<Vec<EntitySpan>> = data.iter().map(|e| e.gold.clone()).collect();
    let preds = predict_all(model, data);
    evaluate(&golds, &preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
    use crate::repr::SentenceEncoder;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> NerConfig {
        NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.1,
            ..NerConfig::default()
        }
    }

    #[test]
    fn bilstm_crf_learns_the_synthetic_corpus() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let train_ds = gen.dataset(&mut rng, 150);
        let test_ds = gen.dataset(&mut rng, 50);
        let enc = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let train_enc = enc.encode_dataset(&train_ds, None);
        let test_enc = enc.encode_dataset(&test_ds, None);

        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let cfg = TrainConfig { epochs: 6, ..Default::default() };
        let report = train(&mut model, &train_enc, None, &cfg, &mut rng);
        assert!(
            report.epochs.last().unwrap().train_loss < report.epochs[0].train_loss,
            "loss should fall"
        );
        let result = evaluate_model(&model, &test_enc);
        assert!(
            result.micro.f1 > 0.6,
            "BiLSTM-CRF should reach reasonable F1 on synthetic news, got {}",
            result.micro.f1
        );
    }

    #[test]
    fn early_stopping_restores_best_parameters() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let train_ds = gen.dataset(&mut rng, 60);
        let dev_ds = gen.dataset(&mut rng, 30);
        let enc = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let train_enc = enc.encode_dataset(&train_ds, None);
        let dev_enc = enc.encode_dataset(&dev_ds, None);

        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let cfg = TrainConfig { epochs: 5, patience: Some(2), ..Default::default() };
        let report = train(&mut model, &train_enc, Some(&dev_enc), &cfg, &mut rng);
        let best = report.best_dev_f1.unwrap();
        // The restored model must reproduce the recorded best dev F1.
        let now = evaluate_model(&model, &dev_enc).micro.f1;
        assert!((now - best).abs() < 1e-9, "restored {now} vs recorded best {best}");
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_set_rejected() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let ds = gen.dataset(&mut rng, 5);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        train(&mut model, &[], None, &TrainConfig::default(), &mut rng);
    }
}
