//! Pipeline persistence: a [`Checkpoint`] captures everything needed to
//! rebuild a trained [`NerPipeline`] — configuration, data encoder
//! (vocabularies, tag set, feature switches, gazetteer) and trained
//! parameters — as a single JSON document.

use crate::config::{NerConfig, WordRepr};
use crate::inference::NerPipeline;
use crate::model::NerModel;
use crate::repr::SentenceEncoder;
use ner_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of a trained pipeline.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    /// The model architecture.
    pub config: NerConfig,
    /// The data encoder (vocabularies, tag set, features, gazetteer).
    pub encoder: SentenceEncoder,
    /// Trained parameters, addressed by name.
    pub params: ParamStore,
}

/// Errors raised when restoring a checkpoint.
#[derive(Debug)]
pub enum RestoreError {
    /// The JSON did not parse as a checkpoint.
    Parse(String),
    /// The checkpoint's parameters do not fit the declared architecture.
    ParameterMismatch {
        /// How many parameters were matched by name and shape.
        matched: usize,
        /// How many the freshly built model expected.
        expected: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Parse(e) => write!(f, "checkpoint parse error: {e}"),
            RestoreError::ParameterMismatch { matched, expected } => {
                write!(f, "checkpoint parameters do not match architecture: {matched}/{expected} restored")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl Checkpoint {
    /// Snapshots a trained pipeline.
    pub fn capture(pipeline: &NerPipeline) -> Self {
        Checkpoint {
            config: pipeline.model.cfg.clone(),
            encoder: pipeline.encoder.clone(),
            params: pipeline.model.store.clone(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization cannot fail")
    }

    /// Parses a checkpoint from JSON. Parse failures carry a position hint
    /// (byte offset plus line/column) pointing at the offending input.
    pub fn from_json(json: &str) -> Result<Self, RestoreError> {
        serde_json::from_str(json).map_err(|e| {
            RestoreError::Parse(format!("{e}, {}", position_hint(json, &e.to_string())))
        })
    }

    /// Rebuilds the runnable pipeline.
    ///
    /// The model skeleton is constructed from the stored config (with a
    /// placeholder word table when the config declares pretrained
    /// embeddings — the checkpointed values overwrite it), then every
    /// parameter is restored by name.
    pub fn restore(self) -> Result<NerPipeline, RestoreError> {
        let mut cfg = self.config.clone();
        // A pretrained-word config normally demands the embedding file at
        // construction; the checkpoint already carries the trained table,
        // so build with a same-shaped random table instead.
        let frozen_words = if let WordRepr::Pretrained { fine_tune } = cfg.word {
            let table = self
                .params
                .find("input.word_emb")
                .map(|id| self.params.value(id).cols())
                .ok_or(RestoreError::ParameterMismatch { matched: 0, expected: 1 })?;
            cfg.word = WordRepr::Random { dim: table };
            !fine_tune
        } else {
            false
        };

        // Construction RNG is irrelevant: every weight is overwritten.
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = NerModel::new(cfg, &self.encoder, None, &mut rng);
        model.cfg = self.config;
        let expected = model.store.len();
        let matched = model.store.load_matching(&self.params);
        if matched != expected {
            return Err(RestoreError::ParameterMismatch { matched, expected });
        }
        if frozen_words {
            model.store.freeze_prefix("input.word_emb", true);
        }
        Ok(NerPipeline::new(self.encoder, model))
    }

    /// Writes the checkpoint to a file, atomically.
    ///
    /// The JSON is written to a sibling temp file and renamed into place,
    /// so a crash mid-write can never leave a truncated checkpoint at
    /// `path` — a pre-existing file stays intact until the new one is
    /// complete. This matters once a server hot-reloads from disk: the
    /// reload either sees the old complete checkpoint or the new one.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let tmp = Self::staging_path(path);
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            // Leave no orphaned temp file behind a failed rename.
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// The sibling temp path `save` stages into before renaming. Includes
    /// the pid so concurrent writers never clobber each other's staging
    /// file (the final rename still makes the last writer win atomically).
    fn staging_path(path: &std::path::Path) -> std::path::PathBuf {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".tmp.{}", std::process::id()));
        path.with_file_name(name)
    }

    /// Reads a checkpoint from a file. Failures name the offending path;
    /// parse failures additionally carry the position hint of
    /// [`Checkpoint::from_json`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, RestoreError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| RestoreError::Parse(format!("cannot read {}: {e}", path.display())))?;
        Self::from_json(&text).map_err(|e| match e {
            RestoreError::Parse(msg) => RestoreError::Parse(format!("{}: {msg}", path.display())),
            other => other,
        })
    }
}

/// Renders "around byte N (line L, column C)" for a parse error, using the
/// byte offset embedded in the parser's message when present and the end of
/// the input otherwise (the truncated-file case).
fn position_hint(json: &str, msg: &str) -> String {
    let offset = msg
        .rsplit("at byte ")
        .next()
        .and_then(|t| t.parse::<usize>().ok())
        .unwrap_or(json.len())
        .min(json.len());
    let prefix = &json.as_bytes()[..offset];
    let line = prefix.iter().filter(|&&b| b == b'\n').count() + 1;
    let column = offset - prefix.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1) + 1;
    format!("around byte {offset} (line {line}, column {column})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CharRepr, DecoderKind, EncoderKind};
    use crate::prelude::*;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_pipeline(decoder: DecoderKind) -> (NerPipeline, Dataset) {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let train_ds = gen.dataset(&mut rng, 60);
        let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let cfg = NerConfig {
            scheme: TagScheme::Bio,
            word: ner_core_wordrepr(),
            char_repr: CharRepr::Cnn { dim: 8, filters: 8 },
            encoder: EncoderKind::Lstm { hidden: 12, bidirectional: true, layers: 1 },
            decoder,
            dropout: 0.1,
            ..NerConfig::default()
        };
        let mut model = NerModel::new(cfg, &encoder, None, &mut rng);
        let train_enc = encoder.encode_dataset(&train_ds, None);
        crate::trainer::train(
            &mut model,
            &train_enc,
            None,
            &TrainConfig { epochs: 2, patience: None, ..Default::default() },
            &mut rng,
        );
        (NerPipeline::new(encoder, model), train_ds)
    }

    fn ner_core_wordrepr() -> crate::config::WordRepr {
        crate::config::WordRepr::Random { dim: 16 }
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (pipeline, ds) = trained_pipeline(DecoderKind::Crf);
        let json = Checkpoint::capture(&pipeline).to_json();
        let restored = Checkpoint::from_json(&json).unwrap().restore().unwrap();
        for s in ds.sentences.iter().take(10) {
            assert_eq!(
                pipeline.annotate(s).entities,
                restored.annotate(s).entities,
                "restored pipeline must predict identically"
            );
        }
    }

    #[test]
    fn round_trip_works_for_every_decoder() {
        for decoder in [
            DecoderKind::Softmax,
            DecoderKind::SemiCrf { max_len: 3 },
            DecoderKind::Rnn { tag_dim: 4, hidden: 8 },
            DecoderKind::Pointer { att: 8, max_len: 3 },
        ] {
            let (pipeline, ds) = trained_pipeline(decoder.clone());
            let restored = Checkpoint::capture(&pipeline).to_json();
            let restored = Checkpoint::from_json(&restored).unwrap().restore().unwrap();
            let s = &ds.sentences[0];
            assert_eq!(pipeline.annotate(s).entities, restored.annotate(s).entities, "{decoder:?}");
        }
    }

    #[test]
    fn corrupted_json_is_rejected() {
        let Err(err) = Checkpoint::from_json("{not json") else {
            panic!("corrupted JSON must not parse");
        };
        assert!(matches!(err, RestoreError::Parse(_)));
    }

    #[test]
    fn truncated_file_error_names_path_and_position() {
        let (pipeline, _) = trained_pipeline(DecoderKind::Softmax);
        let json = Checkpoint::capture(&pipeline).to_json();
        let path = unique_temp_path("truncated");
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();
        let Err(err) = Checkpoint::load(&path) else {
            panic!("truncated checkpoint must not parse");
        };
        let msg = err.to_string();
        assert!(
            msg.contains(path.to_str().unwrap()),
            "error should name the offending file, got: {msg}"
        );
        assert!(
            msg.contains("around byte") && msg.contains("line"),
            "error should carry a parse-position hint, got: {msg}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_error_names_path() {
        let path = unique_temp_path("does-not-exist");
        let _ = std::fs::remove_file(&path);
        let Err(err) = Checkpoint::load(&path) else {
            panic!("missing checkpoint must not load");
        };
        assert!(err.to_string().contains(path.to_str().unwrap()), "got: {err}");
    }

    #[test]
    fn architecture_mismatch_is_detected() {
        let (pipeline, _) = trained_pipeline(DecoderKind::Crf);
        let mut ckpt = Checkpoint::capture(&pipeline);
        // Declare a different encoder width: the stored params no longer fit.
        ckpt.config.encoder = EncoderKind::Lstm { hidden: 99, bidirectional: true, layers: 1 };
        let Err(err) = ckpt.restore() else {
            panic!("mismatched architecture must not restore");
        };
        assert!(matches!(err, RestoreError::ParameterMismatch { .. }), "got {err}");
    }

    /// A per-process temp path: concurrent `cargo test` invocations must
    /// not race on a shared fixed file name.
    fn unique_temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("neural-ner-test-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn file_round_trip() {
        let (pipeline, ds) = trained_pipeline(DecoderKind::Crf);
        let path = unique_temp_path("ckpt");
        Checkpoint::capture(&pipeline).save(&path).unwrap();
        let restored = Checkpoint::load(&path).unwrap().restore().unwrap();
        let s = &ds.sentences[0];
        assert_eq!(pipeline.annotate(s).entities, restored.annotate(s).entities);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn save_is_atomic_and_cleans_its_staging_file() {
        let (pipeline, _) = trained_pipeline(DecoderKind::Softmax);
        let ckpt = Checkpoint::capture(&pipeline);
        let path = unique_temp_path("atomic");
        let staging = Checkpoint::staging_path(&path);

        // A crash mid-write means the staging file holds a truncated JSON
        // while the real path still holds the previous complete checkpoint.
        ckpt.save(&path).unwrap();
        let complete = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&staging, &complete[..complete.len() / 2]).unwrap();
        let reread = std::fs::read_to_string(&path).unwrap();
        assert_eq!(reread, complete, "a half-written staging file must not touch the target");
        assert!(Checkpoint::load(&path).is_ok(), "target still parses after the simulated crash");

        // The next successful save replaces both, leaving no staging file.
        ckpt.save(&path).unwrap();
        assert!(!staging.exists(), "save must not leave its staging file behind");
        assert!(Checkpoint::load(&path).unwrap().restore().is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_save_leaves_existing_checkpoint_intact() {
        let (pipeline, _) = trained_pipeline(DecoderKind::Softmax);
        let ckpt = Checkpoint::capture(&pipeline);
        let path = unique_temp_path("intact");
        ckpt.save(&path).unwrap();
        let before = std::fs::read_to_string(&path).unwrap();

        // Make the atomic rename fail by turning the target into a
        // non-empty directory; the original file elsewhere must be
        // untouched and no staging file may linger.
        let dir_target = unique_temp_path("intact-dir");
        std::fs::create_dir_all(dir_target.join("occupied")).unwrap();
        assert!(ckpt.save(&dir_target).is_err(), "rename onto a non-empty dir must fail");
        assert!(!Checkpoint::staging_path(&dir_target).exists(), "failed save cleans staging");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir_target);
        let _ = std::fs::remove_file(&path);
    }
}
