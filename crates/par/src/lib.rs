//! # ner-par — the parallel compute substrate for `neural-ner`
//!
//! A dependency-free work-stealing thread pool built on `std::thread` and
//! mutex-protected deques, plus the two data-parallel primitives everything
//! else in the workspace is written against:
//!
//! * [`ThreadPool::for_each_chunk`] — splits an index range into fixed,
//!   deterministic chunks and runs them across the pool (the kernel
//!   primitive: every chunk writes a disjoint output region, so results are
//!   independent of scheduling order).
//! * [`ThreadPool::map`] — runs a closure per index and collects results in
//!   index order (the trainer/inference primitive: one sentence per task).
//!
//! Each worker owns a deque; submitted jobs are distributed round-robin and
//! idle workers *steal* from the back of their siblings' deques, so uneven
//! task costs (long sentences next to short ones) still keep every core
//! busy. The submitting thread participates too: it runs its own share of
//! chunks and steals pending jobs while waiting, so a pool of `n` threads
//! applies `n + 1` workers to each batch without oversubscribing the
//! machine (the pool is sized to `available_parallelism - 1` by default).
//!
//! ## Sizing
//!
//! The global pool ([`global`]) is sized on first use from, in order:
//! the `NER_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. [`set_global_threads`] resizes it
//! at runtime (the CLI `--threads` flag and the kernel benchmark's thread
//! sweep both use this). A pool of size 1 spawns no threads at all and runs
//! every batch inline, which keeps single-thread runs bit-identical to code
//! that never heard of this crate.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send>;

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// One deque per worker; owners pop the front, thieves pop the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs submitted but not yet started, used to avoid missed wakeups.
    pending: AtomicUsize,
    /// Sleep coordination: workers wait here when every deque is empty.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor for job placement.
    next_queue: AtomicUsize,
}

impl Shared {
    /// Pops a job: own queue front first, then steal from siblings' backs.
    fn find_job(&self, me: usize) -> Option<Job> {
        let w = self.queues.len();
        if let Some(job) = self.queues[me].lock().unwrap_or_else(|e| e.into_inner()).pop_front() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        for off in 1..w {
            let victim = (me + off) % w;
            let stolen = self.queues[victim].lock().unwrap_or_else(|e| e.into_inner()).pop_back();
            if let Some(job) = stolen {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        None
    }

    /// Steals a job from any queue — used by the submitting thread while it
    /// waits for a batch to finish.
    fn steal_any(&self) -> Option<Job> {
        for q in &self.queues {
            if let Some(job) = q.lock().unwrap_or_else(|e| e.into_inner()).pop_back() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        None
    }

    fn submit(&self, job: Job) {
        let slot = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[slot].lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
        self.pending.fetch_add(1, Ordering::AcqRel);
        // Taking the idle lock orders this notify after any worker's
        // pending-check, so a worker can't sleep through a fresh job.
        let _guard = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        self.wake.notify_all();
    }
}

fn worker_loop(me: usize, shared: Arc<Shared>) {
    loop {
        if let Some(job) = shared.find_job(me) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.idle.lock().unwrap_or_else(|e| e.into_inner());
        if shared.pending.load(Ordering::Acquire) == 0 && !shared.shutdown.load(Ordering::Acquire) {
            // Timed wait bounds the cost of any wakeup race to one tick.
            let _ = shared.wake.wait_timeout(guard, Duration::from_millis(10));
        }
    }
}

/// Completion latch for one `for_each_chunk` batch. Lives on the caller's
/// stack; workers hold raw pointers to it, which is sound because the caller
/// blocks until the count reaches zero before returning.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    poisoned: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn complete(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().unwrap_or_else(|e| e.into_inner()) == 0
    }

    /// Waits briefly for completion; returns whether the batch finished.
    fn wait_briefly(&self) -> bool {
        let left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        if *left == 0 {
            return true;
        }
        let (left, _) = self
            .done
            .wait_timeout(left, Duration::from_millis(1))
            .unwrap_or_else(|e| e.into_inner());
        *left == 0
    }
}

/// A `*const` that may cross threads. Safety rests on the batch protocol:
/// the pointee outlives every task of the batch because the submitting
/// thread blocks on the [`Latch`] before the pointee leaves scope.
struct SendConst<T: ?Sized>(*const T);
impl<T: ?Sized> SendConst<T> {
    /// The wrapped pointer (method access keeps closure captures on the
    /// wrapper, which carries the `Send` bound).
    fn get(&self) -> *const T {
        self.0
    }
}
impl<T: ?Sized> Clone for SendConst<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: ?Sized> Copy for SendConst<T> {}
unsafe impl<T: ?Sized + Sync> Send for SendConst<T> {}

/// A mutable pointer that may cross threads; used for disjoint writes into
/// a caller-owned output buffer (each task touches its own index range).
struct SendMut<T>(*mut T);
impl<T> SendMut<T> {
    /// The wrapped pointer. Going through a method (rather than field
    /// access) makes closures capture the whole `Send`/`Sync` wrapper
    /// instead of the raw pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendMut<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendMut<T> {}
unsafe impl<T: Send> Send for SendMut<T> {}
unsafe impl<T: Send> Sync for SendMut<T> {}

/// A fixed-size work-stealing thread pool.
///
/// Construct with [`ThreadPool::new`] or use the process-wide [`global`]
/// pool. Dropping the pool joins all workers (pending jobs are drained
/// first).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// A pool applying `threads` workers to each batch. `threads <= 1`
    /// spawns nothing and runs every call inline on the caller.
    ///
    /// The submitting thread always participates in its own batches, so
    /// `threads` worker *threads* are actually `threads - 1` spawned
    /// threads plus the caller.
    pub fn new(threads: usize) -> Arc<ThreadPool> {
        let threads = threads.clamp(1, 256);
        let spawn = threads.saturating_sub(1);
        let shared = Arc::new(Shared {
            queues: (0..spawn.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_queue: AtomicUsize::new(0),
        });
        let mut handles = Vec::with_capacity(spawn);
        for i in 0..spawn {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("ner-par-{i}"))
                .spawn(move || worker_loop(i, shared))
                .expect("spawn ner-par worker");
            handles.push(handle);
        }
        Arc::new(ThreadPool { shared, handles, threads })
    }

    /// Number of workers applied to each batch (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..n` into deterministic contiguous chunks of at least
    /// `grain` indices and runs `f` on each chunk across the pool, blocking
    /// until all chunks complete. Chunk boundaries depend only on `n`,
    /// `grain` and the pool size — never on scheduling — so kernels that
    /// write disjoint per-chunk output regions are reproducible.
    ///
    /// Runs inline when the pool has one thread or `n` is within one grain.
    ///
    /// # Panics
    /// Propagates a panic if any chunk panics (after the batch drains).
    pub fn for_each_chunk<F>(&self, n: usize, grain: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        // Empty batches bail before anything else — tight inference loops
        // may call this repeatedly with nothing to do, and an empty batch
        // must not touch the deques or wake any worker.
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        if self.threads <= 1 || n <= grain {
            f(0..n);
            return;
        }
        // Aim for a few chunks per worker so stealing can even out skew,
        // but never smaller than the caller's grain.
        let target = (n / (self.threads * 4)).max(grain);
        let nchunks = n.div_ceil(target);
        let latch = Latch::new(nchunks);
        // Erase the borrow's lifetime so tasks can be boxed as `'static`
        // jobs. Sound under the batch protocol: this function blocks on the
        // latch until every task referencing `f`/`latch` has completed.
        let f_static: &'static (dyn Fn(Range<usize>) + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(Range<usize>) + Sync),
                &'static (dyn Fn(Range<usize>) + Sync),
            >(&f)
        };
        let fp: SendConst<dyn Fn(Range<usize>) + Sync> = SendConst(f_static);
        let lp: SendConst<Latch> = SendConst(&latch);
        for c in 1..nchunks {
            let range = (c * target)..(((c + 1) * target).min(n));
            self.shared.submit(Box::new(move || {
                let f = unsafe { &*fp.get() };
                let latch = unsafe { &*lp.get() };
                if catch_unwind(AssertUnwindSafe(|| f(range))).is_err() {
                    latch.poisoned.store(true, Ordering::Release);
                }
                latch.complete();
            }));
        }
        // The caller runs chunk 0 itself, then helps drain the queues.
        let own = catch_unwind(AssertUnwindSafe(|| f(0..target.min(n))));
        latch.complete();
        while !latch.is_done() {
            match self.shared.steal_any() {
                Some(job) => job(),
                None => {
                    latch.wait_briefly();
                }
            }
        }
        match own {
            Err(payload) => resume_unwind(payload),
            Ok(()) if latch.poisoned.load(Ordering::Acquire) => {
                panic!("ner-par: a worker task panicked")
            }
            Ok(()) => {}
        }
    }

    /// Runs `f(i)` for every `i` in `0..n` across the pool and returns the
    /// results in index order. One task per index — meant for coarse units
    /// of work (a sentence forward/backward pass, not a single row).
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let slots = SendMut(out.as_mut_ptr());
        self.for_each_chunk(n, 1, |range| {
            for i in range {
                let value = f(i);
                // Disjoint by construction: chunk ranges never overlap.
                unsafe { *slots.get().add(i) = Some(value) };
            }
        });
        out.into_iter().map(|slot| slot.expect("ner-par: map slot unfilled")).collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.idle.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Global pool
// ---------------------------------------------------------------------------

fn global_slot() -> &'static RwLock<Arc<ThreadPool>> {
    static GLOBAL: OnceLock<RwLock<Arc<ThreadPool>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(ThreadPool::new(default_threads())))
}

/// The pool size the global pool starts with: `NER_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("NER_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(256);
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The process-wide pool, created on first use.
pub fn global() -> Arc<ThreadPool> {
    Arc::clone(&global_slot().read().unwrap_or_else(|e| e.into_inner()))
}

/// Number of workers the global pool applies to each batch.
pub fn global_threads() -> usize {
    global().threads()
}

/// Replaces the global pool with one of `threads` workers (the `--threads`
/// CLI flag and benchmark thread sweeps). In-flight batches keep the old
/// pool alive until they finish; new work lands on the new pool.
pub fn set_global_threads(threads: usize) {
    let pool = ThreadPool::new(threads);
    *global_slot().write().unwrap_or_else(|e| e.into_inner()) = pool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_chunk_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_chunk(n, 1, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_preserves_index_order() {
        let pool = ThreadPool::new(3);
        let out = pool.map(257, |i| i * i);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let caller = std::thread::current().id();
        let mut seen = Vec::new();
        pool.for_each_chunk(5, 1, |range| {
            assert_eq!(std::thread::current().id(), caller);
            let _ = &range;
        });
        let out = pool.map(5, |i| {
            assert_eq!(std::thread::current().id(), caller);
            i
        });
        seen.extend(out);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn uneven_tasks_all_complete() {
        let pool = ThreadPool::new(4);
        let total = AtomicU64::new(0);
        let out = pool.map(64, |i| {
            // Skewed workloads exercise the stealing path.
            let mut acc = 0u64;
            for k in 0..(i % 7) * 1500 {
                acc = acc.wrapping_add(k as u64);
            }
            total.fetch_add(acc, Ordering::Relaxed);
            i as u64
        });
        assert_eq!(out.iter().sum::<u64>(), 63 * 64 / 2);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_chunk(100, 1, |range| {
                if range.contains(&37) {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic in a chunk must reach the caller");
        // The pool must remain usable after a poisoned batch.
        let out = pool.map(8, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn global_pool_resizes() {
        set_global_threads(2);
        assert_eq!(global_threads(), 2);
        set_global_threads(1);
        assert_eq!(global_threads(), 1);
        set_global_threads(default_threads());
    }

    #[test]
    fn empty_and_degenerate_batches() {
        let pool = ThreadPool::new(2);
        pool.for_each_chunk(0, 4, |_| panic!("must not run"));
        assert!(pool.map(0, |i| i).is_empty());
        let one = pool.map(1, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    /// Repeated empty batches (the shape of a tight inference loop between
    /// sentences) return immediately — even with a degenerate grain of 0 —
    /// and never submit a job or run the closure.
    #[test]
    fn repeated_empty_batches_return_immediately() {
        let pool = ThreadPool::new(4);
        let t = std::time::Instant::now();
        for _ in 0..10_000 {
            pool.for_each_chunk(0, 0, |_| panic!("must not run"));
        }
        // Generous bound: 10k no-op calls finish in microseconds when the
        // fast path holds, but would take far longer if each call woke the
        // workers through the deques.
        assert!(t.elapsed() < std::time::Duration::from_secs(1));
    }
}
