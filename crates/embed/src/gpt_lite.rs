//! GPT-lite: a left-to-right Transformer language model (Radford et al.
//! 2018; paper §3.3.5, Fig. 11 middle).
//!
//! Pretrained with the causal next-token objective; as a feature extractor a
//! token's representation is the final hidden state at its own position —
//! which, by construction, conditions only on the *left* context. The
//! Fig. 11 experiment contrasts this with BERT-lite's bidirectional
//! conditioning.

use crate::ContextualEmbedder;
use ner_tensor::nn::{positional_encoding, Embedding, Linear, TransformerBlock};
use ner_tensor::optim::{Adam, Optimizer};
use ner_tensor::{ParamStore, Tape, Var};
use ner_text::Vocab;
use rand::Rng;

/// GPT-lite hyperparameters.
#[derive(Clone, Debug)]
pub struct GptConfig {
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Vocabulary frequency floor.
    pub min_count: usize,
}

impl Default for GptConfig {
    fn default() -> Self {
        GptConfig { d_model: 32, heads: 2, layers: 2, d_ff: 64, epochs: 3, lr: 0.005, min_count: 1 }
    }
}

/// A trained causal Transformer LM.
pub struct GptLite {
    vocab: Vocab,
    emb: Embedding,
    blocks: Vec<TransformerBlock>,
    out: Linear,
    store: ParamStore,
    d_model: usize,
}

const BOS: &str = "<s>";

impl GptLite {
    fn ids(&self, tokens: &[String]) -> Vec<usize> {
        let mut ids = vec![self.vocab.get_or_unk(BOS)];
        ids.extend(tokens.iter().map(|t| self.vocab.get_or_unk(&t.to_lowercase())));
        ids
    }

    fn encode(&self, tape: &mut Tape, ids: &[usize]) -> Var {
        let e = self.emb.lookup(tape, &self.store, ids);
        let pe = tape.constant(positional_encoding(ids.len(), self.d_model));
        let mut h = tape.add(e, pe);
        for block in &self.blocks {
            h = block.forward(tape, &self.store, h, true);
        }
        h
    }

    /// Trains on a tokenized corpus; returns the model and per-epoch average
    /// NLL per predicted token.
    pub fn train(corpus: &[Vec<String>], cfg: &GptConfig, rng: &mut impl Rng) -> (Self, Vec<f32>) {
        let mut vocab = Vocab::build(
            corpus.iter().flat_map(|s| s.iter().map(|t| t.to_lowercase())),
            cfg.min_count,
        );
        vocab.add(BOS);

        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, rng, "gpt.emb", vocab.len(), cfg.d_model);
        let blocks = (0..cfg.layers)
            .map(|i| {
                TransformerBlock::new(
                    &mut store,
                    rng,
                    &format!("gpt.block{i}"),
                    cfg.d_model,
                    cfg.heads,
                    cfg.d_ff,
                )
            })
            .collect();
        let out = Linear::new(&mut store, rng, "gpt.out", cfg.d_model, vocab.len());
        let mut model = GptLite { vocab, emb, blocks, out, store, d_model: cfg.d_model };

        let mut opt = Adam::new(cfg.lr);
        let mut epoch_nll = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut total = 0.0f64;
            let mut preds = 0usize;
            for sent in corpus {
                let ids = model.ids(sent);
                if ids.len() < 2 {
                    continue;
                }
                let mut tape = Tape::new();
                // Inputs: all but last position; targets: the next token.
                let h = model.encode(&mut tape, &ids[..ids.len() - 1]);
                let logits = model.out.forward(&mut tape, &model.store, h);
                let loss = tape.cross_entropy_sum(logits, &ids[1..]);
                total += tape.value(loss).item() as f64;
                preds += ids.len() - 1;
                tape.backward(loss, &mut model.store);
                model.store.clip_grad_norm(5.0);
                opt.step(&mut model.store);
            }
            epoch_nll.push((total / preds.max(1) as f64) as f32);
        }
        (model, epoch_nll)
    }

    /// Average next-token NLL on held-out data.
    pub fn nll(&self, corpus: &[Vec<String>]) -> f64 {
        let mut total = 0.0f64;
        let mut preds = 0usize;
        for sent in corpus {
            let ids = self.ids(sent);
            if ids.len() < 2 {
                continue;
            }
            let mut tape = Tape::new();
            let h = self.encode(&mut tape, &ids[..ids.len() - 1]);
            let logits = self.out.forward(&mut tape, &self.store, h);
            let loss = tape.cross_entropy_sum(logits, &ids[1..]);
            total += tape.value(loss).item() as f64;
            preds += ids.len() - 1;
        }
        total / preds.max(1) as f64
    }
}

impl ContextualEmbedder for GptLite {
    fn dim(&self) -> usize {
        self.d_model
    }

    fn embed(&self, tokens: &[String]) -> Vec<Vec<f32>> {
        if tokens.is_empty() {
            return vec![];
        }
        let ids = self.ids(tokens);
        let mut tape = Tape::new();
        let h = self.encode(&mut tape, &ids);
        let v = tape.value(h);
        // Token k sits at position k+1 (after BOS).
        (0..tokens.len()).map(|k| v.row(k + 1).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus(n: usize, seed: u64) -> Vec<Vec<String>> {
        NewsGenerator::new(GeneratorConfig::default())
            .lm_sentences(&mut StdRng::seed_from_u64(seed), n)
    }

    #[test]
    fn training_reduces_nll() {
        let c = corpus(50, 1);
        let cfg = GptConfig { epochs: 3, ..Default::default() };
        let (_, nll) = GptLite::train(&c, &cfg, &mut StdRng::seed_from_u64(2));
        assert!(nll.last().unwrap() < nll.first().unwrap(), "NLL should fall: {nll:?}");
    }

    #[test]
    fn representations_are_left_context_only() {
        let c = corpus(30, 3);
        let (lm, _) = GptLite::train(
            &c,
            &GptConfig { epochs: 1, ..Default::default() },
            &mut StdRng::seed_from_u64(4),
        );
        // Substitute two distinct in-vocab words at the final position so the
        // contrast is meaningful regardless of which names the sampled corpus
        // happens to contain (out-of-vocab words would both collapse to UNK).
        let mut words: Vec<String> = c.iter().flatten().map(|w| w.to_lowercase()).collect();
        words.sort();
        words.dedup();
        let (w1, w2) = (words[0].clone(), words[1].clone());
        let a: Vec<String> = vec!["Jordan".into(), "visited".into(), w1];
        let b: Vec<String> = vec!["Jordan".into(), "visited".into(), w2];
        let (ea, eb) = (lm.embed(&a), lm.embed(&b));
        // Changing a FUTURE token must not change a causal representation.
        for (x, y) in ea[0].iter().zip(&eb[0]) {
            assert!((x - y).abs() < 1e-6, "causal embedding saw the future");
        }
        // But the changed position itself differs.
        let diff: f32 = ea[2].iter().zip(&eb[2]).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4);
    }
}
