//! Byte-pair encoding — the WordPiece-style subword vocabulary used by
//! `bert_lite` (paper §3.3.5 notes BERT's WordPiece input; Table 3 row
//! \[118\]).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// End-of-word marker appended to every word before merging, so pieces are
/// position-aware (`ing</w>` ≠ `ing`).
pub const END_OF_WORD: &str = "</w>";

/// A learned BPE merge table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bpe {
    merges: Vec<(String, String)>,
}

impl Bpe {
    /// Learns `n_merges` merges from a word-frequency view of the corpus.
    pub fn learn(corpus: &[Vec<String>], n_merges: usize) -> Self {
        let mut word_freq: HashMap<Vec<String>, usize> = HashMap::new();
        for sent in corpus {
            for word in sent {
                let mut symbols: Vec<String> =
                    word.to_lowercase().chars().map(String::from).collect();
                if symbols.is_empty() {
                    continue;
                }
                symbols.push(END_OF_WORD.to_string());
                *word_freq.entry(symbols).or_insert(0) += 1;
            }
        }

        let mut merges = Vec::with_capacity(n_merges);
        for _ in 0..n_merges {
            let mut pair_counts: HashMap<(String, String), usize> = HashMap::new();
            for (symbols, freq) in &word_freq {
                for win in symbols.windows(2) {
                    *pair_counts.entry((win[0].clone(), win[1].clone())).or_insert(0) += freq;
                }
            }
            // Deterministic best pair: max count, ties by lexicographic order.
            let Some(best) = pair_counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .filter(|(_, c)| *c >= 2)
                .map(|(p, _)| p)
            else {
                break;
            };
            word_freq = word_freq
                .into_iter()
                .map(|(symbols, freq)| (apply_merge(&symbols, &best), freq))
                .collect();
            merges.push(best);
        }
        Bpe { merges }
    }

    /// Number of learned merges.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    /// Encodes one word into its BPE pieces (last piece carries
    /// [`END_OF_WORD`]).
    pub fn encode_word(&self, word: &str) -> Vec<String> {
        let mut symbols: Vec<String> = word.to_lowercase().chars().map(String::from).collect();
        if symbols.is_empty() {
            return vec![END_OF_WORD.to_string()];
        }
        symbols.push(END_OF_WORD.to_string());
        for merge in &self.merges {
            symbols = apply_merge(&symbols, merge);
        }
        symbols
    }

    /// All distinct pieces producible from the corpus (for vocabulary
    /// construction).
    pub fn piece_inventory(&self, corpus: &[Vec<String>]) -> Vec<String> {
        let mut set = std::collections::BTreeSet::new();
        for sent in corpus {
            for word in sent {
                for piece in self.encode_word(word) {
                    set.insert(piece);
                }
            }
        }
        set.into_iter().collect()
    }
}

fn apply_merge(symbols: &[String], pair: &(String, String)) -> Vec<String> {
    let mut out = Vec::with_capacity(symbols.len());
    let mut i = 0;
    while i < symbols.len() {
        if i + 1 < symbols.len() && symbols[i] == pair.0 && symbols[i + 1] == pair.1 {
            out.push(format!("{}{}", pair.0, pair.1));
            i += 2;
        } else {
            out.push(symbols[i].clone());
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<String>> {
        let words = ["lower", "lowest", "newer", "newest", "wider", "widest"];
        (0..20).map(|_| words.iter().map(|w| w.to_string()).collect()).collect()
    }

    #[test]
    fn learns_shared_suffixes() {
        let bpe = Bpe::learn(&corpus(), 30);
        assert!(bpe.num_merges() > 0);
        let pieces = bpe.encode_word("lowest");
        // "est</w>" (or a superset merge) should appear as a single piece.
        assert!(
            pieces.iter().any(|p| p.contains("est") || p.contains("st</w>")),
            "expected a suffix piece, got {pieces:?}"
        );
        // The same suffix piece tokenizes an unseen word.
        let unseen = bpe.encode_word("greenest");
        assert!(unseen.len() < "greenest".len() + 1, "merges should compress: {unseen:?}");
    }

    #[test]
    fn round_trip_concatenation_reconstructs_word() {
        let bpe = Bpe::learn(&corpus(), 20);
        for word in ["lower", "unseen", "xyz"] {
            let joined: String = bpe.encode_word(word).concat();
            assert_eq!(joined, format!("{word}{END_OF_WORD}"));
        }
    }

    #[test]
    fn deterministic_learning() {
        let a = Bpe::learn(&corpus(), 15);
        let b = Bpe::learn(&corpus(), 15);
        assert_eq!(a.merges, b.merges);
    }

    #[test]
    fn empty_word_yields_marker() {
        let bpe = Bpe::learn(&corpus(), 5);
        assert_eq!(bpe.encode_word(""), vec![END_OF_WORD.to_string()]);
    }

    #[test]
    fn piece_inventory_covers_corpus() {
        let c = corpus();
        let bpe = Bpe::learn(&c, 10);
        let inv = bpe.piece_inventory(&c);
        for p in bpe.encode_word("lowest") {
            assert!(inv.contains(&p));
        }
    }
}
