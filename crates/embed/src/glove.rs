//! GloVe-style embeddings (Pennington et al. 2014; paper §3.2.1): weighted
//! least-squares factorization of the log co-occurrence matrix,
//! `wᵢ·w̃ⱼ + bᵢ + b̃ⱼ ≈ log Xᵢⱼ`, with the f(X) = (X/x_max)^α weighting.

use crate::pretrained::WordEmbeddings;
use ner_tensor::Tensor;
use ner_text::Vocab;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// GloVe training hyperparameters.
#[derive(Clone, Debug)]
pub struct GloveConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Co-occurrence window radius (with 1/distance weighting).
    pub window: usize,
    /// Training epochs over the non-zero co-occurrence entries.
    pub epochs: usize,
    /// AdaGrad learning rate.
    pub lr: f32,
    /// Weighting cutoff `x_max`.
    pub x_max: f32,
    /// Weighting exponent α.
    pub alpha: f32,
    /// Minimum token frequency for the vocabulary.
    pub min_count: usize,
}

impl Default for GloveConfig {
    fn default() -> Self {
        GloveConfig {
            dim: 32,
            window: 5,
            epochs: 15,
            lr: 0.05,
            x_max: 50.0,
            alpha: 0.75,
            min_count: 2,
        }
    }
}

/// Builds the symmetric, distance-weighted co-occurrence counts.
fn cooccurrences(
    corpus: &[Vec<String>],
    vocab: &Vocab,
    window: usize,
) -> HashMap<(usize, usize), f32> {
    let mut counts: HashMap<(usize, usize), f32> = HashMap::new();
    for sent in corpus {
        let ids: Vec<usize> = sent.iter().filter_map(|t| vocab.get(&t.to_lowercase())).collect();
        for (i, &a) in ids.iter().enumerate() {
            let hi = (i + window + 1).min(ids.len());
            for (dist, &b) in ids[i + 1..hi].iter().enumerate() {
                let w = 1.0 / (dist as f32 + 1.0);
                *counts.entry((a, b)).or_insert(0.0) += w;
                *counts.entry((b, a)).or_insert(0.0) += w;
            }
        }
    }
    counts
}

/// Trains GloVe-style embeddings. The returned matrix is the conventional
/// `w + w̃` sum of the two factor matrices.
pub fn train(corpus: &[Vec<String>], cfg: &GloveConfig, rng: &mut impl Rng) -> WordEmbeddings {
    let vocab =
        Vocab::build(corpus.iter().flat_map(|s| s.iter().map(|t| t.to_lowercase())), cfg.min_count);
    let pairs: Vec<((usize, usize), f32)> =
        cooccurrences(corpus, &vocab, cfg.window).into_iter().collect();
    let mut order: Vec<usize> = (0..pairs.len()).collect();

    let v = vocab.len();
    let d = cfg.dim;
    let scale = 0.5 / d as f32;
    let mut w: Vec<f32> = (0..v * d).map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * scale).collect();
    let mut wt: Vec<f32> = (0..v * d).map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * scale).collect();
    let mut b = vec![0.0f32; v];
    let mut bt = vec![0.0f32; v];
    // AdaGrad accumulators.
    let mut gw = vec![1.0f32; v * d];
    let mut gwt = vec![1.0f32; v * d];
    let mut gb = vec![1.0f32; v];
    let mut gbt = vec![1.0f32; v];

    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        for &p in &order {
            let ((i, j), x) = pairs[p];
            let weight = (x / cfg.x_max).powf(cfg.alpha).min(1.0);
            let (wi, wj) = (i * d, j * d);
            let dot: f32 = (0..d).map(|k| w[wi + k] * wt[wj + k]).sum();
            let diff = dot + b[i] + bt[j] - x.ln();
            let coef = weight * diff;
            for k in 0..d {
                let grad_w = coef * wt[wj + k];
                let grad_wt = coef * w[wi + k];
                w[wi + k] -= cfg.lr * grad_w / gw[wi + k].sqrt();
                wt[wj + k] -= cfg.lr * grad_wt / gwt[wj + k].sqrt();
                gw[wi + k] += grad_w * grad_w;
                gwt[wj + k] += grad_wt * grad_wt;
            }
            b[i] -= cfg.lr * coef / gb[i].sqrt();
            bt[j] -= cfg.lr * coef / gbt[j].sqrt();
            gb[i] += coef * coef;
            gbt[j] += coef * coef;
        }
    }

    let combined: Vec<f32> = w.iter().zip(&wt).map(|(a, b)| a + b).collect();
    WordEmbeddings::new(vocab, Tensor::from_vec(v, d, combined))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cooccurrence_symmetry_and_distance_weighting() {
        let mut vocab = Vocab::new();
        vocab.add("a");
        vocab.add("b");
        vocab.add("c");
        let corpus = vec![vec!["a".to_string(), "b".to_string(), "c".to_string()]];
        let co = cooccurrences(&corpus, &vocab, 5);
        let a = vocab.get("a").unwrap();
        let b = vocab.get("b").unwrap();
        let c = vocab.get("c").unwrap();
        assert_eq!(co[&(a, b)], co[&(b, a)]);
        assert_eq!(co[&(a, b)], 1.0);
        assert_eq!(co[&(a, c)], 0.5, "distance-2 pair weighted 1/2");
    }

    #[test]
    fn glove_learns_class_structure() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(23);
        let corpus = gen.lm_sentences(&mut rng, 2000);
        let cfg = GloveConfig { dim: 24, epochs: 25, ..Default::default() };
        let emb = train(&corpus, &cfg, &mut rng);
        // Average within-class similarity must beat cross-class similarity;
        // aggregating over pairs smooths out per-word sampling noise.
        let cities = ["paris", "tokyo", "london", "brooklyn", "berlin", "madrid"];
        let funcs = ["said", "percent", "the", "that", "would", "with"];
        let mut within = 0.0;
        let mut count = 0;
        for (i, a) in cities.iter().enumerate() {
            for b in &cities[i + 1..] {
                within += emb.cosine(a, b);
                count += 1;
            }
        }
        within /= count as f32;
        let mut cross = 0.0;
        for a in &cities {
            for b in &funcs {
                cross += emb.cosine(a, b);
            }
        }
        cross /= (cities.len() * funcs.len()) as f32;
        assert!(
            within > cross,
            "mean city-city similarity {within} should exceed city-function {cross}"
        );
    }
}
