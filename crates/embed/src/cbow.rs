//! Continuous bag-of-words with negative sampling (the other word2vec
//! objective of Mikolov et al. 2013, paper §3.2.1): predict the center word
//! from the *average* of its context vectors.

use crate::pretrained::WordEmbeddings;
use crate::skipgram::{index_counts, NegativeTable, SkipGramConfig};
use ner_tensor::Tensor;
use ner_text::Vocab;
use rand::Rng;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Trains CBOW embeddings on a tokenized corpus. Shares the configuration
/// struct with skip-gram (the hyperparameters have identical meanings).
pub fn train(corpus: &[Vec<String>], cfg: &SkipGramConfig, rng: &mut impl Rng) -> WordEmbeddings {
    let vocab =
        Vocab::build(corpus.iter().flat_map(|s| s.iter().map(|t| t.to_lowercase())), cfg.min_count);
    let counts = index_counts(corpus, &vocab);
    let negatives = NegativeTable::new(&counts);

    let v = vocab.len();
    let d = cfg.dim;
    let mut w_in: Vec<f32> = (0..v * d).map(|_| (rng.gen::<f32>() - 0.5) / d as f32).collect();
    let mut w_out: Vec<f32> = vec![0.0; v * d];

    let encoded: Vec<Vec<usize>> = corpus
        .iter()
        .map(|s| s.iter().filter_map(|t| vocab.get(&t.to_lowercase())).collect())
        .collect();
    let total_steps: usize = cfg.epochs * encoded.iter().map(Vec::len).sum::<usize>().max(1);
    let mut step = 0usize;

    let mut mean_ctx = vec![0.0f32; d];
    let mut grad_ctx = vec![0.0f32; d];
    for _ in 0..cfg.epochs {
        for sent in &encoded {
            for (pos, &center) in sent.iter().enumerate() {
                step += 1;
                let lr = (cfg.lr * (1.0 - step as f32 / total_steps as f32)).max(cfg.lr * 1e-4);
                let radius = rng.gen_range(1..=cfg.window);
                let lo = pos.saturating_sub(radius);
                let hi = (pos + radius + 1).min(sent.len());
                let context: Vec<usize> = (lo..hi).filter(|&p| p != pos).map(|p| sent[p]).collect();
                if context.is_empty() {
                    continue;
                }
                // Mean of context input vectors.
                mean_ctx.iter_mut().for_each(|x| *x = 0.0);
                for &c in &context {
                    for j in 0..d {
                        mean_ctx[j] += w_in[c * d + j];
                    }
                }
                let inv = 1.0 / context.len() as f32;
                mean_ctx.iter_mut().for_each(|x| *x *= inv);

                grad_ctx.iter_mut().for_each(|x| *x = 0.0);
                for neg in 0..=cfg.negatives {
                    let (target, label) =
                        if neg == 0 { (center, 1.0) } else { (negatives.sample(rng), 0.0) };
                    if neg > 0 && target == center {
                        continue;
                    }
                    let ti = target * d;
                    let dot: f32 = (0..d).map(|j| mean_ctx[j] * w_out[ti + j]).sum();
                    let err = (sigmoid(dot) - label) * lr;
                    for j in 0..d {
                        grad_ctx[j] += err * w_out[ti + j];
                        w_out[ti + j] -= err * mean_ctx[j];
                    }
                }
                for &c in &context {
                    for j in 0..d {
                        w_in[c * d + j] -= grad_ctx[j] * inv;
                    }
                }
            }
        }
    }

    WordEmbeddings::new(vocab, Tensor::from_vec(v, d, w_in))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cbow_learns_class_structure() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(17);
        let corpus = gen.lm_sentences(&mut rng, 1500);
        let cfg = SkipGramConfig { dim: 24, epochs: 5, ..Default::default() };
        let emb = train(&corpus, &cfg, &mut rng);
        let per_per = emb.cosine("sarah", "david");
        let per_func = emb.cosine("sarah", "the");
        assert!(per_per > per_func, "person-person {per_per} vs person-func {per_func}");
    }

    #[test]
    fn deterministic() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let corpus = gen.lm_sentences(&mut StdRng::seed_from_u64(3), 80);
        let cfg = SkipGramConfig { dim: 8, epochs: 1, ..Default::default() };
        let a = train(&corpus, &cfg, &mut StdRng::seed_from_u64(4));
        let b = train(&corpus, &cfg, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.matrix(), b.matrix());
    }
}
