//! # ner-embed — embedding pretraining for `neural-ner`
//!
//! The "distributed representations for input" axis of the survey's taxonomy
//! (paper §3.2) needs pretrained vectors; this crate trains every family the
//! paper discusses, on the synthetic LM corpus from `ner-corpus`:
//!
//! **Static word embeddings** (paper §3.2.1 — the "Google Word2Vec /
//! Stanford GloVe / SENNA" analogs):
//! * [`skipgram`] — skip-gram with negative sampling,
//! * [`cbow`] — continuous bag-of-words,
//! * [`glove`] — weighted co-occurrence factorization,
//!
//! all producing a [`WordEmbeddings`] artifact.
//!
//! **Contextual language-model embeddings** (paper §3.3.4–3.3.5, Figs. 4 and
//! 11), all implementing [`ContextualEmbedder`]:
//! * [`charlm::CharLm`] — Flair-style contextual *string* embeddings,
//! * [`elmo::ElmoLm`] — ELMo-style biLSTM word LM,
//! * [`gpt_lite::GptLite`] — left-to-right Transformer LM,
//! * [`bert_lite::BertLite`] — bidirectional masked-LM Transformer over a
//!   [`subword`] BPE vocabulary.

#![warn(missing_docs)]

pub mod bert_lite;
pub mod cbow;
pub mod charlm;
pub mod elmo;
pub mod glove;
pub mod gpt_lite;
mod pretrained;
pub mod skipgram;
pub mod subword;

pub use pretrained::{cosine, WordEmbeddings};

/// A frozen contextual embedder: maps a token sequence to one vector per
/// token, where each vector conditions on the whole sentence (or, for
/// causal models, its left context).
///
/// This is the interface `ner-core`'s hybrid input representation consumes —
/// the "language model embeddings" column of the paper's Table 3.
pub trait ContextualEmbedder {
    /// Output dimensionality per token.
    fn dim(&self) -> usize;
    /// Embeds a sentence; the result has exactly `tokens.len()` entries.
    fn embed(&self, tokens: &[String]) -> Vec<Vec<f32>>;
}
