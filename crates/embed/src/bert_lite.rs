//! BERT-lite: a bidirectional Transformer pretrained with a masked
//! (cloze-style) language-model objective over a BPE subword vocabulary
//! (Devlin et al. 2019; paper §3.3.5, Fig. 11 left; Baevski et al.'s
//! cloze-driven pretraining is the same objective family).
//!
//! As a feature extractor, a word's representation is the mean of its
//! subword pieces' final hidden states — each of which conditions on *both*
//! left and right context, the property Fig. 11 credits for BERT's edge over
//! the causal GPT.

use crate::subword::Bpe;
use crate::ContextualEmbedder;
use ner_tensor::nn::{positional_encoding, Embedding, Linear, TransformerBlock};
use ner_tensor::optim::{Adam, Optimizer};
use ner_tensor::{ParamStore, Tape, Var};
use ner_text::Vocab;
use rand::Rng;

/// BERT-lite hyperparameters.
#[derive(Clone, Debug)]
pub struct BertConfig {
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Fraction of pieces selected for masking.
    pub mask_prob: f64,
    /// Number of BPE merges to learn.
    pub merges: usize,
}

impl Default for BertConfig {
    fn default() -> Self {
        BertConfig {
            d_model: 32,
            heads: 2,
            layers: 2,
            d_ff: 64,
            epochs: 3,
            lr: 0.005,
            mask_prob: 0.15,
            merges: 150,
        }
    }
}

/// A trained masked-LM Transformer.
pub struct BertLite {
    bpe: Bpe,
    vocab: Vocab,
    emb: Embedding,
    blocks: Vec<TransformerBlock>,
    out: Linear,
    store: ParamStore,
    d_model: usize,
}

const CLS: &str = "<cls>";
const MASK: &str = "<mask>";

impl BertLite {
    /// Encodes tokens to piece ids plus, per word, its piece span.
    fn pieces(&self, tokens: &[String]) -> (Vec<usize>, Vec<(usize, usize)>) {
        let mut ids = vec![self.vocab.get_or_unk(CLS)];
        let mut spans = Vec::with_capacity(tokens.len());
        for tok in tokens {
            let start = ids.len();
            for piece in self.bpe.encode_word(tok) {
                ids.push(self.vocab.get_or_unk(&piece));
            }
            spans.push((start, ids.len()));
        }
        (ids, spans)
    }

    fn encode(&self, tape: &mut Tape, ids: &[usize]) -> Var {
        let e = self.emb.lookup(tape, &self.store, ids);
        let pe = tape.constant(positional_encoding(ids.len(), self.d_model));
        let mut h = tape.add(e, pe);
        for block in &self.blocks {
            h = block.forward(tape, &self.store, h, false);
        }
        h
    }

    /// Trains on a tokenized corpus; returns the model and per-epoch average
    /// masked-position NLL.
    pub fn train(corpus: &[Vec<String>], cfg: &BertConfig, rng: &mut impl Rng) -> (Self, Vec<f32>) {
        let bpe = Bpe::learn(corpus, cfg.merges);
        let mut vocab = Vocab::new();
        vocab.add(CLS);
        vocab.add(MASK);
        for piece in bpe.piece_inventory(corpus) {
            vocab.add(&piece);
        }

        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, rng, "bert.emb", vocab.len(), cfg.d_model);
        let blocks = (0..cfg.layers)
            .map(|i| {
                TransformerBlock::new(
                    &mut store,
                    rng,
                    &format!("bert.block{i}"),
                    cfg.d_model,
                    cfg.heads,
                    cfg.d_ff,
                )
            })
            .collect();
        let out = Linear::new(&mut store, rng, "bert.out", cfg.d_model, vocab.len());
        let mut model = BertLite { bpe, vocab, emb, blocks, out, store, d_model: cfg.d_model };

        let mask_id = model.vocab.get(MASK).expect("mask token registered");
        let vocab_len = model.vocab.len();
        let mut opt = Adam::new(cfg.lr);
        let mut epoch_nll = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            let mut total = 0.0f64;
            let mut preds = 0usize;
            for sent in corpus {
                let (ids, _) = model.pieces(sent);
                if ids.len() < 3 {
                    continue;
                }
                // BERT's 80/10/10 corruption of selected positions.
                let mut corrupted = ids.clone();
                let mut masked: Vec<(usize, usize)> = Vec::new(); // (position, original)
                for (pos, &orig) in ids.iter().enumerate().skip(1) {
                    if rng.gen_bool(cfg.mask_prob) {
                        let roll: f64 = rng.gen();
                        corrupted[pos] = if roll < 0.8 {
                            mask_id
                        } else if roll < 0.9 {
                            rng.gen_range(2..vocab_len)
                        } else {
                            orig
                        };
                        masked.push((pos, orig));
                    }
                }
                if masked.is_empty() {
                    continue;
                }
                let mut tape = Tape::new();
                let h = model.encode(&mut tape, &corrupted);
                // Score only the masked rows.
                let rows: Vec<ner_tensor::Var> =
                    masked.iter().map(|&(pos, _)| tape.row(h, pos)).collect();
                let picked = tape.concat_rows(&rows);
                let logits = model.out.forward(&mut tape, &model.store, picked);
                let targets: Vec<usize> = masked.iter().map(|&(_, orig)| orig).collect();
                let loss = tape.cross_entropy_sum(logits, &targets);
                total += tape.value(loss).item() as f64;
                preds += targets.len();
                tape.backward(loss, &mut model.store);
                model.store.clip_grad_norm(5.0);
                opt.step(&mut model.store);
            }
            epoch_nll.push((total / preds.max(1) as f64) as f32);
        }
        (model, epoch_nll)
    }

    /// The learned BPE table.
    pub fn bpe(&self) -> &Bpe {
        &self.bpe
    }
}

impl ContextualEmbedder for BertLite {
    fn dim(&self) -> usize {
        self.d_model
    }

    fn embed(&self, tokens: &[String]) -> Vec<Vec<f32>> {
        if tokens.is_empty() {
            return vec![];
        }
        let (ids, spans) = self.pieces(tokens);
        let mut tape = Tape::new();
        let h = self.encode(&mut tape, &ids);
        let v = tape.value(h);
        spans
            .iter()
            .map(|&(s, e)| {
                let mut mean = vec![0.0f32; self.d_model];
                for r in s..e {
                    for (m, &x) in mean.iter_mut().zip(v.row(r)) {
                        *m += x;
                    }
                }
                let inv = 1.0 / (e - s) as f32;
                mean.iter_mut().for_each(|m| *m *= inv);
                mean
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus(n: usize, seed: u64) -> Vec<Vec<String>> {
        NewsGenerator::new(GeneratorConfig::default())
            .lm_sentences(&mut StdRng::seed_from_u64(seed), n)
    }

    #[test]
    fn training_reduces_masked_nll() {
        let c = corpus(60, 1);
        let cfg = BertConfig { epochs: 3, merges: 80, ..Default::default() };
        let (_, nll) = BertLite::train(&c, &cfg, &mut StdRng::seed_from_u64(2));
        assert!(nll.last().unwrap() < nll.first().unwrap(), "masked NLL should fall: {nll:?}");
    }

    #[test]
    fn representations_are_bidirectional() {
        let c = corpus(30, 3);
        let (lm, _) = BertLite::train(
            &c,
            &BertConfig { epochs: 1, merges: 60, ..Default::default() },
            &mut StdRng::seed_from_u64(4),
        );
        let a: Vec<String> = ["Jordan", "visited", "Paris"].iter().map(|s| s.to_string()).collect();
        let b: Vec<String> = ["Jordan", "visited", "Tokyo"].iter().map(|s| s.to_string()).collect();
        let (ea, eb) = (lm.embed(&a), lm.embed(&b));
        assert_eq!(ea[0].len(), lm.dim());
        // Changing a future token DOES change position 0 (unlike GPT-lite).
        let diff: f32 = ea[0].iter().zip(&eb[0]).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6, "bidirectional embedding should see right context");
    }

    #[test]
    fn word_reps_average_their_pieces() {
        let c = corpus(20, 5);
        let (lm, _) = BertLite::train(
            &c,
            &BertConfig { epochs: 1, merges: 40, ..Default::default() },
            &mut StdRng::seed_from_u64(6),
        );
        let toks: Vec<String> = ["unbelievableword"].iter().map(|s| s.to_string()).collect();
        let e = lm.embed(&toks);
        assert_eq!(e.len(), 1);
        assert!(e[0].iter().all(|x| x.is_finite()));
    }
}
