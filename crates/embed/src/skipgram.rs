//! Skip-gram with negative sampling (word2vec; Mikolov et al. 2013).
//!
//! Implemented with direct manual updates (no autograd tape): each
//! (center, context) pair touches only two embedding rows plus `k` negative
//! rows, so the classic sparse-SGD formulation is both simpler and orders of
//! magnitude faster than a dense graph.

use crate::pretrained::WordEmbeddings;
use ner_tensor::Tensor;
use ner_text::Vocab;
use rand::Rng;

/// Skip-gram training hyperparameters.
#[derive(Clone, Debug)]
pub struct SkipGramConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Max context window radius (the effective radius is sampled 1..=window
    /// per center, as in word2vec).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 1e-4 of itself).
    pub lr: f32,
    /// Minimum token frequency for the vocabulary.
    pub min_count: usize,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig { dim: 32, window: 4, negatives: 5, epochs: 8, lr: 0.05, min_count: 2 }
    }
}

/// Unigram^0.75 negative-sampling table.
pub(crate) struct NegativeTable {
    table: Vec<usize>,
}

impl NegativeTable {
    /// Builds the table from raw token counts per vocab index.
    pub(crate) fn new(counts: &[usize]) -> Self {
        const TABLE_SIZE: usize = 100_000;
        let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = weights.iter().sum();
        let mut table = Vec::with_capacity(TABLE_SIZE);
        if total > 0.0 {
            for (i, w) in weights.iter().enumerate() {
                let n = ((w / total) * TABLE_SIZE as f64).round() as usize;
                table.extend(std::iter::repeat_n(i, n.max(if *w > 0.0 { 1 } else { 0 })));
            }
        }
        if table.is_empty() {
            table.push(0);
        }
        NegativeTable { table }
    }

    pub(crate) fn sample(&self, rng: &mut impl Rng) -> usize {
        self.table[rng.gen_range(0..self.table.len())]
    }
}

/// Counts corpus tokens per index of `vocab` (reserved entries get 0).
pub(crate) fn index_counts(corpus: &[Vec<String>], vocab: &Vocab) -> Vec<usize> {
    let mut counts = vec![0usize; vocab.len()];
    for sent in corpus {
        for tok in sent {
            if let Some(i) = vocab.get(&tok.to_lowercase()) {
                counts[i] += 1;
            }
        }
    }
    counts
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Trains skip-gram embeddings on a tokenized corpus.
pub fn train(corpus: &[Vec<String>], cfg: &SkipGramConfig, rng: &mut impl Rng) -> WordEmbeddings {
    let vocab =
        Vocab::build(corpus.iter().flat_map(|s| s.iter().map(|t| t.to_lowercase())), cfg.min_count);
    let counts = index_counts(corpus, &vocab);
    let negatives = NegativeTable::new(&counts);

    let v = vocab.len();
    let d = cfg.dim;
    // Input vectors small-uniform, output vectors zero (word2vec convention).
    let mut w_in: Vec<f32> = (0..v * d).map(|_| (rng.gen::<f32>() - 0.5) / d as f32).collect();
    let mut w_out: Vec<f32> = vec![0.0; v * d];

    let encoded: Vec<Vec<usize>> = corpus
        .iter()
        .map(|s| s.iter().filter_map(|t| vocab.get(&t.to_lowercase())).collect())
        .collect();
    let total_steps: usize = cfg.epochs * encoded.iter().map(Vec::len).sum::<usize>().max(1);
    let mut step = 0usize;

    let mut grad_center = vec![0.0f32; d];
    for _ in 0..cfg.epochs {
        for sent in &encoded {
            for (pos, &center) in sent.iter().enumerate() {
                step += 1;
                let lr = (cfg.lr * (1.0 - step as f32 / total_steps as f32)).max(cfg.lr * 1e-4);
                let radius = rng.gen_range(1..=cfg.window);
                let lo = pos.saturating_sub(radius);
                let hi = (pos + radius + 1).min(sent.len());
                for ctx_pos in lo..hi {
                    if ctx_pos == pos {
                        continue;
                    }
                    let context = sent[ctx_pos];
                    grad_center.iter_mut().for_each(|g| *g = 0.0);
                    // one positive + k negatives
                    for neg in 0..=cfg.negatives {
                        let (target, label) =
                            if neg == 0 { (context, 1.0) } else { (negatives.sample(rng), 0.0) };
                        if neg > 0 && target == context {
                            continue;
                        }
                        let ci = center * d;
                        let ti = target * d;
                        let dot: f32 = (0..d).map(|j| w_in[ci + j] * w_out[ti + j]).sum();
                        let err = (sigmoid(dot) - label) * lr;
                        for j in 0..d {
                            grad_center[j] += err * w_out[ti + j];
                            w_out[ti + j] -= err * w_in[ci + j];
                        }
                    }
                    let ci = center * d;
                    for j in 0..d {
                        w_in[ci + j] -= grad_center[j];
                    }
                }
            }
        }
    }

    WordEmbeddings::new(vocab, Tensor::from_vec(v, d, w_in))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn negative_table_prefers_frequent_items() {
        let table = NegativeTable::new(&[0, 0, 100, 1]);
        let mut rng = StdRng::seed_from_u64(1);
        let hits2 = (0..1000).filter(|_| table.sample(&mut rng) == 2).count();
        assert!(hits2 > 800, "frequent item should dominate, got {hits2}");
    }

    #[test]
    fn embeddings_capture_distributional_similarity() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let corpus = gen.lm_sentences(&mut rng, 1500);
        let cfg = SkipGramConfig { dim: 24, epochs: 4, ..Default::default() };
        let emb = train(&corpus, &cfg, &mut rng);

        // Words of the same entity class share contexts, so cities should be
        // closer to each other than to unrelated function words.
        let city_city = emb.cosine("brooklyn", "london");
        let city_func = emb.cosine("brooklyn", "percent");
        assert!(
            city_city > city_func,
            "city-city similarity {city_city} should exceed city-function {city_func}"
        );
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let corpus = gen.lm_sentences(&mut StdRng::seed_from_u64(3), 100);
        let cfg = SkipGramConfig { dim: 8, epochs: 1, ..Default::default() };
        let a = train(&corpus, &cfg, &mut StdRng::seed_from_u64(9));
        let b = train(&corpus, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.matrix(), b.matrix());
    }
}
