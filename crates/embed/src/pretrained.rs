//! The pretrained static word-embedding artifact shared by all trainers.

use ner_tensor::Tensor;
use ner_text::Vocab;
use serde::{Deserialize, Serialize};

/// A trained word-embedding table: vocabulary + `[vocab, dim]` matrix.
///
/// This is the workspace analog of "Google Word2Vec / Stanford GloVe /
/// SENNA" files (paper §3.2.1) — produced by the [`crate::skipgram`],
/// [`crate::cbow`] or [`crate::glove`] trainers and consumed by
/// `ner-core`'s word-representation layer, either *fixed* or *fine-tuned*
/// (both modes the paper describes).
#[derive(Clone, Serialize, Deserialize)]
pub struct WordEmbeddings {
    vocab: Vocab,
    matrix: Tensor,
}

impl WordEmbeddings {
    /// Wraps a vocabulary and its embedding matrix.
    ///
    /// # Panics
    /// Panics when the matrix row count differs from the vocabulary size.
    pub fn new(vocab: Vocab, matrix: Tensor) -> Self {
        assert_eq!(vocab.len(), matrix.rows(), "one embedding row per vocab item required");
        WordEmbeddings { vocab, matrix }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.matrix.cols()
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The full `[vocab, dim]` matrix.
    pub fn matrix(&self) -> &Tensor {
        &self.matrix
    }

    /// The vector of `word` (lowercased lookup), falling back to `<unk>`.
    pub fn vector(&self, word: &str) -> &[f32] {
        self.matrix.row(self.vocab.get_or_unk(&word.to_lowercase()))
    }

    /// Rescales every non-zero row to L2 norm `target`. Cosine geometry is
    /// unchanged; downstream networks get inputs on the scale their
    /// initializers assume. (Raw SGNS/GloVe vectors have norms ~1–5, an
    /// order of magnitude above typical embedding-layer init — feeding them
    /// unnormalized measurably hurts small-data fine-tuning.)
    pub fn normalize_rows(&mut self, target: f32) {
        for r in 0..self.matrix.rows() {
            let row = self.matrix.row_mut(r);
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                let s = target / norm;
                row.iter_mut().for_each(|x| *x *= s);
            }
        }
    }

    /// Cosine similarity between two words' vectors.
    pub fn cosine(&self, a: &str, b: &str) -> f32 {
        cosine(self.vector(a), self.vector(b))
    }

    /// The `k` nearest vocabulary items to `word` by cosine similarity
    /// (excluding the word itself and the reserved entries).
    pub fn nearest(&self, word: &str, k: usize) -> Vec<(String, f32)> {
        let target = self.vector(word).to_vec();
        let lower = word.to_lowercase();
        let mut scored: Vec<(String, f32)> = (2..self.vocab.len())
            .filter(|&i| self.vocab.item(i) != lower)
            .map(|i| (self.vocab.item(i).to_string(), cosine(&target, self.matrix.row(i))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

/// Cosine similarity of two equal-length vectors (0 when either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> WordEmbeddings {
        let mut vocab = Vocab::new();
        vocab.add("paris");
        vocab.add("london");
        vocab.add("banana");
        let matrix = Tensor::from_rows(&[
            &[0.0, 0.0],  // <pad>
            &[0.1, 0.1],  // <unk>
            &[1.0, 0.1],  // paris
            &[0.9, 0.2],  // london
            &[-0.1, 1.0], // banana
        ]);
        WordEmbeddings::new(vocab, matrix)
    }

    #[test]
    fn lookup_is_lowercased_with_unk_fallback() {
        let e = toy();
        assert_eq!(e.vector("Paris"), &[1.0, 0.1]);
        assert_eq!(e.vector("zzz"), &[0.1, 0.1]);
        assert_eq!(e.dim(), 2);
    }

    #[test]
    fn cosine_geometry() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn nearest_ranks_similar_words_first() {
        let e = toy();
        let nn = e.nearest("paris", 2);
        assert_eq!(nn[0].0, "london");
        assert!(nn[0].1 > nn[1].1);
    }

    #[test]
    #[should_panic(expected = "one embedding row")]
    fn shape_mismatch_rejected() {
        let _ = WordEmbeddings::new(Vocab::new(), Tensor::zeros(5, 2));
    }
}
