//! Contextual string embeddings from a character-level language model
//! (Akbik et al. 2018; paper Fig. 4 and Table 3 row \[106\]).
//!
//! A forward and a backward character LSTM LM are trained over raw sentence
//! character streams. A word's embedding is the concatenation of the
//! forward LM's hidden state after the word's **last** character and the
//! backward LM's hidden state at the word's **first** character — both
//! therefore condition on the word *and* its sentential context, so the same
//! word receives different vectors in different contexts (the polysemy
//! property highlighted in the paper).

use crate::ContextualEmbedder;
use ner_tensor::nn::{Embedding, Linear, LstmCell};
use ner_tensor::optim::{Adam, Optimizer};
use ner_tensor::{ParamStore, Tape};
use ner_text::Vocab;
use rand::Rng;

/// Character-LM hyperparameters.
#[derive(Clone, Debug)]
pub struct CharLmConfig {
    /// Character embedding dimensionality.
    pub dim: usize,
    /// LSTM hidden size per direction.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for CharLmConfig {
    fn default() -> Self {
        CharLmConfig { dim: 16, hidden: 32, epochs: 3, lr: 0.01 }
    }
}

/// A trained forward+backward character language model.
pub struct CharLm {
    vocab: Vocab,
    emb: Embedding,
    fw: LstmCell,
    bw: LstmCell,
    out_fw: Linear,
    out_bw: Linear,
    store: ParamStore,
    hidden: usize,
}

const BOS: &str = "<bos>";
const EOS: &str = "<eos>";

fn char_ids(vocab: &Vocab, tokens: &[String]) -> (Vec<usize>, Vec<(usize, usize)>) {
    // ids = [BOS] ++ chars of "tok₀ tok₁ …" ++ [EOS];
    // spans[k] = the [start, end) id-range of token k's characters.
    let mut ids = vec![vocab.get_or_unk(BOS)];
    let mut spans = Vec::with_capacity(tokens.len());
    for (k, tok) in tokens.iter().enumerate() {
        if k > 0 {
            ids.push(vocab.get_or_unk(" "));
        }
        let start = ids.len();
        for c in tok.chars() {
            ids.push(vocab.get_or_unk(&c.to_string()));
        }
        spans.push((start, ids.len()));
    }
    ids.push(vocab.get_or_unk(EOS));
    (ids, spans)
}

impl CharLm {
    /// Trains the model on a tokenized corpus; returns the model and the
    /// per-epoch average NLL-per-character (should be decreasing).
    pub fn train(
        corpus: &[Vec<String>],
        cfg: &CharLmConfig,
        rng: &mut impl Rng,
    ) -> (Self, Vec<f32>) {
        let mut vocab = Vocab::new();
        vocab.add(BOS);
        vocab.add(EOS);
        vocab.add(" ");
        for sent in corpus {
            for tok in sent {
                for c in tok.chars() {
                    vocab.add(&c.to_string());
                }
            }
        }

        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, rng, "charlm.emb", vocab.len(), cfg.dim);
        let fw = LstmCell::new(&mut store, rng, "charlm.fw", cfg.dim, cfg.hidden);
        let bw = LstmCell::new(&mut store, rng, "charlm.bw", cfg.dim, cfg.hidden);
        let out_fw = Linear::new(&mut store, rng, "charlm.out_fw", cfg.hidden, vocab.len());
        let out_bw = Linear::new(&mut store, rng, "charlm.out_bw", cfg.hidden, vocab.len());

        let mut model = CharLm { vocab, emb, fw, bw, out_fw, out_bw, store, hidden: cfg.hidden };
        let mut opt = Adam::new(cfg.lr);
        let mut epoch_nll = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            let mut total = 0.0f64;
            let mut chars = 0usize;
            for sent in corpus {
                let (ids, _) = char_ids(&model.vocab, sent);
                if ids.len() < 3 {
                    continue;
                }
                let mut tape = Tape::new();
                let loss = model.lm_loss(&mut tape, &ids);
                total += tape.value(loss).item() as f64;
                chars += 2 * (ids.len() - 1);
                tape.backward(loss, &mut model.store);
                model.store.clip_grad_norm(5.0);
                opt.step(&mut model.store);
            }
            epoch_nll.push((total / chars.max(1) as f64) as f32);
        }
        (model, epoch_nll)
    }

    /// Combined forward+backward LM loss (summed NLL) for one id sequence.
    fn lm_loss(&self, tape: &mut Tape, ids: &[usize]) -> ner_tensor::Var {
        let n = ids.len();
        // Forward: consume ids[..n-1], predict ids[1..].
        let x = self.emb.lookup(tape, &self.store, &ids[..n - 1]);
        let hs = self.fw.sequence(tape, &self.store, x);
        let logits = self.out_fw.forward(tape, &self.store, hs);
        let loss_f = tape.cross_entropy_sum(logits, &ids[1..]);
        // Backward: consume reversed ids[1..], predict the token before each.
        let rev: Vec<usize> = ids[1..].iter().rev().copied().collect();
        let targets_rev: Vec<usize> = ids[..n - 1].iter().rev().copied().collect();
        let xb = self.emb.lookup(tape, &self.store, &rev);
        let hb = self.bw.sequence(tape, &self.store, xb);
        let logits_b = self.out_bw.forward(tape, &self.store, hb);
        let loss_b = tape.cross_entropy_sum(logits_b, &targets_rev);
        tape.add(loss_f, loss_b)
    }

    /// Average NLL per character over a held-out corpus (exp → perplexity).
    pub fn nll_per_char(&self, corpus: &[Vec<String>]) -> f64 {
        let mut total = 0.0f64;
        let mut chars = 0usize;
        for sent in corpus {
            let (ids, _) = char_ids(&self.vocab, sent);
            if ids.len() < 3 {
                continue;
            }
            let mut tape = Tape::new();
            let loss = self.lm_loss(&mut tape, &ids);
            total += tape.value(loss).item() as f64;
            chars += 2 * (ids.len() - 1);
        }
        total / chars.max(1) as f64
    }

    /// The character vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }
}

impl ContextualEmbedder for CharLm {
    fn dim(&self) -> usize {
        2 * self.hidden
    }

    fn embed(&self, tokens: &[String]) -> Vec<Vec<f32>> {
        if tokens.is_empty() {
            return vec![];
        }
        let (ids, spans) = char_ids(&self.vocab, tokens);
        let mut tape = Tape::new();
        let x = self.emb.lookup(&mut tape, &self.store, &ids);
        let fw_out = self.fw.sequence(&mut tape, &self.store, x);
        let bw_out = self.bw.sequence_rev(&mut tape, &self.store, x);
        let fw_v = tape.value(fw_out);
        let bw_v = tape.value(bw_out);
        spans
            .iter()
            .map(|&(s, e)| {
                let mut v = Vec::with_capacity(2 * self.hidden);
                v.extend_from_slice(fw_v.row(e - 1)); // after the last char
                v.extend_from_slice(bw_v.row(s)); // backward state at the first char
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_corpus(n: usize, seed: u64) -> Vec<Vec<String>> {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        gen.lm_sentences(&mut StdRng::seed_from_u64(seed), n)
    }

    #[test]
    fn char_ids_spans_are_correct() {
        let mut vocab = Vocab::new();
        vocab.add(BOS);
        vocab.add(EOS);
        vocab.add(" ");
        for c in "abc".chars() {
            vocab.add(&c.to_string());
        }
        let tokens = vec!["ab".to_string(), "c".to_string()];
        let (ids, spans) = char_ids(&vocab, &tokens);
        // [BOS] a b ' ' c [EOS]
        assert_eq!(ids.len(), 6);
        assert_eq!(spans, vec![(1, 3), (4, 5)]);
    }

    #[test]
    fn training_reduces_nll() {
        let corpus = tiny_corpus(60, 1);
        let cfg = CharLmConfig { epochs: 3, hidden: 24, ..Default::default() };
        let (_, nll) = CharLm::train(&corpus, &cfg, &mut StdRng::seed_from_u64(2));
        assert!(nll.last().unwrap() < nll.first().unwrap(), "NLL should fall: {nll:?}");
    }

    #[test]
    fn embeddings_are_contextual() {
        let corpus = tiny_corpus(60, 3);
        let cfg = CharLmConfig { epochs: 2, ..Default::default() };
        let (lm, _) = CharLm::train(&corpus, &cfg, &mut StdRng::seed_from_u64(4));
        let a: Vec<String> = ["Jordan", "visited", "Paris"].iter().map(|s| s.to_string()).collect();
        let b: Vec<String> = ["shares", "of", "Jordan"].iter().map(|s| s.to_string()).collect();
        let ea = lm.embed(&a);
        let eb = lm.embed(&b);
        assert_eq!(ea[0].len(), lm.dim());
        // Same surface "Jordan", different contexts → different vectors.
        let diff: f32 = ea[0].iter().zip(&eb[2]).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "contextual embeddings must differ across contexts");
    }

    #[test]
    fn empty_sentence_embeds_to_empty() {
        let corpus = tiny_corpus(20, 5);
        let (lm, _) = CharLm::train(
            &corpus,
            &CharLmConfig { epochs: 1, ..Default::default() },
            &mut StdRng::seed_from_u64(6),
        );
        assert!(lm.embed(&[]).is_empty());
    }
}
