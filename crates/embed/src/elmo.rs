//! ELMo-style contextual embeddings from a word-level bidirectional LSTM
//! language model (Peters et al. 2018; paper §3.3.4, Fig. 11 right).
//!
//! A forward LM predicts the next word, an independent backward LM predicts
//! the previous word; a token's contextual representation concatenates the
//! two hidden states at its position. Following the original ELMo recipe the
//! two directions share the input embedding table but nothing else.

use crate::ContextualEmbedder;
use ner_tensor::nn::{Embedding, Linear, LstmCell};
use ner_tensor::optim::{Adam, Optimizer};
use ner_tensor::{ParamStore, Tape};
use ner_text::Vocab;
use rand::Rng;

/// ELMo-lite hyperparameters.
#[derive(Clone, Debug)]
pub struct ElmoConfig {
    /// Word embedding dimensionality.
    pub dim: usize,
    /// LSTM hidden size per direction.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Vocabulary frequency floor.
    pub min_count: usize,
}

impl Default for ElmoConfig {
    fn default() -> Self {
        ElmoConfig { dim: 24, hidden: 32, epochs: 3, lr: 0.01, min_count: 1 }
    }
}

/// A trained bidirectional word-level LM.
pub struct ElmoLm {
    vocab: Vocab,
    emb: Embedding,
    fw: LstmCell,
    bw: LstmCell,
    out_fw: Linear,
    out_bw: Linear,
    store: ParamStore,
    hidden: usize,
}

const BOS: &str = "<s>";
const EOS: &str = "</s>";

impl ElmoLm {
    fn ids(&self, tokens: &[String]) -> Vec<usize> {
        let mut ids = vec![self.vocab.get_or_unk(BOS)];
        ids.extend(tokens.iter().map(|t| self.vocab.get_or_unk(&t.to_lowercase())));
        ids.push(self.vocab.get_or_unk(EOS));
        ids
    }

    /// Trains on a tokenized corpus; returns the model and per-epoch average
    /// NLL per prediction.
    pub fn train(corpus: &[Vec<String>], cfg: &ElmoConfig, rng: &mut impl Rng) -> (Self, Vec<f32>) {
        let mut vocab = Vocab::build(
            corpus.iter().flat_map(|s| s.iter().map(|t| t.to_lowercase())),
            cfg.min_count,
        );
        vocab.add(BOS);
        vocab.add(EOS);

        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, rng, "elmo.emb", vocab.len(), cfg.dim);
        let fw = LstmCell::new(&mut store, rng, "elmo.fw", cfg.dim, cfg.hidden);
        let bw = LstmCell::new(&mut store, rng, "elmo.bw", cfg.dim, cfg.hidden);
        let out_fw = Linear::new(&mut store, rng, "elmo.out_fw", cfg.hidden, vocab.len());
        let out_bw = Linear::new(&mut store, rng, "elmo.out_bw", cfg.hidden, vocab.len());
        let mut model = ElmoLm { vocab, emb, fw, bw, out_fw, out_bw, store, hidden: cfg.hidden };

        let mut opt = Adam::new(cfg.lr);
        let mut epoch_nll = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut total = 0.0f64;
            let mut preds = 0usize;
            for sent in corpus {
                let ids = model.ids(sent);
                if ids.len() < 3 {
                    continue;
                }
                let mut tape = Tape::new();
                let loss = model.lm_loss(&mut tape, &ids);
                total += tape.value(loss).item() as f64;
                preds += 2 * (ids.len() - 1);
                tape.backward(loss, &mut model.store);
                model.store.clip_grad_norm(5.0);
                opt.step(&mut model.store);
            }
            epoch_nll.push((total / preds.max(1) as f64) as f32);
        }
        (model, epoch_nll)
    }

    fn lm_loss(&self, tape: &mut Tape, ids: &[usize]) -> ner_tensor::Var {
        let n = ids.len();
        let x = self.emb.lookup(tape, &self.store, &ids[..n - 1]);
        let hs = self.fw.sequence(tape, &self.store, x);
        let logits = self.out_fw.forward(tape, &self.store, hs);
        let loss_f = tape.cross_entropy_sum(logits, &ids[1..]);

        let rev: Vec<usize> = ids[1..].iter().rev().copied().collect();
        let targets_rev: Vec<usize> = ids[..n - 1].iter().rev().copied().collect();
        let xb = self.emb.lookup(tape, &self.store, &rev);
        let hb = self.bw.sequence(tape, &self.store, xb);
        let logits_b = self.out_bw.forward(tape, &self.store, hb);
        let loss_b = tape.cross_entropy_sum(logits_b, &targets_rev);
        tape.add(loss_f, loss_b)
    }

    /// Average NLL per prediction on held-out data.
    pub fn nll(&self, corpus: &[Vec<String>]) -> f64 {
        let mut total = 0.0f64;
        let mut preds = 0usize;
        for sent in corpus {
            let ids = self.ids(sent);
            if ids.len() < 3 {
                continue;
            }
            let mut tape = Tape::new();
            let loss = self.lm_loss(&mut tape, &ids);
            total += tape.value(loss).item() as f64;
            preds += 2 * (ids.len() - 1);
        }
        total / preds.max(1) as f64
    }
}

impl ContextualEmbedder for ElmoLm {
    fn dim(&self) -> usize {
        2 * self.hidden
    }

    fn embed(&self, tokens: &[String]) -> Vec<Vec<f32>> {
        if tokens.is_empty() {
            return vec![];
        }
        let ids = self.ids(tokens);
        let mut tape = Tape::new();
        let x = self.emb.lookup(&mut tape, &self.store, &ids);
        let fw_out = self.fw.sequence(&mut tape, &self.store, x);
        let bw_out = self.bw.sequence_rev(&mut tape, &self.store, x);
        let fw_v = tape.value(fw_out);
        let bw_v = tape.value(bw_out);
        // Token k sits at id position k+1 (after BOS).
        (0..tokens.len())
            .map(|k| {
                let mut v = Vec::with_capacity(2 * self.hidden);
                v.extend_from_slice(fw_v.row(k + 1));
                v.extend_from_slice(bw_v.row(k + 1));
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus(n: usize, seed: u64) -> Vec<Vec<String>> {
        NewsGenerator::new(GeneratorConfig::default())
            .lm_sentences(&mut StdRng::seed_from_u64(seed), n)
    }

    #[test]
    fn training_reduces_nll() {
        let c = corpus(60, 1);
        let cfg = ElmoConfig { epochs: 3, ..Default::default() };
        let (_, nll) = ElmoLm::train(&c, &cfg, &mut StdRng::seed_from_u64(2));
        assert!(nll.last().unwrap() < nll.first().unwrap(), "NLL should fall: {nll:?}");
    }

    #[test]
    fn embeddings_have_declared_dim_and_are_contextual() {
        let c = corpus(60, 3);
        let (lm, _) = ElmoLm::train(
            &c,
            &ElmoConfig { epochs: 2, ..Default::default() },
            &mut StdRng::seed_from_u64(4),
        );
        let s1: Vec<String> =
            ["Jordan", "visited", "Paris"].iter().map(|s| s.to_string()).collect();
        let s2: Vec<String> = ["shares", "of", "Jordan"].iter().map(|s| s.to_string()).collect();
        let (e1, e2) = (lm.embed(&s1), lm.embed(&s2));
        assert_eq!(e1.len(), 3);
        assert_eq!(e1[0].len(), lm.dim());
        let diff: f32 = e1[0].iter().zip(&e2[2]).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "same word in different contexts must differ");
    }

    #[test]
    fn held_out_nll_is_finite() {
        let c = corpus(40, 5);
        let (lm, _) = ElmoLm::train(
            &c,
            &ElmoConfig { epochs: 1, ..Default::default() },
            &mut StdRng::seed_from_u64(6),
        );
        let held = corpus(10, 99);
        assert!(lm.nll(&held).is_finite());
    }
}
