//! Dataset profiles reproducing the paper's Table 1 inventory.
//!
//! Each profile records a Table 1 row (corpus, year, source, #tags) and, for
//! the corpora this workspace can emulate, the generator configuration of
//! its synthetic analog. The `exp_table1` harness prints the inventory next
//! to measured statistics of each analog.

use crate::generator::GeneratorConfig;
use crate::noise::NoiseModel;
use serde::Serialize;

/// One row of the Table 1 inventory, with an optional synthetic analog.
#[derive(Clone, Debug, Serialize)]
pub struct DatasetProfile {
    /// Corpus name as listed in Table 1.
    pub name: &'static str,
    /// Publication year(s).
    pub year: &'static str,
    /// Text source.
    pub source: &'static str,
    /// Number of entity types ("#Tags").
    pub tags: usize,
    /// How this workspace emulates the corpus, if it does.
    pub analog: Analog,
}

/// The synthetic analog of a profiled corpus.
#[derive(Clone, Debug, Serialize)]
pub enum Analog {
    /// Clean news-register generation (CoNLL/MUC/OntoNotes-style).
    News {
        /// Fine-grained subtypes on/off.
        fine_grained: bool,
    },
    /// News generation followed by the social-media noise channel (W-NUT).
    Noisy,
    /// Nested-entity generation (GENIA/ACE-style).
    Nested,
    /// Not emulated (domain out of scope, e.g. biomedical corpora).
    None,
}

impl DatasetProfile {
    /// Generator configuration for this profile's analog, or `None` when the
    /// corpus is not emulated.
    pub fn generator_config(&self) -> Option<GeneratorConfig> {
        match self.analog {
            Analog::News { fine_grained } => {
                Some(GeneratorConfig { fine_grained, ..GeneratorConfig::default() })
            }
            Analog::Noisy => Some(GeneratorConfig::default()),
            Analog::Nested => Some(GeneratorConfig {
                annotate_nested: true,
                institution_rate: 0.35,
                ..GeneratorConfig::default()
            }),
            Analog::None => None,
        }
    }

    /// Noise channel to apply after generation (only the W-NUT analog).
    pub fn noise_model(&self) -> Option<NoiseModel> {
        matches!(self.analog, Analog::Noisy).then(NoiseModel::social_media)
    }
}

/// The Table 1 inventory (the widely-used general-domain subset, plus the
/// biomedical rows recorded for completeness).
pub fn table1_profiles() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile {
            name: "MUC-6",
            year: "1995",
            source: "Wall Street Journal",
            tags: 7,
            analog: Analog::News { fine_grained: false },
        },
        DatasetProfile {
            name: "MUC-7",
            year: "1997",
            source: "New York Times news",
            tags: 7,
            analog: Analog::News { fine_grained: false },
        },
        DatasetProfile {
            name: "CoNLL03",
            year: "2003",
            source: "Reuters news",
            tags: 4,
            analog: Analog::News { fine_grained: false },
        },
        DatasetProfile {
            name: "ACE",
            year: "2000-2008",
            source: "Transcripts, news",
            tags: 7,
            analog: Analog::Nested,
        },
        DatasetProfile {
            name: "OntoNotes",
            year: "2007-2012",
            source: "Magazine, news, web",
            tags: 18,
            analog: Analog::News { fine_grained: true },
        },
        DatasetProfile {
            name: "W-NUT",
            year: "2015-2018",
            source: "User-generated text",
            tags: 6,
            analog: Analog::Noisy,
        },
        DatasetProfile {
            name: "BBN",
            year: "2005",
            source: "Wall Street Journal",
            tags: 64,
            analog: Analog::News { fine_grained: true },
        },
        DatasetProfile {
            name: "WikiGold",
            year: "2009",
            source: "Wikipedia",
            tags: 4,
            analog: Analog::News { fine_grained: false },
        },
        DatasetProfile {
            name: "WiNER",
            year: "2012",
            source: "Wikipedia",
            tags: 4,
            analog: Analog::News { fine_grained: false },
        },
        DatasetProfile {
            name: "WikiFiger",
            year: "2012",
            source: "Wikipedia",
            tags: 112,
            analog: Analog::News { fine_grained: true },
        },
        DatasetProfile {
            name: "HYENA",
            year: "2012",
            source: "Wikipedia",
            tags: 505,
            analog: Analog::None,
        },
        DatasetProfile {
            name: "N3",
            year: "2014",
            source: "News",
            tags: 3,
            analog: Analog::News { fine_grained: false },
        },
        DatasetProfile {
            name: "Gillick",
            year: "2016",
            source: "Magazine, news, web",
            tags: 89,
            analog: Analog::None,
        },
        DatasetProfile {
            name: "FG-NER",
            year: "2018",
            source: "Various",
            tags: 200,
            analog: Analog::None,
        },
        DatasetProfile {
            name: "NNE",
            year: "2019",
            source: "Newswire",
            tags: 114,
            analog: Analog::Nested,
        },
        DatasetProfile {
            name: "GENIA",
            year: "2004",
            source: "Biology and clinical text",
            tags: 36,
            analog: Analog::Nested,
        },
        DatasetProfile {
            name: "GENETAG",
            year: "2005",
            source: "MEDLINE",
            tags: 2,
            analog: Analog::None,
        },
        DatasetProfile {
            name: "FSU-PRGE",
            year: "2010",
            source: "PubMed and MEDLINE",
            tags: 5,
            analog: Analog::None,
        },
        DatasetProfile {
            name: "NCBI-Disease",
            year: "2014",
            source: "PubMed",
            tags: 1,
            analog: Analog::None,
        },
        DatasetProfile {
            name: "BC5CDR",
            year: "2015",
            source: "PubMed",
            tags: 3,
            analog: Analog::None,
        },
        DatasetProfile {
            name: "DFKI",
            year: "2018",
            source: "Business news and social media",
            tags: 7,
            analog: Analog::Noisy,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::NewsGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn inventory_matches_table1_row_count() {
        assert_eq!(table1_profiles().len(), 21);
    }

    #[test]
    fn conll_profile_generates_four_types() {
        let p = table1_profiles().into_iter().find(|p| p.name == "CoNLL03").unwrap();
        let cfg = p.generator_config().unwrap();
        let ds = NewsGenerator::new(cfg).dataset(&mut StdRng::seed_from_u64(1), 200);
        assert_eq!(ds.entity_types().len(), 4);
    }

    #[test]
    fn nested_profile_produces_nesting() {
        let p = table1_profiles().into_iter().find(|p| p.name == "GENIA").unwrap();
        let cfg = p.generator_config().unwrap();
        let ds = NewsGenerator::new(cfg).dataset(&mut StdRng::seed_from_u64(1), 300);
        assert!(ds.stats().nested_fraction > 0.05);
    }

    #[test]
    fn wnut_profile_has_noise_model() {
        let p = table1_profiles().into_iter().find(|p| p.name == "W-NUT").unwrap();
        assert!(p.noise_model().is_some());
        let p2 = table1_profiles().into_iter().find(|p| p.name == "CoNLL03").unwrap();
        assert!(p2.noise_model().is_none());
    }
}
