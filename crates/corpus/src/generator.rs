//! The news-register corpus generator — this workspace's stand-in for the
//! licensed CoNLL-2003 / OntoNotes corpora (see DESIGN.md §1).

use crate::lexicon::{self, PoolSplit};
use crate::templates::{self, ContextKind, Piece, SlotKind, Template};
use ner_text::{Dataset, EntitySpan, Sentence};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration of the generator.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Probability that an entity mention is drawn from the held-out pool
    /// (manufactures *unseen* entities, paper §5.1). Use `0.0` for training
    /// data and a positive rate for unseen-entity test sets.
    pub unseen_entity_rate: f64,
    /// Emit fine-grained subtype labels (`LOC.city`, `ORG.institution`, …)
    /// instead of the coarse CoNLL four.
    pub fine_grained: bool,
    /// Fraction of ORG mentions realized as institutional patterns
    /// ("University of X") that *contain a location*.
    pub institution_rate: f64,
    /// Annotate the inner LOC of institutional ORGs as a nested entity
    /// (GENIA/ACE-style nesting, §5.1). With `false`, only the outer ORG is
    /// annotated (flat projection).
    pub annotate_nested: bool,
    /// Hold out every k-th lexicon item for unseen-entity generation.
    pub hold_every: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            unseen_entity_rate: 0.0,
            fine_grained: false,
            institution_rate: 0.15,
            annotate_nested: false,
            hold_every: 5,
        }
    }
}

/// Generates annotated news-register sentences from the template grammar.
pub struct NewsGenerator {
    cfg: GeneratorConfig,
    templates: Vec<Template>,
    fillers: Vec<Template>,
    first_names: PoolSplit,
    last_names: PoolSplit,
    cities: PoolSplit,
    countries: PoolSplit,
    org_cores: PoolSplit,
    nationalities: PoolSplit,
}

/// A realized entity mention: its tokens, its label, and an optional nested
/// inner entity given as (relative start, relative end, label).
struct Realized {
    tokens: Vec<String>,
    label: String,
    inner: Option<(usize, usize, String)>,
}

impl NewsGenerator {
    /// Creates a generator with the bundled lexicons and template bank.
    pub fn new(cfg: GeneratorConfig) -> Self {
        let k = cfg.hold_every;
        NewsGenerator {
            templates: templates::news_templates(),
            fillers: templates::filler_templates(),
            first_names: lexicon::split_pool(lexicon::FIRST_NAMES, k),
            last_names: lexicon::split_pool(lexicon::LAST_NAMES, k),
            cities: lexicon::split_pool(lexicon::CITIES, k),
            countries: lexicon::split_pool(lexicon::COUNTRIES, k),
            org_cores: lexicon::split_pool(lexicon::ORG_CORES, k),
            nationalities: lexicon::split_pool(lexicon::NATIONALITIES, k),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.cfg
    }

    fn pick<'a>(&self, rng: &mut impl Rng, pool: &'a PoolSplit) -> &'a str {
        let unseen = !pool.held_out.is_empty() && rng.gen_bool(self.cfg.unseen_entity_rate);
        let source = if unseen { &pool.held_out } else { &pool.seen };
        source.choose(rng).expect("lexicon pools are non-empty")
    }

    fn label(&self, coarse: &str, fine: &str) -> String {
        if self.cfg.fine_grained {
            format!("{coarse}.{fine}")
        } else {
            coarse.to_string()
        }
    }

    fn realize_per(&self, rng: &mut impl Rng) -> Realized {
        let first = self.pick(rng, &self.first_names).to_string();
        let tokens = match rng.gen_range(0..10) {
            0 => vec![first],
            1 | 2 => vec![
                first,
                self.pick(rng, &self.first_names).to_string(),
                self.pick(rng, &self.last_names).to_string(),
            ],
            _ => vec![first, self.pick(rng, &self.last_names).to_string()],
        };
        Realized { tokens, label: self.label("PER", "person"), inner: None }
    }

    fn realize_loc(&self, rng: &mut impl Rng) -> Realized {
        match rng.gen_range(0..20) {
            0..=10 => Realized {
                tokens: vec![self.pick(rng, &self.cities).to_string()],
                label: self.label("LOC", "city"),
                inner: None,
            },
            11..=16 => Realized {
                tokens: vec![self.pick(rng, &self.countries).to_string()],
                label: self.label("LOC", "country"),
                inner: None,
            },
            _ => {
                let dir =
                    ["Northern", "Southern", "Eastern", "Western"].choose(rng).expect("non-empty");
                Realized {
                    tokens: vec![dir.to_string(), self.pick(rng, &self.countries).to_string()],
                    label: self.label("LOC", "region"),
                    inner: None,
                }
            }
        }
    }

    fn realize_org(&self, rng: &mut impl Rng) -> Realized {
        if rng.gen_bool(self.cfg.institution_rate) {
            // "University of Singapore" — ORG with a LOC inside.
            let head = lexicon::ORG_INSTITUTION_HEADS.choose(rng).expect("non-empty");
            let (place_pool, subtype) = if rng.gen_bool(0.5) {
                (&self.cities, "city")
            } else {
                (&self.countries, "country")
            };
            let place = self.pick(rng, place_pool).to_string();
            let inner_label = self.label("LOC", subtype);
            Realized {
                tokens: vec![head.to_string(), "of".to_string(), place],
                label: self.label("ORG", "institution"),
                inner: Some((2, 3, inner_label)),
            }
        } else {
            let core = self.pick(rng, &self.org_cores).to_string();
            let suffix = lexicon::ORG_SUFFIXES.choose(rng).expect("non-empty");
            Realized {
                tokens: vec![core, suffix.to_string()],
                label: self.label("ORG", "company"),
                inner: None,
            }
        }
    }

    fn realize_misc(&self, rng: &mut impl Rng) -> Realized {
        if rng.gen_bool(0.7) {
            Realized {
                tokens: vec![self.pick(rng, &self.nationalities).to_string()],
                label: self.label("MISC", "nationality"),
                inner: None,
            }
        } else {
            let event = lexicon::EVENTS.choose(rng).expect("non-empty");
            Realized {
                tokens: event.split_whitespace().map(str::to_string).collect(),
                label: self.label("MISC", "event"),
                inner: None,
            }
        }
    }

    fn realize(&self, rng: &mut impl Rng, kind: SlotKind) -> Realized {
        match kind {
            SlotKind::Per => self.realize_per(rng),
            SlotKind::Loc => self.realize_loc(rng),
            SlotKind::Org => self.realize_org(rng),
            SlotKind::Misc => self.realize_misc(rng),
        }
    }

    fn context_token(&self, rng: &mut impl Rng, kind: ContextKind) -> String {
        match kind {
            ContextKind::Role => lexicon::ROLES.choose(rng).expect("non-empty").to_string(),
            ContextKind::Day => lexicon::DAYS.choose(rng).expect("non-empty").to_string(),
            ContextKind::Num => {
                if rng.gen_bool(0.2) {
                    format!("{}.{}", rng.gen_range(1..20), rng.gen_range(1..10))
                } else {
                    rng.gen_range(2..95).to_string()
                }
            }
        }
    }

    /// Instantiates `template` into an annotated sentence.
    pub fn instantiate(&self, rng: &mut impl Rng, template: &Template) -> Sentence {
        let mut tokens: Vec<String> = Vec::new();
        let mut entities: Vec<EntitySpan> = Vec::new();
        for piece in &template.pieces {
            match piece {
                Piece::Lit(t) => tokens.push((*t).to_string()),
                Piece::Context(kind) => tokens.push(self.context_token(rng, *kind)),
                Piece::Entity(kind, _) => {
                    let realized = self.realize(rng, *kind);
                    let start = tokens.len();
                    let end = start + realized.tokens.len();
                    tokens.extend(realized.tokens);
                    entities.push(EntitySpan::new(start, end, realized.label));
                    if self.cfg.annotate_nested {
                        if let Some((s, e, label)) = realized.inner {
                            entities.push(EntitySpan::new(start + s, start + e, label));
                        }
                    }
                }
            }
        }
        Sentence::new(&tokens, entities)
    }

    /// Generates one random annotated sentence.
    pub fn sentence(&self, rng: &mut impl Rng) -> Sentence {
        let template = self.templates.choose(rng).expect("template bank is non-empty");
        self.instantiate(rng, template)
    }

    /// Generates a dataset of `n` sentences.
    pub fn dataset(&self, rng: &mut impl Rng, n: usize) -> Dataset {
        Dataset::new((0..n).map(|_| self.sentence(rng)).collect())
    }

    /// Generates `n` *unlabeled* token sequences (news + entity-free filler)
    /// for embedding / language-model pretraining.
    pub fn lm_sentences(&self, rng: &mut impl Rng, n: usize) -> Vec<Vec<String>> {
        (0..n)
            .map(|_| {
                let s = if rng.gen_bool(0.25) {
                    let t = self.fillers.choose(rng).expect("non-empty");
                    self.instantiate(rng, t)
                } else {
                    self.sentence(rng)
                };
                s.tokens.into_iter().map(|t| t.text).collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_annotated_sentences() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(11);
        let ds = gen.dataset(&mut rng, 200);
        let stats = ds.stats();
        assert_eq!(stats.sentences, 200);
        assert!(stats.entities >= 200, "every template has at least one entity");
        let types = ds.entity_types();
        assert!(types.contains(&"PER".to_string()));
        assert!(types.contains(&"LOC".to_string()));
        assert!(types.contains(&"ORG".to_string()));
        assert!(types.contains(&"MISC".to_string()));
        // All sentences produce valid BIO taggings.
        for s in &ds.sentences {
            let tags = s.tags(TagScheme::Bio);
            assert!(TagScheme::Bio.is_valid(&tags));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let a = gen.dataset(&mut StdRng::seed_from_u64(7), 20);
        let b = gen.dataset(&mut StdRng::seed_from_u64(7), 20);
        assert_eq!(a, b);
    }

    #[test]
    fn unseen_rate_produces_novel_surfaces() {
        let seen_gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let train = seen_gen.dataset(&mut rng, 400);
        let train_surfaces = train.entity_surfaces();

        let unseen_gen = NewsGenerator::new(GeneratorConfig {
            unseen_entity_rate: 1.0,
            ..GeneratorConfig::default()
        });
        let test = unseen_gen.dataset(&mut rng, 100);
        let novel = test.entity_surfaces().iter().filter(|s| !train_surfaces.contains(*s)).count();
        assert!(
            novel as f64 / test.entity_surfaces().len() as f64 > 0.5,
            "held-out pools should yield mostly novel entity surfaces"
        );
    }

    #[test]
    fn fine_grained_labels_have_subtypes() {
        let gen = NewsGenerator::new(GeneratorConfig { fine_grained: true, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(5);
        let ds = gen.dataset(&mut rng, 100);
        let types = ds.entity_types();
        assert!(types.iter().all(|t| t.contains('.')));
        assert!(types.len() > 4, "fine-grained mode should yield more types, got {types:?}");
    }

    #[test]
    fn nested_mode_annotates_inner_locations() {
        let gen = NewsGenerator::new(GeneratorConfig {
            annotate_nested: true,
            institution_rate: 1.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(9);
        let ds = gen.dataset(&mut rng, 100);
        let nested: usize = ds.sentences.iter().map(|s| s.nested_entities().len()).sum();
        assert!(nested > 0, "institutional ORGs should contain nested LOCs");
        assert!(ds.stats().nested_fraction > 0.1);
    }

    #[test]
    fn lm_sentences_are_plain_token_lists() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let sents = gen.lm_sentences(&mut rng, 50);
        assert_eq!(sents.len(), 50);
        assert!(sents.iter().all(|s| !s.is_empty()));
    }
}
