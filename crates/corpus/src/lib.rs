//! # ner-corpus — synthetic NER corpora for `neural-ner`
//!
//! The licensed corpora of the survey's Table 1 (CoNLL-2003, OntoNotes,
//! W-NUT, GENIA, …) cannot be redistributed, so this crate builds faithful
//! synthetic analogs (the substitution table lives in DESIGN.md §1):
//!
//! * [`generator`] — a template-grammar news generator over bundled
//!   [`lexicon`]s, with controllable unseen-entity rate, fine-grained
//!   subtypes and nested institutional entities.
//! * [`noise`] — the W-NUT-style user-generated-text channel (casing loss,
//!   typos, slang, hashtags) that preserves gold spans.
//! * [`distant`] — the distant-supervision *label*-noise channel (§4.4).
//! * [`profiles`] — the Table 1 inventory mapped to analog configurations.

#![warn(missing_docs)]

pub mod distant;
pub mod generator;
pub mod lexicon;
pub mod noise;
pub mod profiles;
pub mod templates;

pub use generator::{GeneratorConfig, NewsGenerator};
pub use noise::NoiseModel;
