//! Bundled entity lexicons.
//!
//! These stand in for the licensed name inventories inside CoNLL-2003 /
//! OntoNotes (see DESIGN.md §1). Pools are intentionally moderate in size so
//! that (a) models must generalize across combinations and (b) a holdout
//! split can manufacture genuinely *unseen* entities (paper §5.1).

/// Given names (PER first tokens).
pub const FIRST_NAMES: &[&str] = &[
    "Michael", "Sarah", "David", "Elena", "James", "Maria", "Robert", "Anna", "John", "Laura",
    "Thomas", "Sofia", "Daniel", "Emma", "Peter", "Julia", "Andrew", "Nina", "Carlos", "Aisha",
    "Kenji", "Priya", "Ivan", "Fatima", "Lars", "Mei", "Omar", "Ingrid", "Pablo", "Yuki", "Ahmed",
    "Chloe", "Viktor", "Amara", "Hassan", "Greta", "Mateo", "Leila", "Stefan", "Rosa", "Dmitri",
    "Hannah", "Rajesh", "Clara", "Felipe", "Noor", "Gustav", "Amina", "Marco", "Iris", "Tariq",
    "Elsa", "Javier", "Mira", "Anders", "Zara", "Kwame", "Lena", "Hiroshi", "Petra",
];

/// Family names (PER last tokens).
pub const LAST_NAMES: &[&str] = &[
    "Jordan",
    "Chen",
    "Smith",
    "Garcia",
    "Johnson",
    "Kim",
    "Brown",
    "Patel",
    "Miller",
    "Nguyen",
    "Davis",
    "Kowalski",
    "Wilson",
    "Sato",
    "Anderson",
    "Silva",
    "Taylor",
    "Ivanov",
    "Moore",
    "Hassan",
    "Jackson",
    "Tanaka",
    "Martin",
    "Okafor",
    "Lee",
    "Novak",
    "Walker",
    "Fernandez",
    "Hall",
    "Yamamoto",
    "Young",
    "Petrov",
    "King",
    "Santos",
    "Wright",
    "Haddad",
    "Scott",
    "Lindgren",
    "Green",
    "Rossi",
    "Baker",
    "Dubois",
    "Adams",
    "Karlsson",
    "Nelson",
    "Moreau",
    "Hill",
    "Schmidt",
    "Campbell",
    "Bergstrom",
    "Mitchell",
    "Costa",
    "Roberts",
    "Eriksson",
    "Carter",
    "Weber",
    "Phillips",
    "Olsen",
    "Evans",
    "Fischer",
];

/// City names (LOC, subtype `city`).
pub const CITIES: &[&str] = &[
    "Brooklyn",
    "Singapore",
    "London",
    "Tokyo",
    "Paris",
    "Berlin",
    "Madrid",
    "Rome",
    "Vienna",
    "Oslo",
    "Lisbon",
    "Dublin",
    "Prague",
    "Athens",
    "Cairo",
    "Lagos",
    "Nairobi",
    "Mumbai",
    "Seoul",
    "Bangkok",
    "Jakarta",
    "Manila",
    "Sydney",
    "Auckland",
    "Toronto",
    "Chicago",
    "Boston",
    "Seattle",
    "Denver",
    "Austin",
    "Atlanta",
    "Houston",
    "Phoenix",
    "Portland",
    "Geneva",
    "Zurich",
    "Munich",
    "Hamburg",
    "Lyon",
    "Marseille",
    "Valencia",
    "Porto",
    "Krakow",
    "Helsinki",
    "Stockholm",
    "Copenhagen",
    "Brussels",
    "Amsterdam",
    "Rotterdam",
    "Osaka",
];

/// Country names (LOC, subtype `country`).
pub const COUNTRIES: &[&str] = &[
    "France",
    "Germany",
    "Japan",
    "Brazil",
    "India",
    "Canada",
    "Australia",
    "Spain",
    "Italy",
    "Norway",
    "Sweden",
    "Denmark",
    "Finland",
    "Poland",
    "Austria",
    "Greece",
    "Egypt",
    "Kenya",
    "Nigeria",
    "Thailand",
    "Vietnam",
    "Indonesia",
    "Mexico",
    "Argentina",
    "Chile",
    "Peru",
    "Portugal",
    "Ireland",
    "Belgium",
    "Switzerland",
    "Netherlands",
    "Morocco",
    "Jordan",
    "Iceland",
    "Hungary",
    "Croatia",
    "Estonia",
    "Latvia",
    "Malaysia",
    "Singapore",
];

/// Organization core names; combined with [`ORG_SUFFIXES`] and templates.
pub const ORG_CORES: &[&str] = &[
    "Acme", "Globex", "Initech", "Vertex", "Nimbus", "Quantum", "Stellar", "Apex", "Fusion",
    "Horizon", "Pinnacle", "Cascade", "Meridian", "Zenith", "Atlas", "Orion", "Polaris",
    "Vanguard", "Summit", "Crescent", "Aurora", "Beacon", "Catalyst", "Dynamo", "Electra",
    "Frontier", "Gemini", "Helios", "Ionis", "Juniper", "Keystone", "Lumina", "Momentum", "Nova",
    "Obsidian", "Paragon", "Quasar", "Radiant", "Sapphire", "Titan",
];

/// Organization suffixes (company register).
pub const ORG_SUFFIXES: &[&str] = &[
    "Corp",
    "Inc",
    "Ltd",
    "Group",
    "Holdings",
    "Systems",
    "Industries",
    "Partners",
    "Labs",
    "Bank",
];

/// Institutional organization patterns built around a location
/// ("University of X") — the natural source of ORG⊃LOC nesting (§5.1).
pub const ORG_INSTITUTION_HEADS: &[&str] =
    &["University", "Institute", "Museum", "Bank", "Observatory", "Academy"];

/// Miscellaneous entities (CoNLL MISC analog): nationalities and events.
pub const NATIONALITIES: &[&str] = &[
    "French",
    "German",
    "Japanese",
    "Brazilian",
    "Indian",
    "Canadian",
    "Australian",
    "Spanish",
    "Italian",
    "Norwegian",
    "Swedish",
    "Danish",
    "Finnish",
    "Polish",
    "Austrian",
    "Greek",
    "Egyptian",
    "Kenyan",
    "Nigerian",
    "Thai",
    "Mexican",
    "Chilean",
    "Portuguese",
    "Irish",
    "Belgian",
    "Swiss",
    "Dutch",
    "Moroccan",
];

/// Named events (MISC analog, subtype `event`).
pub const EVENTS: &[&str] = &[
    "Olympics",
    "Euro2024",
    "Worldcup",
    "Ryder Cup",
    "Grand Slam",
    "Tour de France",
    "Expo",
    "Biennale",
    "Oktoberfest",
    "Carnival",
];

/// Job/role words used in PER contexts ("X, the ROLE of Y").
pub const ROLES: &[&str] = &[
    "chairman",
    "director",
    "president",
    "minister",
    "spokesman",
    "economist",
    "analyst",
    "coach",
    "striker",
    "goalkeeper",
    "defender",
    "researcher",
    "professor",
    "governor",
    "senator",
    "ambassador",
    "manager",
    "founder",
    "editor",
    "correspondent",
];

/// Roles implying the `athlete` PER subtype in fine-grained mode.
pub const ATHLETE_ROLES: &[&str] = &["coach", "striker", "goalkeeper", "defender"];

/// Roles implying the `politician` PER subtype in fine-grained mode.
pub const POLITICIAN_ROLES: &[&str] =
    &["minister", "governor", "senator", "ambassador", "president"];

/// Weekday / time expressions used as plain context (never entities here).
pub const DAYS: &[&str] = &[
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
    "yesterday",
    "today",
];

/// A partition of one lexicon pool into seen (training) and held-out
/// (unseen-entity) halves.
#[derive(Clone, Debug)]
pub struct PoolSplit {
    /// Items available to training-time generation.
    pub seen: Vec<&'static str>,
    /// Items reserved to manufacture unseen test entities.
    pub held_out: Vec<&'static str>,
}

/// Deterministically splits a pool: every `k`-th item (by index) is held
/// out. Index-based (rather than RNG-based) so the split is stable across
/// seeds and experiments remain comparable.
pub fn split_pool(pool: &'static [&'static str], hold_every: usize) -> PoolSplit {
    assert!(hold_every >= 2, "hold_every must be >= 2");
    let mut seen = Vec::new();
    let mut held_out = Vec::new();
    for (i, &item) in pool.iter().enumerate() {
        if (i + 1) % hold_every == 0 {
            held_out.push(item);
        } else {
            seen.push(item);
        }
    }
    PoolSplit { seen, held_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pools_are_nonempty_and_unique() {
        for pool in [FIRST_NAMES, LAST_NAMES, CITIES, COUNTRIES, ORG_CORES, NATIONALITIES] {
            assert!(pool.len() >= 20);
            let set: HashSet<_> = pool.iter().collect();
            assert_eq!(set.len(), pool.len(), "duplicate lexicon entry");
        }
    }

    #[test]
    fn split_pool_partitions() {
        let s = split_pool(CITIES, 5);
        assert_eq!(s.seen.len() + s.held_out.len(), CITIES.len());
        assert_eq!(s.held_out.len(), CITIES.len() / 5);
        let seen: HashSet<_> = s.seen.iter().collect();
        assert!(s.held_out.iter().all(|x| !seen.contains(x)));
    }

    #[test]
    fn split_is_deterministic() {
        let a = split_pool(FIRST_NAMES, 4);
        let b = split_pool(FIRST_NAMES, 4);
        assert_eq!(a.seen, b.seen);
        assert_eq!(a.held_out, b.held_out);
    }
}
