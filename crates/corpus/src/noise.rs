//! The user-generated-text noise channel — this workspace's W-NUT analog.
//!
//! The paper attributes the formal-vs-informal performance gap (≈90% F1 on
//! CoNLL vs ≈40% on W-NUT-17, §5.1) to shortness, noisiness, missing casing
//! and unseen entities. This channel reproduces those corruptions over
//! generated news sentences while keeping gold spans aligned (all edits are
//! token-internal; tokens are never merged or split).

use ner_text::{Dataset, Sentence};
use rand::Rng;

/// Token-internal corruption probabilities.
#[derive(Clone, Debug)]
pub struct NoiseModel {
    /// Lowercase the whole token (destroys the casing cue).
    pub p_lowercase: f64,
    /// Uppercase the whole token (shouting).
    pub p_shout: f64,
    /// Swap two adjacent characters (typo).
    pub p_swap: f64,
    /// Drop one character (typo).
    pub p_drop: f64,
    /// Repeat one character ("soooon").
    pub p_repeat: f64,
    /// Substitute a slang form for common function words.
    pub p_slang: f64,
    /// Prefix an entity-initial token with `#` (hashtag-ized mention).
    pub p_hashtag: f64,
}

impl NoiseModel {
    /// The preset used for the W-NUT-analog experiments: heavy casing loss,
    /// moderate typos and slang.
    pub fn social_media() -> Self {
        NoiseModel {
            p_lowercase: 0.65,
            p_shout: 0.04,
            p_swap: 0.10,
            p_drop: 0.09,
            p_repeat: 0.06,
            p_slang: 0.35,
            p_hashtag: 0.08,
        }
    }

    /// A mild preset (light typos only) for robustness ablations.
    pub fn mild() -> Self {
        NoiseModel {
            p_lowercase: 0.1,
            p_shout: 0.0,
            p_swap: 0.02,
            p_drop: 0.02,
            p_repeat: 0.0,
            p_slang: 0.05,
            p_hashtag: 0.0,
        }
    }

    /// No corruption at all (identity channel).
    pub fn none() -> Self {
        NoiseModel {
            p_lowercase: 0.0,
            p_shout: 0.0,
            p_swap: 0.0,
            p_drop: 0.0,
            p_repeat: 0.0,
            p_slang: 0.0,
            p_hashtag: 0.0,
        }
    }
}

const SLANG: &[(&str, &str)] = &[
    ("you", "u"),
    ("your", "ur"),
    ("are", "r"),
    ("to", "2"),
    ("for", "4"),
    ("be", "b"),
    ("see", "c"),
    ("and", "n"),
    ("that", "dat"),
    ("the", "da"),
    ("with", "w/"),
    ("people", "ppl"),
    ("tomorrow", "tmrw"),
    ("today", "2day"),
    ("because", "bc"),
    ("about", "abt"),
];

fn corrupt_token(
    token: &str,
    at_entity_start: bool,
    model: &NoiseModel,
    rng: &mut impl Rng,
) -> String {
    let mut t = token.to_string();

    if let Some(&(_, slang)) =
        SLANG.iter().find(|(w, _)| *w == t.to_lowercase()).filter(|_| rng.gen_bool(model.p_slang))
    {
        return slang.to_string();
    }

    if rng.gen_bool(model.p_lowercase) {
        t = t.to_lowercase();
    } else if rng.gen_bool(model.p_shout) {
        t = t.to_uppercase();
    }

    let chars: Vec<char> = t.chars().collect();
    if chars.len() >= 3 {
        if rng.gen_bool(model.p_swap) {
            let i = rng.gen_range(0..chars.len() - 1);
            let mut c = chars.clone();
            c.swap(i, i + 1);
            t = c.into_iter().collect();
        } else if rng.gen_bool(model.p_drop) {
            let i = rng.gen_range(0..chars.len());
            let mut c = chars.clone();
            c.remove(i);
            t = c.into_iter().collect();
        } else if rng.gen_bool(model.p_repeat) {
            let i = rng.gen_range(0..chars.len());
            let mut c = chars.clone();
            c.insert(i, c[i]);
            t = c.into_iter().collect();
        }
    }

    if at_entity_start && rng.gen_bool(model.p_hashtag) {
        t = format!("#{t}");
    }
    t
}

/// Applies the channel to one sentence; spans are preserved exactly.
pub fn corrupt_sentence(s: &Sentence, model: &NoiseModel, rng: &mut impl Rng) -> Sentence {
    let starts: Vec<usize> = s.entities.iter().map(|e| e.start).collect();
    let tokens: Vec<String> = s
        .tokens
        .iter()
        .enumerate()
        .map(|(i, tok)| corrupt_token(&tok.text, starts.contains(&i), model, rng))
        .collect();
    Sentence::new(&tokens, s.entities.clone())
}

/// Applies the channel to a whole dataset.
pub fn corrupt_dataset(ds: &Dataset, model: &NoiseModel, rng: &mut impl Rng) -> Dataset {
    Dataset::new(ds.sentences.iter().map(|s| corrupt_sentence(s, model, rng)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_channel_changes_nothing() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let ds = gen.dataset(&mut rng, 30);
        let out = corrupt_dataset(&ds, &NoiseModel::none(), &mut rng);
        assert_eq!(ds, out);
    }

    #[test]
    fn spans_survive_corruption() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gen.dataset(&mut rng, 100);
        let out = corrupt_dataset(&ds, &NoiseModel::social_media(), &mut rng);
        for (a, b) in ds.sentences.iter().zip(&out.sentences) {
            assert_eq!(a.entities, b.entities, "annotation must be preserved");
            assert_eq!(a.len(), b.len(), "token count must be preserved");
        }
    }

    #[test]
    fn social_media_channel_degrades_casing() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let ds = gen.dataset(&mut rng, 200);
        let out = corrupt_dataset(&ds, &NoiseModel::social_media(), &mut rng);
        let count_title = |d: &Dataset| {
            d.sentences
                .iter()
                .flat_map(|s| s.tokens.iter())
                .filter(|t| t.text.chars().next().is_some_and(char::is_uppercase))
                .count()
        };
        assert!(
            count_title(&out) < count_title(&ds) * 8 / 10,
            "corruption should strip a substantial share of capitalization"
        );
    }

    #[test]
    fn corruption_raises_oov_rate() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let train = gen.dataset(&mut rng, 300);
        let vocab = train.word_vocab(1);
        let clean = gen.dataset(&mut rng, 100);
        let noisy = corrupt_dataset(&clean, &NoiseModel::social_media(), &mut rng);
        let flat =
            |d: &Dataset| d.sentences.iter().flat_map(|s| s.lower_texts()).collect::<Vec<_>>();
        assert!(vocab.oov_rate(&flat(&noisy)) > vocab.oov_rate(&flat(&clean)));
    }
}
