//! The template grammar for news-register sentence generation.
//!
//! Each template is a space-separated token string with `{...}` slots.
//! Entity slots (`{PER}`, `{LOC}`, `{ORG}`, `{MISC}`, and `2`-suffixed
//! variants for a second distinct mention) are realized by the generator
//! with gold spans; context slots (`{ROLE}`, `{DAY}`, `{NUM}`) are filled
//! from plain word pools and never annotated.
//!
//! The context words around each slot type are deliberately *predictive* of
//! the type (e.g. "visited {LOC}", "shares of {ORG}"), mirroring the
//! distributional signal real corpora carry — this is what context encoders
//! in the survey's taxonomy learn to exploit.

/// A parsed template piece.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Piece {
    /// A literal token emitted verbatim.
    Lit(&'static str),
    /// An entity slot: (kind, discriminator) — discriminator distinguishes
    /// multiple same-kind mentions within one template.
    Entity(SlotKind, u8),
    /// A context-word slot filled from a pool.
    Context(ContextKind),
}

/// Entity slot kinds (the CoNLL-2003 coarse types).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// Person.
    Per,
    /// Location.
    Loc,
    /// Organization.
    Org,
    /// Miscellaneous (nationality / event).
    Misc,
}

/// Non-entity context slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContextKind {
    /// A job/role word.
    Role,
    /// A weekday or relative day.
    Day,
    /// A number token.
    Num,
}

/// A parsed sentence template.
#[derive(Clone, Debug)]
pub struct Template {
    /// The pieces, in order.
    pub pieces: Vec<Piece>,
}

impl Template {
    /// Parses a template string.
    ///
    /// # Panics
    /// Panics on an unknown slot name — templates are compiled in, so this
    /// is a programmer error.
    pub fn parse(spec: &'static str) -> Self {
        let pieces = spec
            .split_whitespace()
            .map(|tok| match tok {
                "{PER}" => Piece::Entity(SlotKind::Per, 0),
                "{PER2}" => Piece::Entity(SlotKind::Per, 1),
                "{LOC}" => Piece::Entity(SlotKind::Loc, 0),
                "{LOC2}" => Piece::Entity(SlotKind::Loc, 1),
                "{ORG}" => Piece::Entity(SlotKind::Org, 0),
                "{ORG2}" => Piece::Entity(SlotKind::Org, 1),
                "{MISC}" => Piece::Entity(SlotKind::Misc, 0),
                "{ROLE}" => Piece::Context(ContextKind::Role),
                "{DAY}" => Piece::Context(ContextKind::Day),
                "{NUM}" => Piece::Context(ContextKind::Num),
                t if t.starts_with('{') => panic!("unknown template slot {t}"),
                t => Piece::Lit(t),
            })
            .collect();
        Template { pieces }
    }

    /// Number of entity slots.
    pub fn entity_slots(&self) -> usize {
        self.pieces.iter().filter(|p| matches!(p, Piece::Entity(..))).count()
    }
}

/// The news-register template bank.
pub fn news_templates() -> Vec<Template> {
    NEWS_SPECS.iter().map(|s| Template::parse(s)).collect()
}

/// Entity-free filler templates used to enrich the unlabeled LM corpus.
pub fn filler_templates() -> Vec<Template> {
    FILLER_SPECS.iter().map(|s| Template::parse(s)).collect()
}

const NEWS_SPECS: &[&str] = &[
    "{PER} was born in {LOC} .",
    "{PER} , the {ROLE} of {ORG} , said {DAY} that profits rose {NUM} percent .",
    "{PER} visited {LOC} on {DAY} to meet {PER2} .",
    "shares of {ORG} fell {NUM} percent in {LOC} trading {DAY} .",
    "{ORG} announced {DAY} it would open a new office in {LOC} .",
    "the {MISC} government signed an agreement with {ORG} in {LOC} .",
    "{PER} scored {NUM} points as the team beat {ORG} {DAY} .",
    "{ORG} named {PER} as its new {ROLE} , replacing {PER2} .",
    "officials in {LOC} said {DAY} that {PER} would attend the summit .",
    "{PER} , a {MISC} {ROLE} , arrived in {LOC} from {LOC2} .",
    "the {ROLE} of {ORG} , {PER} , resigned {DAY} .",
    "{ORG} and {ORG2} agreed to merge their operations in {LOC} .",
    "analysts at {ORG} expect growth of {NUM} percent in {LOC} .",
    "{PER} told reporters in {LOC} that the talks with {ORG} had failed .",
    "a spokesman for {ORG} declined to comment on the {MISC} deal .",
    "{PER} won the {MISC} after defeating {PER2} in {LOC} .",
    "thousands gathered in {LOC} {DAY} to hear {PER} speak .",
    "{ORG} reported {DAY} that revenue in {LOC} grew {NUM} percent .",
    "the {MISC} striker {PER} joined {ORG} from {ORG2} for {NUM} million .",
    "{PER} flew from {LOC} to {LOC2} for talks with the {ROLE} .",
    "prosecutors in {LOC} charged {PER} , a former {ROLE} at {ORG} .",
    "{ORG} shares rose after {PER} , its {ROLE} , unveiled plans in {LOC} .",
    "the {MISC} parliament approved the {ORG} takeover {DAY} .",
    "{PER} and {PER2} met in {LOC} to discuss the {MISC} crisis .",
    "{ORG} opened its {LOC} plant {DAY} , employing {NUM} workers .",
    "in {LOC} , {PER} praised the work of {ORG} volunteers .",
    "{PER} , {NUM} , grew up in {LOC} before joining {ORG} .",
    "the {ROLE} {PER} returned to {LOC} {DAY} after visiting {LOC2} .",
    "{ORG} cut {NUM} jobs at its {LOC} headquarters {DAY} .",
    "critics of {PER} said the {MISC} reforms favored {ORG} .",
    "{PER} will lead the {ORG} delegation to {LOC} next week .",
    "heavy rain in {LOC} delayed the match between {ORG} and {ORG2} .",
    "{PER} signed a {NUM} year contract with {ORG} {DAY} .",
    "the mayor of {LOC} welcomed {PER} and the {MISC} delegation .",
    "{ORG} , based in {LOC} , hired {NUM} engineers {DAY} .",
    "{PER} defended the decision , saying {ORG} had no choice .",
    "residents of {LOC} protested against the {ORG} project {DAY} .",
    "{PER} , speaking in {LOC} , called the {MISC} vote historic .",
    "{ORG} acquired a {NUM} percent stake in {ORG2} {DAY} .",
    "the {MISC} team arrived in {LOC} ahead of the match with {ORG} .",
];

const FILLER_SPECS: &[&str] = &[
    "the market closed higher {DAY} after a quiet session .",
    "officials said the talks would continue next week .",
    "the report showed prices rose {NUM} percent last month .",
    "traders said volumes were thin ahead of the holiday .",
    "the weather service forecast rain for {DAY} .",
    "the committee will publish its findings next month .",
    "economists expect the index to climb {NUM} percent .",
    "the new policy takes effect at the start of next year .",
    "lawmakers debated the budget late into the night .",
    "the survey found most voters remain undecided .",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognizes_all_slot_kinds() {
        let t = Template::parse(
            "{PER} met {PER2} in {LOC} at {ORG} over {MISC} on {DAY} , {ROLE} , {NUM} .",
        );
        assert_eq!(t.entity_slots(), 5);
        assert!(matches!(t.pieces[0], Piece::Entity(SlotKind::Per, 0)));
        assert!(matches!(t.pieces[2], Piece::Entity(SlotKind::Per, 1)));
        assert!(matches!(t.pieces[1], Piece::Lit("met")));
    }

    #[test]
    #[should_panic(expected = "unknown template slot")]
    fn unknown_slot_rejected() {
        let _ = Template::parse("{WAT} happened");
    }

    #[test]
    fn bank_parses_and_has_variety() {
        let bank = news_templates();
        assert!(bank.len() >= 40);
        assert!(bank.iter().all(|t| t.entity_slots() >= 1));
        assert!(!filler_templates().is_empty());
        assert!(filler_templates().iter().all(|t| t.entity_slots() == 0));
    }
}
