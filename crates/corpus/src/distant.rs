//! Label-noise channel simulating distant supervision (paper §4.4).
//!
//! Distantly supervised NER annotates text by dictionary matching against a
//! knowledge base, which yields *missing* mentions (KB incomplete), *wrong
//! types* (ambiguous surface forms) and *wrong boundaries* (partial
//! matches). This channel injects exactly those three error modes at known
//! rates, giving the reinforcement-learning instance selector (§4.4,
//! `ner-applied::reinforce`) a controlled playground.

use ner_text::{Dataset, Sentence};
use rand::seq::SliceRandom;
use rand::Rng;

/// Error rates of the distant-supervision channel.
#[derive(Clone, Debug)]
pub struct LabelNoise {
    /// Probability an entity annotation is silently dropped.
    pub p_miss: f64,
    /// Probability an entity's type is replaced by a random other type.
    pub p_flip: f64,
    /// Probability a multi-token entity loses its first or last token.
    pub p_shrink: f64,
}

impl LabelNoise {
    /// The preset used in the §4.4 experiment: 30% of sentences carry at
    /// least one corrupted annotation.
    pub fn distant_supervision() -> Self {
        LabelNoise { p_miss: 0.15, p_flip: 0.12, p_shrink: 0.08 }
    }
}

/// Result of corrupting one sentence, with a flag recording whether any
/// annotation was altered (the selector's hidden ground truth).
#[derive(Clone, Debug)]
pub struct NoisySentence {
    /// The (possibly) corrupted sentence.
    pub sentence: Sentence,
    /// True when at least one annotation differs from gold.
    pub corrupted: bool,
}

/// Applies the channel to one sentence.
pub fn corrupt_labels(
    s: &Sentence,
    noise: &LabelNoise,
    types: &[String],
    rng: &mut impl Rng,
) -> NoisySentence {
    let mut corrupted = false;
    let mut entities = Vec::with_capacity(s.entities.len());
    for e in &s.entities {
        if rng.gen_bool(noise.p_miss) {
            corrupted = true;
            continue;
        }
        let mut e = e.clone();
        if rng.gen_bool(noise.p_flip) {
            let others: Vec<&String> = types.iter().filter(|t| **t != e.label).collect();
            if let Some(new_label) = others.choose(rng) {
                e.label = (*new_label).clone();
                corrupted = true;
            }
        }
        if e.len() > 1 && rng.gen_bool(noise.p_shrink) {
            if rng.gen_bool(0.5) {
                e.start += 1;
            } else {
                e.end -= 1;
            }
            corrupted = true;
        }
        entities.push(e);
    }
    NoisySentence { sentence: Sentence { tokens: s.tokens.clone(), entities }, corrupted }
}

/// Applies the channel to a dataset, returning the noisy sentences together
/// with their corruption flags.
pub fn corrupt_dataset_labels(
    ds: &Dataset,
    noise: &LabelNoise,
    rng: &mut impl Rng,
) -> Vec<NoisySentence> {
    let types = ds.entity_types();
    ds.sentences.iter().map(|s| corrupt_labels(s, noise, &types, rng)).collect()
}

/// Fraction of sentences flagged as corrupted.
pub fn corruption_rate(noisy: &[NoisySentence]) -> f64 {
    if noisy.is_empty() {
        return 0.0;
    }
    noisy.iter().filter(|n| n.corrupted).count() as f64 / noisy.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, NewsGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Dataset {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        gen.dataset(&mut StdRng::seed_from_u64(1), 200)
    }

    #[test]
    fn zero_noise_is_identity() {
        let ds = sample();
        let noise = LabelNoise { p_miss: 0.0, p_flip: 0.0, p_shrink: 0.0 };
        let out = corrupt_dataset_labels(&ds, &noise, &mut StdRng::seed_from_u64(2));
        assert!(out.iter().all(|n| !n.corrupted));
        assert_eq!(corruption_rate(&out), 0.0);
        for (orig, noisy) in ds.sentences.iter().zip(&out) {
            assert_eq!(orig, &noisy.sentence);
        }
    }

    #[test]
    fn corruption_flags_are_truthful() {
        let ds = sample();
        let out = corrupt_dataset_labels(
            &ds,
            &LabelNoise::distant_supervision(),
            &mut StdRng::seed_from_u64(3),
        );
        for (orig, noisy) in ds.sentences.iter().zip(&out) {
            let changed = orig.entities != noisy.sentence.entities;
            assert_eq!(changed, noisy.corrupted, "flag must match actual change");
        }
        let rate = corruption_rate(&out);
        assert!(rate > 0.2 && rate < 0.95, "rate was {rate}");
    }

    #[test]
    fn flipped_types_remain_valid() {
        let ds = sample();
        let types = ds.entity_types();
        let out = corrupt_dataset_labels(
            &ds,
            &LabelNoise { p_miss: 0.0, p_flip: 1.0, p_shrink: 0.0 },
            &mut StdRng::seed_from_u64(4),
        );
        for n in &out {
            for e in &n.sentence.entities {
                assert!(types.contains(&e.label));
            }
        }
    }

    #[test]
    fn shrink_never_empties_spans() {
        let ds = sample();
        let out = corrupt_dataset_labels(
            &ds,
            &LabelNoise { p_miss: 0.0, p_flip: 0.0, p_shrink: 1.0 },
            &mut StdRng::seed_from_u64(5),
        );
        for n in &out {
            for e in &n.sentence.entities {
                assert!(e.end > e.start);
            }
        }
    }
}
