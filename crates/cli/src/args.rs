//! A small, dependency-free flag parser: `--name value` options,
//! `--flag` booleans, and positional arguments, with typed accessors and
//! error messages naming the offending flag.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    options: HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

/// A parse/validation error, rendered to the user as-is.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Option names that take a value; anything else starting with `--` is a
/// boolean flag.
pub fn parse<I: IntoIterator<Item = String>>(
    raw: I,
    value_options: &[&str],
) -> Result<Args, ArgError> {
    let mut args = Args::default();
    let mut iter = raw.into_iter().peekable();
    while let Some(tok) = iter.next() {
        if let Some(name) = tok.strip_prefix("--") {
            if value_options.contains(&name) {
                let value =
                    iter.next().ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                if args.options.insert(name.to_string(), value).is_some() {
                    return Err(ArgError(format!("--{name} given twice")));
                }
            } else {
                args.flags.push(name.to_string());
            }
        } else {
            args.positional.push(tok);
        }
    }
    Ok(args)
}

impl Args {
    /// String option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name).ok_or_else(|| ArgError(format!("missing required --{name}")))
    }

    /// Typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError(format!("--{name} has invalid value {v:?}"))),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_flags_positional() {
        let a = parse(v(&["--n", "30", "--noisy", "file.conll"]), &["n"]).unwrap();
        assert_eq!(a.get("n"), Some("30"));
        assert!(a.flag("noisy"));
        assert!(!a.flag("nested"));
        assert_eq!(a.positional(), &["file.conll".to_string()]);
        assert_eq!(a.get_parsed("n", 0usize).unwrap(), 30);
        assert_eq!(a.get_parsed("seed", 42u64).unwrap(), 42);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(
            parse(v(&["--n"]), &["n"]).unwrap_err(),
            ArgError("--n requires a value".into())
        );
        assert_eq!(
            parse(v(&["--n", "1", "--n", "2"]), &["n"]).unwrap_err(),
            ArgError("--n given twice".into())
        );
        let a = parse(v(&["--n", "x"]), &["n"]).unwrap();
        assert!(a.get_parsed("n", 0usize).is_err());
        assert!(a.require("out").is_err());
    }
}
